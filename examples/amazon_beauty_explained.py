"""E-commerce scenario: does REKS help, and can users see why?

The paper's motivating example (Fig. 1) is an Amazon shopper whose
session of hair products leads to a conditioner recommendation
explained through shared brand/category links.  This script reproduces
that experience end to end on the synthetic Beauty dataset:

1. trains vanilla GRU4REC and NARM (black boxes),
2. trains their REKS-wrapped versions on the same inputs,
3. compares accuracy (the Table VIII experience at example scale), and
4. prints Figure-10-style explanation cards for real test sessions.

Run:  python examples/amazon_beauty_explained.py
"""

import numpy as np

from repro import (
    AmazonLikeGenerator,
    Explainer,
    REKSConfig,
    REKSTrainer,
    StandaloneConfig,
    StandaloneTrainer,
    build_kg,
    create_encoder,
)
from repro.data.stats import format_table
from repro.kg import TransE, TransEConfig

MODELS = ("gru4rec", "narm")
DIM = 32


def main() -> None:
    dataset = AmazonLikeGenerator("beauty", scale="tiny", seed=7).generate()
    built = build_kg(dataset)
    transe = TransE(built.kg.num_entities, built.kg.num_relations,
                    TransEConfig(dim=DIM, epochs=8, seed=13))
    transe.fit(built.kg)
    item_init = transe.item_embeddings(built.item_entity)

    rows = []
    best_trainer = None
    for model in MODELS:
        encoder = create_encoder(model, n_items=dataset.n_items, dim=DIM,
                                 item_init=item_init,
                                 rng=np.random.default_rng(0))
        baseline = StandaloneTrainer(
            encoder, dataset.split.train, dataset.split.validation,
            StandaloneConfig(epochs=5, lr=2e-3, patience=2, seed=0))
        baseline.fit()
        base = baseline.evaluate(dataset.split.test, ks=(10,))

        config = REKSConfig(dim=DIM, state_dim=DIM, epochs=5, lr=1e-3,
                            batch_size=64, sample_sizes=(100, 4), seed=0)
        reks = REKSTrainer(dataset, built, model_name=model, config=config,
                           transe=transe)
        reks.fit()
        ours = reks.evaluate(dataset.split.test, ks=(10,))
        rows.append([model, f"{base['HR@10']:.2f}", f"{ours['HR@10']:.2f}",
                     f"{base['NDCG@10']:.2f}", f"{ours['NDCG@10']:.2f}"])
        best_trainer = reks

    print(format_table(rows, headers=[
        "model", "HR@10 base", "HR@10 REKS", "NDCG@10 base", "NDCG@10 REKS"]))

    print("\n--- why was each item recommended? ---")
    explainer = Explainer(best_trainer)
    for case in explainer.explain_sessions(dataset.split.test[:3], k=3):
        print()
        print(explainer.render_case(case))


if __name__ == "__main__":
    main()
