"""Genericity check: REKS on a knowledge graph with no user entities.

The paper's MovieLens KG (Tables IV-V) contains movies, genres,
directors, actors, writers, languages, ratings, and countries — but no
users.  REKS still works because paths start at the session's last
item, not at a user (footnote 2 of the paper).  This script trains
three different wrapped models on the synthetic MovieLens dataset and
shows genre/director/franchise-style explanation paths.

Run:  python examples/movielens_no_users.py
"""

from repro import (
    Explainer,
    MovieLensLikeGenerator,
    REKSConfig,
    REKSTrainer,
    build_kg,
)
from repro.data.stats import format_table

MODELS = ("gru4rec", "srgnn", "bert4rec")


def main() -> None:
    dataset = MovieLensLikeGenerator(scale="tiny", seed=11).generate()
    built = build_kg(dataset)
    assert "user" not in built.kg.entity_type_names
    print(f"movielens KG (no users): {built.kg}")

    rows = []
    last_trainer = None
    for model in MODELS:
        config = REKSConfig(dim=32, state_dim=32, epochs=4, lr=1e-3,
                            batch_size=64, sample_sizes=(100, 8), seed=0)
        trainer = REKSTrainer(dataset, built, model_name=model,
                              config=config)
        trainer.fit()
        metrics = trainer.evaluate(dataset.split.test, ks=(10, 20))
        rows.append([f"REKS_{model}", f"{metrics['HR@10']:.2f}",
                     f"{metrics['HR@20']:.2f}", f"{metrics['NDCG@20']:.2f}"])
        last_trainer = trainer

    print(format_table(rows, headers=["method", "HR@10", "HR@20",
                                      "NDCG@20"]))

    print("\n--- movie explanation paths ---")
    explainer = Explainer(last_trainer)
    for case in explainer.explain_sessions(dataset.split.test[:3], k=3):
        print()
        print(explainer.render_case(case))


if __name__ == "__main__":
    main()
