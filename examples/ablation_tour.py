"""A tour of the REKS design choices (the paper's §IV-B-2 in miniature).

Trains REKS_GRU4REC variants that disable one design element at a time
— reward components (Fig. 5), loss terms (Fig. 3), the last-item
starting point (Fig. 4), and the path length (Fig. 6) — and prints a
single comparison table.  The benchmark suite runs the full versions;
this example is the quick interactive tour.

Run:  python examples/ablation_tour.py
"""

from repro import AmazonLikeGenerator, REKSConfig, REKSTrainer, build_kg
from repro.data.stats import format_table
from repro.kg import TransE, TransEConfig

VARIANTS = (
    ("REKS (full)", "reks"),
    ("REKS_R1 (0/1 reward)", "reks_r1"),
    ("REKS-path (item reward only)", "reks-path"),
    ("REKS-rank (no rank reward)", "reks-rank"),
    ("REKS_R (reward loss only)", "reks_r"),
    ("REKS_C (CE loss only)", "reks_c"),
    ("REKS_user (user start)", "reks_user"),
    ("REKS_l3 (3-hop paths)", "reks_l3"),
)

DIM = 24


def main() -> None:
    dataset = AmazonLikeGenerator("beauty", scale="tiny", seed=7).generate()
    built = build_kg(dataset)
    transe = TransE(built.kg.num_entities, built.kg.num_relations,
                    TransEConfig(dim=DIM, epochs=8, seed=13))
    transe.fit(built.kg)

    rows = []
    for label, preset in VARIANTS:
        config = REKSConfig.for_ablation(
            preset, dim=DIM, state_dim=DIM, epochs=4, lr=1e-3,
            batch_size=64, seed=0)
        # Keep the candidate pool comparable at tiny scale by widening
        # the final hop (see benchmarks/common.py for the rationale).
        sizes = tuple(config.sample_sizes[:-1]) + (
            max(config.sample_sizes[-1], 6),)
        config = REKSConfig(**{**config.__dict__, "sample_sizes": sizes})
        trainer = REKSTrainer(dataset, built, model_name="gru4rec",
                              config=config, transe=transe)
        trainer.fit()
        metrics = trainer.evaluate(dataset.split.test, ks=(5, 10))
        rows.append([label, f"{metrics['HR@5']:.2f}",
                     f"{metrics['HR@10']:.2f}",
                     f"{metrics['NDCG@10']:.2f}"])
        print(f"done: {label}")

    print()
    print(format_table(rows, headers=["variant", "HR@5", "HR@10",
                                      "NDCG@10"]))


if __name__ == "__main__":
    main()
