"""Quickstart: make a session recommender explainable with REKS.

Generates a tiny synthetic Amazon-Beauty dataset, builds the session
knowledge graph, wraps NARM in the REKS framework, trains for a few
epochs, and prints accuracy plus a handful of explained
recommendations.

Run:  python examples/quickstart.py
"""

from repro import (
    AmazonLikeGenerator,
    Explainer,
    REKSConfig,
    REKSTrainer,
    build_kg,
)


def main() -> None:
    # 1. Data: a synthetic stand-in for Amazon-Beauty (see DESIGN.md §3).
    dataset = AmazonLikeGenerator("beauty", scale="tiny", seed=7).generate()
    print(f"dataset: {dataset.n_items} items, "
          f"{len(dataset.split.train)} train sessions")

    # 2. Knowledge graph with session co-occurrence edges (paper §III-B-1).
    built = build_kg(dataset)
    print(f"knowledge graph: {built.kg}")

    # 3. REKS wrapping NARM (any of the five models works here).
    config = REKSConfig(dim=32, state_dim=32, epochs=4, batch_size=64,
                        lr=1e-3, sample_sizes=(100, 4), seed=0)
    trainer = REKSTrainer(dataset, built, model_name="narm", config=config)
    trainer.fit(verbose=True)

    # 4. Recommendation accuracy on the held-out test sessions.
    metrics = trainer.evaluate(dataset.split.test, ks=(5, 10, 20))
    print("\ntest metrics (%):")
    for key in ("HR@5", "HR@10", "HR@20", "NDCG@5", "NDCG@10", "NDCG@20"):
        print(f"  {key:8s} {metrics[key]:6.2f}")

    # 5. Explanations: one KG path per recommended item.
    explainer = Explainer(trainer)
    cases = explainer.explain_sessions(dataset.split.test[:3], k=3)
    print("\nexplained recommendations:")
    for case in cases:
        print()
        print(explainer.render_case(case))


if __name__ == "__main__":
    main()
