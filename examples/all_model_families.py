"""Every model family on one dataset: classic floors -> neural -> REKS.

Trains and evaluates, on the same synthetic Beauty split:

1. the classic non-neural floors (POP, S-POP, Markov chain, ItemKNN);
2. the five neural encoders of the paper, standalone;
3. REKS wrapping the best standalone model, plus the FGNN extension.

Prints a single leaderboard and a bar chart — the "where does the RL
framework sit in the landscape" view.

Run:  python examples/all_model_families.py
"""

import numpy as np

from repro import (
    AmazonLikeGenerator,
    REKSConfig,
    REKSTrainer,
    StandaloneConfig,
    StandaloneTrainer,
    build_kg,
    create_encoder,
)
from repro.data.stats import format_table
from repro.eval.metrics import evaluate_rankings, top_k_from_scores
from repro.eval.plots import bar_chart
from repro.kg import TransE, TransEConfig
from repro.models.neighbors import CLASSIC_BASELINES, create_classic_baseline

DIM = 24
NEURAL = ("gru4rec", "narm", "srgnn", "gcsan", "bert4rec")


def main() -> None:
    dataset = AmazonLikeGenerator("beauty", scale="tiny", seed=7).generate()
    built = build_kg(dataset)
    transe = TransE(built.kg.num_entities, built.kg.num_relations,
                    TransEConfig(dim=DIM, epochs=8, seed=13))
    transe.fit(built.kg)
    item_init = transe.item_embeddings(built.item_entity)
    targets = [s.target for s in dataset.split.test]

    leaderboard = {}

    # 1. Classic floors.
    for name in CLASSIC_BASELINES:
        model = create_classic_baseline(name, n_items=dataset.n_items)
        model.fit(dataset.split.train)
        ranked = top_k_from_scores(
            model.score_sessions(dataset.split.test), 10)
        leaderboard[name] = evaluate_rankings(ranked, targets,
                                              ks=(10,))["HR@10"]
        print(f"done: {name}")

    # 2. Standalone neural encoders.
    best_model, best_hr = None, -1.0
    for name in NEURAL:
        encoder = create_encoder(name, n_items=dataset.n_items, dim=DIM,
                                 item_init=item_init,
                                 rng=np.random.default_rng(0))
        trainer = StandaloneTrainer(
            encoder, dataset.split.train, dataset.split.validation,
            StandaloneConfig(epochs=5, lr=2e-3, patience=2, seed=0))
        trainer.fit()
        hr = trainer.evaluate(dataset.split.test, ks=(10,))["HR@10"]
        leaderboard[name] = hr
        if hr > best_hr:
            best_model, best_hr = name, hr
        print(f"done: {name}")

    # 3. REKS over the best standalone model, plus the FGNN extension.
    for model in (best_model, "fgnn"):
        config = REKSConfig(dim=DIM, state_dim=DIM, epochs=5, lr=1e-3,
                            batch_size=64, sample_sizes=(100, 4), seed=0)
        trainer = REKSTrainer(dataset, built, model_name=model,
                              config=config, transe=transe)
        trainer.fit()
        hr = trainer.evaluate(dataset.split.test, ks=(10,))["HR@10"]
        leaderboard[f"REKS_{model}"] = hr
        print(f"done: REKS_{model}")

    ordered = dict(sorted(leaderboard.items(), key=lambda kv: kv[1]))
    print()
    print(format_table([[k, f"{v:.2f}"] for k, v in ordered.items()],
                       headers=["method", "HR@10 (%)"]))
    print()
    print(bar_chart(ordered, title="HR@10 on synthetic Beauty (tiny)"))


if __name__ == "__main__":
    main()
