"""Setup shim for environments without the ``wheel`` package.

PEP 660 editable installs need ``bdist_wheel``; offline boxes that lack
the ``wheel`` distribution can fall back to the legacy code path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
