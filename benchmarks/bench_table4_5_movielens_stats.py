"""Tables IV & V: relation and entity statistics of the MovieLens KG."""

from common import get_world, table, write_result
from repro.data.stats import entity_statistics, relation_statistics

RELATIONS = ("belong_to", "directed_by", "acted_by", "written_by",
             "narrated_by", "rated", "produced_by", "co_occur")
ENTITIES = ("movie", "genre", "director", "actor", "writer", "language",
            "rating", "country")


def test_table4_relation_statistics(benchmark):
    world = get_world("movielens")
    stats = benchmark.pedantic(
        lambda: relation_statistics(world.built.kg), rounds=1, iterations=1)
    rows = [[rel, stats.get(rel, 0)] for rel in RELATIONS]
    write_result("table4_movielens_relations",
                 table(rows, headers=["Relation", "#Relations"]))
    assert set(stats) == set(RELATIONS)
    assert all(stats[rel] > 0 for rel in RELATIONS)


def test_table5_entity_statistics(benchmark):
    world = get_world("movielens")
    stats = benchmark.pedantic(
        lambda: entity_statistics(world.built.kg), rounds=1, iterations=1)
    rows = [[ent, stats.get(ent, 0)] for ent in ENTITIES]
    write_result("table5_movielens_entities",
                 table(rows, headers=["Entity", "#Entities"]))
    # Table V shape: movies dominate; ratings are a 5-bucket scale; no
    # user entity exists at all.
    assert stats["movie"] == max(stats.values())
    assert stats["rating"] == 5
    assert "user" not in stats
