"""Figure 9: (simulated) questionnaire study over REKS explanations.

Trains REKS_NARM on each Amazon dataset, samples 20 explanation cases
from the test split, and runs the 50-subject simulated panel over the
six questionnaire perspectives (see DESIGN.md §3 for the substitution).
Expected shape: the four positive perspectives score clearly above the
midpoint, the two reverse-coded ones clearly below.
"""

import numpy as np

from common import AMAZON_FLAVORS, bench_scale, get_world, run_reks, table, write_result
from repro.core import Explainer
from repro.eval.user_study import PERSPECTIVES, UserStudyConfig, simulate_user_study


def test_fig9_user_study(benchmark):
    scale = bench_scale()
    results = {}
    all_cases = []

    def run_all():
        for flavor in AMAZON_FLAVORS:
            world = get_world(flavor)
            _, trainer = run_reks(world, "narm", scale.seeds[0],
                                  return_trainer=True)
            rng = np.random.default_rng(0)
            test = world.dataset.split.test
            picks = rng.choice(len(test), size=min(20, len(test)),
                               replace=False)
            cases = Explainer(trainer).explain_sessions(
                [test[i] for i in picks], k=5)
            all_cases.extend(cases)
            results[flavor] = simulate_user_study(
                cases, UserStudyConfig(seed=2023))
        results["All"] = simulate_user_study(
            all_cases, UserStudyConfig(n_cases=len(all_cases), seed=2023))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    columns = list(AMAZON_FLAVORS) + ["All"]
    rows = []
    for perspective in PERSPECTIVES:
        rows.append([perspective] + [
            f"{results[c][perspective]['mean']:.2f}"
            f"±{results[c][perspective]['std']:.2f}" for c in columns])
    text = table(rows, headers=["Perspective"] + columns)

    from repro.eval.plots import likert_chart

    text += "\n\n" + likert_chart(results["All"],
                                  title="Pooled panel (1-5 Likert)")
    write_result("fig9_user_study", text)

    # Paper shape: positive perspectives rated favorably, reverse-coded
    # perspectives rated low, on the pooled panel.
    pooled = results["All"]
    for perspective in PERSPECTIVES[:4]:
        assert pooled[perspective]["mean"] > 3.0, perspective
    for perspective in PERSPECTIVES[4:]:
        assert pooled[perspective]["mean"] < 3.0, perspective
