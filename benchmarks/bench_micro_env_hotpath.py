"""Micro-benchmark: CSR frontier construction vs the loop reference.

Measures ``batched_actions`` throughput (frontier entities/sec) at
frontier sizes 64-8192 for three variants — the loop-based reference
environment (``tests/reference_env.py``), the CSR environment, and the
CSR environment with a recycled :class:`RolloutWorkspace` — and writes
``benchmarks/results/BENCH_env_hotpath.json``.

Run as a pytest test (``pytest benchmarks/bench_micro_env_hotpath.py -s``)
or directly (``python benchmarks/bench_micro_env_hotpath.py``).  The
acceptance bar is a >= 5x speedup over the reference at frontier sizes
>= 1024.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

from common import RESULTS_DIR, get_world  # noqa: E402
from reference_env import ReferenceKGEnvironment  # noqa: E402
from repro.autograd import no_grad  # noqa: E402
from repro.core.environment import (  # noqa: E402
    KGEnvironment,
    RolloutWorkspace,
)

FRONTIER_SIZES = (64, 256, 1024, 4096, 8192)
ACTION_CAP = 100
SPEEDUP_FLOOR = 5.0  # acceptance bar at frontier >= 1024


def _best_seconds(fn, min_time=0.12, repeats=5):
    """Best-of-``repeats`` mean per-call time (noise-robust)."""
    fn()  # warmup
    best = float("inf")
    for _ in range(repeats):
        iters, start = 0, perf_counter()
        while True:
            fn()
            iters += 1
            elapsed = perf_counter() - start
            if elapsed >= min_time / repeats and iters >= 3:
                break
        best = min(best, elapsed / iters)
    return best


def run_hotpath_bench(sizes=FRONTIER_SIZES, seed=0):
    world = get_world("beauty")
    built = world.built
    ref_env = ReferenceKGEnvironment(built, action_cap=ACTION_CAP,
                                     seed=seed)
    csr_env = KGEnvironment(built, action_cap=ACTION_CAP, seed=seed)
    workspace = RolloutWorkspace()
    rng = np.random.default_rng(seed)
    n_entities = built.kg.num_entities

    rows = []
    for size in sizes:
        entities = rng.integers(0, n_entities, size=size)
        visited = np.stack(
            [entities, rng.integers(0, n_entities, size=size)], axis=1)

        ref_s = _best_seconds(
            lambda: ref_env.batched_actions(entities, visited))
        csr_s = _best_seconds(
            lambda: csr_env.batched_actions(entities, visited))
        with no_grad():
            ws_s = _best_seconds(
                lambda: csr_env.batched_actions(entities, visited,
                                                workspace=workspace))
        rows.append({
            "frontier_size": int(size),
            "reference_eps": size / ref_s,
            "csr_eps": size / csr_s,
            "csr_workspace_eps": size / ws_s,
            "speedup": ref_s / csr_s,
            "speedup_workspace": ref_s / ws_s,
        })
    return rows


def emit(rows):
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_env_hotpath.json"
    payload = {
        "benchmark": "env_hotpath",
        "action_cap": ACTION_CAP,
        "rows": rows,
    }
    out.write_text(json.dumps(payload, indent=2))
    header = (f"{'frontier':>9} {'ref ent/s':>12} {'csr ent/s':>12} "
              f"{'csr+ws ent/s':>13} {'speedup':>8} {'ws speedup':>11}")
    print(header)
    for r in rows:
        print(f"{r['frontier_size']:>9} {r['reference_eps']:>12.0f} "
              f"{r['csr_eps']:>12.0f} {r['csr_workspace_eps']:>13.0f} "
              f"{r['speedup']:>8.1f} {r['speedup_workspace']:>11.1f}")
    print(f"-> {out}")
    return out


def test_env_hotpath_throughput():
    rows = run_hotpath_bench()
    emit(rows)
    for r in rows:
        if r["frontier_size"] >= 1024:
            best = max(r["speedup"], r["speedup_workspace"])
            assert best >= SPEEDUP_FLOOR, (
                f"frontier {r['frontier_size']}: {best:.1f}x < "
                f"{SPEEDUP_FLOOR}x over the loop reference")


if __name__ == "__main__":
    emit(run_hotpath_bench())
