"""Benchmark for the multiprocess execution plane (``repro.runtime``).

Measures thread-vs-process serving throughput over the shared-memory
table plane — the process mode over both exec transports (ring and
pipe), with bit-identity gates between modes and transports — the
scattered-frontier shard-major gather against the per-shard reference,
and serving p95 during a concurrent fine-tune round — inline on the serving
interpreter vs isolated in a subprocess updater — and writes
``benchmarks/results/BENCH_runtime.json``.

Run it any of three ways::

    python -m benchmarks.bench_runtime --quick   # bounded request stream
    python benchmarks/bench_runtime.py           # full run
    pytest benchmarks/bench_runtime.py -m slow -s  # run as a test

The pytest run is marked ``slow`` (excluded from tier-1); the quick
mode is the same configuration the ``runtime-bench --quick`` CLI
acceptance run uses.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS_DIR, bench_scale, get_world  # noqa: E402
from repro import REKSConfig, REKSTrainer  # noqa: E402
from repro.runtime.bench import (  # noqa: E402
    emit,
    format_report,
    run_runtime_bench,
)


def make_trainer() -> REKSTrainer:
    """An inference-ready REKS stack (training does not change what
    the execution plane measures)."""
    scale = bench_scale()
    world = get_world("beauty")
    dim = world.transe.config.dim
    config = REKSConfig(dim=dim, state_dim=dim,
                        sample_sizes=(100, scale.final_beam),
                        action_cap=scale.action_cap,
                        frontier_buckets=scale.frontier_buckets,
                        online_max_steps=4, seed=0)
    return REKSTrainer(world.dataset, world.built, model_name="narm",
                       config=config, transe=world.transe)


def run(trainer: REKSTrainer, quick: bool = False) -> dict:
    serving = [s for s in trainer.dataset.split.test
               if len(s.items) >= 2]
    delta = [s for s in trainer.dataset.split.validation
             if len(s.items) >= 2]
    if quick:
        serving, delta = serving[:128], delta[:64]
    # Thread/process equivalence is checked inside run_runtime_bench
    # (payload["serve"]["bit_identical"]) and asserted by callers.
    with tempfile.TemporaryDirectory(prefix="reks-runtime-") as tmp:
        payload = run_runtime_bench(
            trainer, serving, delta, checkpoint_dir=tmp,
            workers=4, concurrency=8, k=10,
            min_requests=(256 if quick else 768))
    payload["scale"] = bench_scale().name
    print(format_report(payload))
    return payload


def emit_results(payload: dict) -> Path:
    out = emit(payload, RESULTS_DIR / "BENCH_runtime.json")
    print(f"-> {out}")
    return out


@pytest.mark.slow
def test_runtime_plane():
    """Full run; process mode must stay bit-identical to thread mode
    (over both transports), the grouped gather must match the
    per-shard reference, and the subprocess round must not fail
    serving."""
    payload = run(make_trainer(), quick=False)
    emit_results(payload)
    assert payload["serve"]["bit_identical"]
    assert payload["serve"]["transport_bit_identical"]
    assert payload["gather"]["identical"]
    assert payload["online"]["during_subprocess_round"]["requests"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="bounded request stream")
    args = parser.parse_args(argv)
    payload = run(make_trainer(), quick=args.quick)
    emit_results(payload)
    ok = (payload["serve"]["bit_identical"]
          and payload["serve"]["transport_bit_identical"]
          and payload["gather"]["identical"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
