"""Figure 4: starting-point ablation — REKS_user vs REKS.

REKS starts semantic paths at the session's *last interacted item*;
the variant starts at the *user* entity (path length 3, sampling sizes
{100, 10, 1}, per the paper's re-tuned setup).  The paper finds the
last item start consistently better — recent behavior beats identity.
"""

import numpy as np

from common import (
    MODELS,
    average_runs,
    bench_scale,
    get_world,
    run_reks,
    table,
    write_result,
)
from repro.core import REKSConfig

METRICS = ("HR@5", "HR@10", "NDCG@5", "NDCG@10")


def test_fig4_starting_point(benchmark):
    scale = bench_scale()
    world = get_world("beauty")
    results = {}

    def run_all():
        for model in MODELS:
            last = [run_reks(world, model, seed) for seed in scale.seeds[:2]]
            user = [run_reks(world, model, seed,
                             config=REKSConfig.for_ablation("reks_user"))
                    for seed in scale.seeds[:2]]
            results[(model, "REKS")] = average_runs(last)
            results[(model, "REKS_user")] = average_runs(user)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[model, label] + [f"{results[(model, label)][m]:.2f}"
                              for m in METRICS]
            for model in MODELS for label in ("REKS_user", "REKS")]
    write_result("fig4_starting_point",
                 table(rows, headers=["Model", "Variant"] + list(METRICS)))

    # Paper shape: last-item start beats user start on average.
    mean_last = np.mean([results[(m, "REKS")]["HR@10"] for m in MODELS])
    mean_user = np.mean([results[(m, "REKS_user")]["HR@10"] for m in MODELS])
    assert mean_last > mean_user
