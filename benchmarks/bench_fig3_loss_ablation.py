"""Figure 3: loss-function ablation — REKS_R vs REKS_C vs REKS.

``REKS_R`` trains with the reward loss only (Eq. 12), ``REKS_C`` with
the cross-entropy loss only (Eq. 14), full REKS with both (Eq. 11).
The paper finds both parts matter, with REKS_R > REKS_C.
"""

import numpy as np

from common import (
    MODELS,
    average_runs,
    bench_scale,
    get_world,
    run_reks,
    table,
    write_result,
)
from repro.core import REKSConfig

VARIANTS = (("REKS_R", "reward_only"), ("REKS_C", "ce_only"),
            ("REKS", "joint"))
METRICS = ("HR@5", "HR@10", "NDCG@5", "NDCG@10")


def test_fig3_loss_ablation(benchmark):
    scale = bench_scale()
    world = get_world("beauty")
    results = {}

    def run_all():
        for model in MODELS:
            for label, mode in VARIANTS:
                runs = [run_reks(world, model, seed,
                                 config=REKSConfig(loss_mode=mode))
                        for seed in scale.seeds[:2]]
                results[(model, label)] = average_runs(runs)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[model, label] + [f"{results[(model, label)][m]:.2f}"
                              for m in METRICS]
            for model in MODELS for label, _ in VARIANTS]
    write_result("fig3_loss_ablation",
                 table(rows, headers=["Model", "Variant"] + list(METRICS)))

    # Paper shape: the joint loss beats both single-loss variants on
    # average across models (tolerance absorbs smoke-scale saturation
    # noise; see bench_fig5 for the same caveat).
    def mean_hr(label):
        return np.mean([results[(m, label)]["HR@10"] for m in MODELS])

    tolerance = 2.0 if bench_scale().name == "smoke" else 0.5
    assert mean_hr("REKS") >= mean_hr("REKS_C") - tolerance
    assert mean_hr("REKS") >= mean_hr("REKS_R") - tolerance
