"""Shared machinery for the per-table/per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation section and writes the rows/series to
``benchmarks/results/<name>.txt`` (pytest captures stdout, so the files
are the canonical output; they are also printed for ``-s`` runs).

Scale is controlled by the ``REKS_BENCH_SCALE`` environment variable:

* ``smoke`` (default): tiny synthetic datasets, 3 seeds, ~3 epochs —
  minutes on a laptop; reproduces the *shape* of every result.
* ``small``: small datasets, 5 seeds (the paper's run count), more
  epochs — an hour-ish.
* ``paper``: paper-magnitude datasets; only for the patient.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import (
    REKSConfig,
    REKSTrainer,
    StandaloneConfig,
    StandaloneTrainer,
    build_kg,
    create_encoder,
)
from repro.data import AmazonLikeGenerator, MovieLensLikeGenerator
from repro.data.stats import format_table
from repro.kg import TransE, TransEConfig

RESULTS_DIR = Path(__file__).parent / "results"

AMAZON_FLAVORS = ("beauty", "cellphones", "baby")
ALL_DATASETS = AMAZON_FLAVORS + ("movielens",)
MODELS = ("gru4rec", "narm", "srgnn", "gcsan", "bert4rec")


@dataclass
class BenchScale:
    """Knobs derived from REKS_BENCH_SCALE.

    ``final_beam`` widens the *last* hop of every REKS sampling-size
    tuple at reduced scale: the paper's {100, 1} assumes paper-scale
    fan-out (hundreds of outgoing edges per item), while tiny KGs have
    ~10-60, so the candidate pool would collapse to the out-degree of
    the last item.  Widening the final hop keeps the effective beam
    (number of candidate items per session) comparable to the paper's.
    Applied uniformly to every variant, so ablation comparisons stay
    internally fair; at ``paper`` scale it is 1 (exactly Table VII).
    """

    name: str
    data_scale: str
    seeds: Tuple[int, ...]
    reks_epochs: int
    base_epochs: int
    dim: int
    action_cap: int
    batch_size: int
    final_beam: int
    # Degree-quantile frontier buckets per hop: >1 at the larger
    # scales now that the CSR differential suite pins bucketed
    # correctness (measured 1.8x end-to-end inference at `small`;
    # smoke keeps the paper's single-rectangle layout).
    frontier_buckets: int = 1


_SCALES = {
    "smoke": BenchScale("smoke", "tiny", (0, 1, 2), 4, 4, 16, 60, 64, 8),
    "small": BenchScale("small", "small", (0, 1, 2, 3, 4), 6, 8, 32, 120,
                        128, 4, frontier_buckets=4),
    "paper": BenchScale("paper", "medium", (0, 1, 2, 3, 4), 10, 10, 64, 250,
                        128, 1, frontier_buckets=4),
}


def bench_scale() -> BenchScale:
    name = os.environ.get("REKS_BENCH_SCALE", "smoke").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REKS_BENCH_SCALE={name!r} unknown; use {sorted(_SCALES)}")
    return _SCALES[name]


# ----------------------------------------------------------------------
# Cached worlds (dataset + KG + TransE), keyed by flavor.
# ----------------------------------------------------------------------
@dataclass
class World:
    dataset: object
    built: object
    transe: TransE
    built_no_users: object = None


_WORLDS: Dict[Tuple[str, str, int], World] = {}


def get_world(flavor: str, dim: Optional[int] = None,
              include_no_user: bool = False) -> World:
    scale = bench_scale()
    dim = dim or scale.dim
    key = (flavor, scale.data_scale, dim)
    if key not in _WORLDS:
        if flavor == "movielens":
            dataset = MovieLensLikeGenerator(scale=scale.data_scale,
                                             seed=11).generate()
        else:
            dataset = AmazonLikeGenerator(flavor, scale=scale.data_scale,
                                          seed=7).generate()
        built = build_kg(dataset)
        transe = TransE(built.kg.num_entities, built.kg.num_relations,
                        TransEConfig(dim=dim, epochs=8, seed=13))
        transe.fit(built.kg)
        _WORLDS[key] = World(dataset=dataset, built=built, transe=transe)
    world = _WORLDS[key]
    if include_no_user and world.built_no_users is None \
            and flavor != "movielens":
        world.built_no_users = build_kg(world.dataset, include_users=False)
    return world


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_baseline(world: World, model: str, seed: int,
                 ks=(5, 10, 20)) -> Dict[str, float]:
    """Train + evaluate one standalone (non-explainable) model."""
    scale = bench_scale()
    item_init = world.transe.item_embeddings(world.built.item_entity)
    encoder = create_encoder(model, n_items=world.dataset.n_items,
                             dim=item_init.shape[1], item_init=item_init,
                             rng=np.random.default_rng(seed))
    trainer = StandaloneTrainer(
        encoder, world.dataset.split.train, world.dataset.split.validation,
        StandaloneConfig(epochs=scale.base_epochs, lr=2e-3,
                         batch_size=scale.batch_size, patience=2, seed=seed))
    trainer.fit()
    return trainer.evaluate(world.dataset.split.test, ks=ks)


def run_reks(world: World, model: str, seed: int, ks=(5, 10, 20),
             config: Optional[REKSConfig] = None, built=None,
             return_trainer: bool = False):
    """Train + evaluate one REKS-wrapped model."""
    scale = bench_scale()
    built = built or world.built
    # The scale's bucket count only applies to default runs; an
    # explicit variant config keeps its own value verbatim so
    # bucketing stays ablatable at every scale.
    frontier_buckets = (config.frontier_buckets if config is not None
                        else scale.frontier_buckets)
    if config is None:
        config = REKSConfig()
    dim = world.transe.config.dim
    sizes = tuple(config.sample_sizes[:-1]) + (
        max(config.sample_sizes[-1], scale.final_beam),)
    cfg = REKSConfig(**{**config.__dict__,
                        "dim": dim, "state_dim": dim,
                        "sample_sizes": sizes,
                        "epochs": scale.reks_epochs,
                        "batch_size": scale.batch_size,
                        "action_cap": scale.action_cap,
                        "frontier_buckets": frontier_buckets,
                        "patience": 2, "seed": seed})
    transe = world.transe if built is world.built else None
    trainer = REKSTrainer(world.dataset, built, model_name=model,
                          config=cfg, transe=transe)
    trainer.fit()
    metrics = trainer.evaluate(world.dataset.split.test, ks=ks)
    if return_trainer:
        return metrics, trainer
    return metrics


def average_runs(runs: Sequence[Dict[str, float]]) -> Dict[str, float]:
    keys = runs[0].keys()
    return {k: float(np.mean([r[k] for r in runs])) for k in keys}


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------
def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def table(rows, headers) -> str:
    return format_table(rows, headers=headers)
