"""Table VI: session statistics of all four datasets (splits, lengths)."""

from common import ALL_DATASETS, get_world, table, write_result
from repro.data.stats import dataset_statistics

FIELDS = ("#entities", "#relations", "#sessions", "#train sessions",
          "#validation sessions", "#test sessions", "average length")


def test_table6_dataset_statistics(benchmark):
    worlds = {name: get_world(name) for name in ALL_DATASETS}

    def collect():
        return {name: dataset_statistics(w.dataset, w.built.kg)
                for name, w in worlds.items()}

    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [[field] + [stats[name][field] for name in ALL_DATASETS]
            for field in FIELDS]
    write_result("table6_dataset_stats",
                 table(rows, headers=["Dataset"] + list(ALL_DATASETS)))

    for name in ALL_DATASETS:
        s = stats[name]
        total = (s["#train sessions"] + s["#validation sessions"]
                 + s["#test sessions"])
        assert total == s["#sessions"]
        # 75/10/15 split within rounding.
        assert abs(s["#train sessions"] / s["#sessions"] - 0.75) < 0.02
        # Paper sessions average 3.3-3.9 items.
        assert 2.0 < s["average length"] < 6.0
