"""Figure 10: case studies — rendered semantic paths for live sessions.

Trains REKS_NARM on each Amazon dataset and renders the top explanation
paths for a handful of test sessions, in the paper's arrow notation.
Asserted shape: every rendered path starts at the session's last item,
is a genuine KG walk, and at least one case hits the ground truth.
"""

import numpy as np

from common import AMAZON_FLAVORS, bench_scale, get_world, run_reks, write_result
from repro.core import Explainer


def test_fig10_case_study(benchmark):
    scale = bench_scale()
    blocks = []
    hits = 0
    rendered_paths = 0

    def run_all():
        nonlocal hits, rendered_paths
        for flavor in AMAZON_FLAVORS:
            world = get_world(flavor)
            _, trainer = run_reks(world, "narm", scale.seeds[0],
                                  return_trainer=True)
            explainer = Explainer(trainer)
            rng = np.random.default_rng(1)
            test = world.dataset.split.test
            picks = rng.choice(len(test), size=min(3, len(test)),
                               replace=False)
            cases = explainer.explain_sessions([test[i] for i in picks], k=3)
            for case in cases:
                blocks.append(f"--- {flavor} ---\n"
                              + explainer.render_case(case))
                hits += case.hit
                start_entity = trainer.built.item_entity[
                    case.session_items[-1]]
                for rec in case.recommendations:
                    if rec.path is not None:
                        rendered_paths += 1
                        assert rec.path.entities[0] == start_entity
                        assert rec.path.is_simple()
        return blocks

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_result("fig10_case_study", "\n\n".join(blocks))

    assert rendered_paths > 0, "no explanation paths were generated"
    assert hits >= 1, "at least one case should hit the ground truth"
