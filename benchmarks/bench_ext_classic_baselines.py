"""Extension: classic non-neural floors vs the neural baselines.

Not a paper table — context the paper omits.  POP / S-POP / Markov /
ItemKNN set the floor that any neural SR model must clear, and the
Markov chain in particular shows how much of the synthetic datasets'
signal is first-order co-occurrence (the part REKS's ``co_occur``
edges expose to the KG walk).
"""

from common import bench_scale, get_world, run_baseline, table, write_result
from repro.eval.metrics import evaluate_rankings, top_k_from_scores
from repro.models.neighbors import CLASSIC_BASELINES, create_classic_baseline

METRICS = ("HR@10", "NDCG@10")


def test_ext_classic_baselines(benchmark):
    scale = bench_scale()
    world = get_world("beauty")
    dataset = world.dataset
    targets = [s.target for s in dataset.split.test]
    results = {}

    def run_all():
        for name in CLASSIC_BASELINES:
            model = create_classic_baseline(name, n_items=dataset.n_items)
            model.fit(dataset.split.train)
            ranked = top_k_from_scores(
                model.score_sessions(dataset.split.test), 10)
            results[name] = evaluate_rankings(ranked, targets, ks=(10,))
        results["narm (neural)"] = run_baseline(world, "narm",
                                                scale.seeds[0], ks=(10,))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[name] + [f"{m[k]:.2f}" for k in METRICS]
            for name, m in results.items()]
    write_result("ext_classic_baselines",
                 table(rows, headers=["Method"] + list(METRICS)))

    # Shape: the Markov chain beats pure popularity on sequence data,
    # and the trained neural model beats raw popularity.
    assert results["markov"]["HR@10"] > results["pop"]["HR@10"]
    assert results["narm (neural)"]["HR@10"] > results["pop"]["HR@10"]
