"""Benchmark harness package (enables ``python -m benchmarks.<name>``).

Benchmarks remain directly runnable as scripts and collectable by
pytest; this package marker only adds the ``-m`` entry points.
"""
