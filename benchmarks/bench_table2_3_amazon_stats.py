"""Tables II & III: relation and entity statistics of the Amazon KGs.

Regenerates the relation-count and entity-count tables for the three
synthetic Amazon datasets.  Absolute counts are scaled down from the
paper (see DESIGN.md §6); the *relative* inventory — which relations
dominate, Baby's single category — must match.
"""

from common import AMAZON_FLAVORS, bench_scale, get_world, table, write_result
from repro.data.stats import entity_statistics, relation_statistics

RELATIONS = ("purchase", "produced_by", "belong_to", "also_bought",
             "also_viewed", "bought_together", "co_occur")
ENTITIES = ("user", "product", "brand", "category", "related_product")


def test_table2_relation_statistics(benchmark):
    worlds = {f: get_world(f) for f in AMAZON_FLAVORS}

    def collect():
        return {f: relation_statistics(w.built.kg)
                for f, w in worlds.items()}

    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [[rel] + [stats[f].get(rel, 0) for f in AMAZON_FLAVORS]
            for rel in RELATIONS]
    text = table(rows, headers=["Relation"] + list(AMAZON_FLAVORS))
    write_result("table2_amazon_relations", text)

    for flavor in AMAZON_FLAVORS:
        # Table II shape: related-product links dominate the KG.
        assert stats[flavor]["also_bought"] > stats[flavor]["produced_by"]
        assert stats[flavor]["co_occur"] > 0


def test_table3_entity_statistics(benchmark):
    worlds = {f: get_world(f) for f in AMAZON_FLAVORS}

    def collect():
        return {f: entity_statistics(w.built.kg) for f, w in worlds.items()}

    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [[ent] + [stats[f].get(ent, 0) for f in AMAZON_FLAVORS]
            for ent in ENTITIES]
    text = table(rows, headers=["Entity"] + list(AMAZON_FLAVORS))
    write_result("table3_amazon_entities", text)

    # Table III shape: Baby has exactly one category; related products
    # outnumber products; Beauty has the most brands.
    assert stats["baby"]["category"] == 1
    for flavor in AMAZON_FLAVORS:
        assert stats[flavor]["related_product"] >= stats[flavor]["product"]
    assert stats["beauty"]["brand"] >= stats["baby"]["brand"]
