"""Figure 7: hyper-parameter sensitivity of REKS_NARM (lr and β, K=10).

Sweeps the learning rate over {1e-4, 5e-4, 1e-3, 5e-3} and the loss
balance β over {0.2, 0.4, 0.6, 0.8, 1.0, 1.2}.  The paper's point is
*robustness*: performance moves, but no setting collapses.
"""

import numpy as np

from common import bench_scale, get_world, run_reks, table, write_result
from repro.core import REKSConfig

LRS = (1e-4, 5e-4, 1e-3, 5e-3)
BETAS = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2)


def test_fig7_hyperparameter_sensitivity(benchmark):
    world = get_world("beauty")
    seed = bench_scale().seeds[0]
    results = {"lr": {}, "beta": {}}

    def run_all():
        for lr in LRS:
            results["lr"][lr] = run_reks(
                world, "narm", seed, config=REKSConfig(lr=lr), ks=(10,))
        for beta in BETAS:
            results["beta"][beta] = run_reks(
                world, "narm", seed, config=REKSConfig(beta=beta), ks=(10,))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [["lr", f"{lr:g}", f"{m['HR@10']:.2f}", f"{m['NDCG@10']:.2f}"]
            for lr, m in results["lr"].items()]
    rows += [["beta", f"{b:g}", f"{m['HR@10']:.2f}", f"{m['NDCG@10']:.2f}"]
             for b, m in results["beta"].items()]
    text = table(rows, headers=["Sweep", "Value", "HR@10", "NDCG@10"])

    from repro.eval.plots import line_chart

    text += "\n\n" + line_chart(
        list(LRS),
        {"HR@10": [results["lr"][lr]["HR@10"] for lr in LRS],
         "NDCG@10": [results["lr"][lr]["NDCG@10"] for lr in LRS]},
        title="REKS_NARM vs learning rate (K=10)")
    text += "\n\n" + line_chart(
        list(BETAS),
        {"HR@10": [results["beta"][b]["HR@10"] for b in BETAS],
         "NDCG@10": [results["beta"][b]["NDCG@10"] for b in BETAS]},
        title="REKS_NARM vs beta (K=10)")
    write_result("fig7_hyperparams", text)

    # Paper shape: comparatively insensitive — no configuration collapses
    # to a small fraction of the best one.
    for sweep in ("lr", "beta"):
        hrs = np.array([m["HR@10"] for m in results[sweep].values()])
        assert hrs.min() > 0.25 * hrs.max(), (
            f"{sweep} sweep collapsed: {hrs}")
