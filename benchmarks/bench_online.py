"""Benchmark for the continual-learning (``repro.online``) subsystem.

Walks the ingest → fine-tune → publish → hot-swap lifecycle against a
live server and writes ``benchmarks/results/BENCH_online.json``: ingest
throughput, compaction cost, publish round time, swap latency with
zero dropped in-flight requests, and post-swap p95 vs. a cold restart
on the same checkpoint.

Run it any of three ways::

    python -m benchmarks.bench_online --quick   # bounded request stream
    python benchmarks/bench_online.py           # full run
    pytest benchmarks/bench_online.py -m slow -s  # run as a test

The pytest run is marked ``slow`` (excluded from tier-1); the quick
mode is the same configuration the ``online-bench --quick`` CLI
acceptance run uses.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS_DIR, bench_scale, get_world  # noqa: E402
from repro import REKSConfig, REKSTrainer  # noqa: E402
from repro.online.bench import (  # noqa: E402
    emit,
    format_report,
    run_online_bench,
)


def make_trainer() -> REKSTrainer:
    """An inference-ready REKS stack (warm-start weights are what the
    first published checkpoint snapshots; offline fitting does not
    change what the lifecycle measures)."""
    scale = bench_scale()
    world = get_world("beauty")
    dim = world.transe.config.dim
    config = REKSConfig(dim=dim, state_dim=dim,
                        sample_sizes=(100, scale.final_beam),
                        action_cap=scale.action_cap,
                        frontier_buckets=scale.frontier_buckets,
                        online_min_sessions=8, online_max_steps=4,
                        seed=0)
    return REKSTrainer(world.dataset, world.built, model_name="narm",
                       config=config, transe=world.transe)


def run(trainer: REKSTrainer, quick: bool = False) -> dict:
    test = [s for s in trainer.dataset.split.test if len(s.items) >= 2]
    val = [s for s in trainer.dataset.split.validation
           if len(s.items) >= 2]
    if quick:
        test, val = test[:128], val[:64]
    with tempfile.TemporaryDirectory(prefix="reks-online-") as tmp:
        payload = run_online_bench(
            trainer, test, val, checkpoint_dir=tmp,
            concurrency=16, k=10,
            min_requests=(256 if quick else 768))
    payload["scale"] = bench_scale().name
    print(format_report(payload))
    return payload


def emit_results(payload: dict) -> Path:
    out = emit(payload, RESULTS_DIR / "BENCH_online.json")
    print(f"-> {out}")
    return out


@pytest.mark.slow
def test_online_lifecycle_bench():
    """Full lifecycle: zero dropped requests, bit-identical post-swap."""
    payload = run(make_trainer(), quick=False)
    emit_results(payload)
    assert payload["swap"]["dropped"] == 0
    assert payload["determinism_bit_identical"]
    assert not payload["swap"]["cache_flushed"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="bounded serving/delta session sets")
    args = parser.parse_args(argv)
    payload = run(make_trainer(), quick=args.quick)
    emit_results(payload)
    ok = (payload["swap"]["dropped"] == 0
          and payload["determinism_bit_identical"]
          and not payload["swap"]["cache_flushed"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
