"""Extension ablations: implementation design choices beyond the paper.

DESIGN.md calls out several engineering decisions the paper leaves
open; this bench quantifies each on REKS_GRU4REC / Beauty:

* **action_cap** — PGPR-style pruning of huge action spaces;
* **final hop beam** — the scale adaptation of the sampling sizes
  (see ``common.BenchScale.final_beam``);
* **fallback_to_encoder** — filling top-K slots the paths missed with
  down-weighted encoder scores;
* **train_selection** — deterministic top-k (Algorithm 1) vs Gumbel
  top-k stochastic exploration.
"""

import numpy as np

from common import bench_scale, get_world, run_reks, table, write_result
from repro.core import REKSConfig
from repro.core.beam import beam_diagnostics
from repro.data.loader import SessionBatcher

METRICS = ("HR@10", "NDCG@10")


def test_ext_design_choices(benchmark):
    scale = bench_scale()
    world = get_world("beauty")
    seed = scale.seeds[0]
    results = {}

    def run_all():
        for cap in (10, 30, scale.action_cap):
            results[f"action_cap={cap}"] = run_reks(
                world, "gru4rec", seed,
                config=REKSConfig(action_cap=cap))
        for beam in (1, 4, scale.final_beam):
            results[f"final_beam={beam}"] = run_reks(
                world, "gru4rec", seed,
                config=REKSConfig(sample_sizes=(100, beam)))
        results["fallback=on"] = run_reks(
            world, "gru4rec", seed,
            config=REKSConfig(fallback_to_encoder=True))
        results["selection=sample"] = run_reks(
            world, "gru4rec", seed,
            config=REKSConfig(train_selection="sample"))
        results["selection=top"] = run_reks(
            world, "gru4rec", seed, config=REKSConfig())
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[name] + [f"{m[k]:.2f}" for k in METRICS]
            for name, m in results.items()]
    write_result("ext_design_choices",
                 table(rows, headers=["Variant"] + list(METRICS)))

    # Sanity shapes: a tiny action cap strangles the walk; the fallback
    # never hurts HR (it only adds candidates below real path scores).
    assert (results[f"action_cap={scale.action_cap}"]["HR@10"]
            >= results["action_cap=10"]["HR@10"] - 1.0)
    assert (results["fallback=on"]["HR@10"]
            >= results["selection=top"]["HR@10"] - 1.0)


def test_ext_beam_coverage(benchmark):
    """Quantify beam coverage vs final-hop width (tuning aid)."""
    scale = bench_scale()
    world = get_world("beauty")
    _, trainer = run_reks(world, "gru4rec", scale.seeds[0],
                          return_trainer=True)
    batch = next(iter(SessionBatcher(world.dataset.split.test,
                                     batch_size=64, shuffle=False)))

    def run_all():
        out = {}
        for beam in (1, 2, 4, 8):
            sizes_backup = trainer.agent.config.sample_sizes
            trainer.agent.config.sample_sizes = (100, beam)
            out[beam] = beam_diagnostics(trainer.agent, batch)
            trainer.agent.config.sample_sizes = sizes_backup
        return out

    diags = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[beam, f"{d.paths_per_session:.1f}",
             f"{d.candidates_per_session:.1f}",
             f"{d.target_reached_rate:.2f}", f"{d.mass_kept:.3f}"]
            for beam, d in diags.items()]
    write_result("ext_beam_coverage", table(
        rows, headers=["final beam", "paths/sess", "candidates/sess",
                       "target reached", "prob mass"]))

    # Wider beams must reach the target strictly more often (weakly).
    rates = [diags[b].target_reached_rate for b in (1, 2, 4, 8)]
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
