"""Accuracy-vs-latency Pareto for cascade serving (PR 9).

Sweeps the first-stage candidate budget ``M`` and measures, per point:

* closed-loop serving latency (p50/p99, cache off so every request
  walks) against the cascade-off baseline on the same request stream;
* HR@10 / NDCG@10 of the candidate-constrained rankings vs the
  unconstrained walk (last item of each test session is the target);
* per-hop frontier-width reduction (surviving-path census from the
  walk's ``row_frontier`` instrumentation).

The emitted ``benchmarks/results/BENCH_cascade.json`` carries the full
sweep plus a declarative SLO table evaluated on the best Pareto point:

* ``cascade_p99_speedup`` >= 2.0x,
* absolute HR@10 loss <= 0.02 (two points of hit rate),
* cascade-off serving must stay **bit-identical** to the plain batch
  path (the no-regression gate for everyone not opting in).

``METRICS_cascade.json`` snapshots the fleet metrics of a cascade
server (candidate / pruned-frontier counters) for the CI artifact.

Run it any of three ways::

    python -m benchmarks.bench_cascade --quick   # CI smoke config
    python benchmarks/bench_cascade.py           # full M sweep
    pytest benchmarks/bench_cascade.py -m slow -s # sweep as a test
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS_DIR, bench_scale, get_world  # noqa: E402
from repro import REKSConfig, REKSTrainer  # noqa: E402
from repro.cascade import build_constraint, provider_from_trainer  # noqa: E402
from repro.eval.metrics import evaluate_rankings  # noqa: E402
from repro.serving.bench import _closed_loop, check_determinism, emit  # noqa: E402

M_SWEEP = (10, 25, 50, 100)
M_SWEEP_QUICK = (10, 25)

def cascade_slos(p99_floor: float = 2.0):
    """Declarative acceptance gates, evaluated on the best Pareto
    point (max p99 speedup among points within the accuracy budget).
    Same shape as the telemetry-plane SLOs: metric + bound,
    machine-checkable from the emitted JSON alone.  ``p99_floor`` is
    2.0 for the acceptance run; CI smoke passes a loose floor because
    shared runners make absolute latency ratios noisy — the committed
    BENCH_cascade.json carries the real number.
    """
    return (
        {"name": "cascade_p99_speedup_floor", "metric": "p99_speedup",
         "min_value": p99_floor},
        {"name": "cascade_hr10_loss_ceiling", "metric": "hr10_loss",
         "max_value": 0.02},
        {"name": "cascade_off_bit_identical", "metric": "off_identical",
         "min_value": 1.0},
    )


def make_trainer() -> REKSTrainer:
    """Inference-ready REKS stack (same shape as bench_serving)."""
    scale = bench_scale()
    world = get_world("beauty")
    dim = world.transe.config.dim
    config = REKSConfig(dim=dim, state_dim=dim,
                        sample_sizes=(100, scale.final_beam),
                        action_cap=scale.action_cap,
                        frontier_buckets=scale.frontier_buckets, seed=0)
    return REKSTrainer(world.dataset, world.built, model_name="narm",
                       config=config, transe=world.transe)


def evaluate_slos(point: dict, p99_floor: float = 2.0) -> list:
    results = []
    for slo in cascade_slos(p99_floor):
        value = float(point[slo["metric"]])
        ok = True
        if "min_value" in slo:
            ok = ok and value >= slo["min_value"]
        if "max_value" in slo:
            ok = ok and value <= slo["max_value"]
        results.append({**slo, "value": value, "ok": ok})
    return results


def _accuracy(server, sessions, k: int = 10) -> dict:
    results = server.recommend_many(sessions, k=k)
    ranked = [np.asarray(r.items, dtype=np.int64) for r in results]
    targets = [s.items[-1] for s in sessions]
    metrics = evaluate_rankings(ranked, targets, ks=(k,))
    return {f"hr@{k}": metrics[f"HR@{k}"] / 100.0,
            f"ndcg@{k}": metrics[f"NDCG@{k}"] / 100.0}


def _latency(trainer, stream, concurrency: int, k: int,
             **server_kwargs) -> dict:
    """Best-of-5 closed-loop pass; cache off so every request walks.

    The pass with the lowest p99 wins: the closed loop runs dozens of
    client threads on a shared host, so any single pass's tail can be
    scheduler noise — best-of-N on the gated statistic itself keeps
    the SLO comparison about the dataplane, not the host.
    """
    with trainer.serve(cache_size=0, **server_kwargs) as server:
        best_s, best = float("inf"), None
        for _ in range(5):
            elapsed = _closed_loop(server, stream, concurrency, k)
            stats = server.stats()
            if (best is None
                    or stats.latency_ms_p99 < best.latency_ms_p99):
                best_s, best = elapsed, stats
            server.reset_stats()
    return {"seconds": best_s,
            "throughput_rps": len(stream) / best_s,
            "p50_ms": best.latency_ms_p50,
            "p95_ms": best.latency_ms_p95,
            "p99_ms": best.latency_ms_p99}


def _frontier_mass(trainer, sessions, constraint=None) -> int:
    """Total surviving-path census across hops (row_frontier sums)."""
    from repro.data.loader import SessionBatcher

    agent = trainer.agent
    total = 0
    batcher = SessionBatcher(sessions, batch_size=256,
                             max_length=trainer.config.max_session_length,
                             augment=False, shuffle=False)
    ws = agent.workspace
    ws.row_frontier = []
    try:
        for batch in batcher:
            agent.recommend(batch, k=10, candidates=constraint)
        total = sum(int(c.sum()) for c in ws.row_frontier)
    finally:
        ws.row_frontier = None
    return total


def _truncated_prefix(trainer, session):
    items = list(session.items)[:-1]
    return tuple(items[-trainer.config.max_session_length:])


def run_cascade_bench(trainer: REKSTrainer, quick: bool = False,
                      p99_floor: float = 2.0) -> dict:
    scale = bench_scale()
    sessions = [s for s in trainer.dataset.split.test
                if len(s.items) >= 2]
    eval_sessions = sessions[:128] if quick else sessions[:512]
    concurrency = 32
    min_requests = 1024
    rounds = max(1, -(-min_requests // len(eval_sessions)))
    stream = list(eval_sessions) * rounds
    sweep = M_SWEEP_QUICK if quick else M_SWEEP
    k = 10

    # Gate 0: cascade off == plain batch path, bit for bit.
    off_identical = check_determinism(trainer, eval_sessions[:64], k=k)

    # Baseline: unconstrained serving on the identical stream.
    base_lat = _latency(trainer, stream, concurrency, k)
    with trainer.serve(cache_size=0) as server:
        base_acc = _accuracy(server, eval_sessions, k=k)
    frontier_sessions = eval_sessions[:64]
    base_frontier = _frontier_mass(trainer, frontier_sessions)
    print(f"baseline        : p50={base_lat['p50_ms']:.1f}ms "
          f"p99={base_lat['p99_ms']:.1f}ms "
          f"hr@10={base_acc['hr@10']:.3f} "
          f"frontier={base_frontier}")

    provider = provider_from_trainer(trainer, "neighbors")
    points = []
    for m in sweep:
        lat = _latency(trainer, stream, concurrency, k,
                       cascade=provider, cascade_m=m)
        with trainer.serve(cache_size=0, cascade=provider,
                           cascade_m=m) as server:
            acc = _accuracy(server, eval_sessions, k=k)
        cand_rows = [provider.top_m(_truncated_prefix(trainer, s), m)
                     for s in frontier_sessions]
        constraint = build_constraint(trainer.agent, cand_rows,
                                      trainer.config.path_length)
        frontier = _frontier_mass(trainer, frontier_sessions, constraint)
        point = {
            "m": m,
            "provider": provider.provider_id,
            "latency": lat,
            "accuracy": acc,
            "p99_speedup": base_lat["p99_ms"] / max(lat["p99_ms"], 1e-9),
            "p50_speedup": base_lat["p50_ms"] / max(lat["p50_ms"], 1e-9),
            "hr10_loss": max(0.0, base_acc["hr@10"] - acc["hr@10"]),
            "ndcg10_loss": max(0.0,
                               base_acc["ndcg@10"] - acc["ndcg@10"]),
            "frontier_mass": frontier,
            "frontier_reduction": base_frontier / max(frontier, 1),
        }
        points.append(point)
        print(f"cascade M={m:>3}   : p50={lat['p50_ms']:.1f}ms "
              f"p99={lat['p99_ms']:.1f}ms "
              f"({point['p99_speedup']:.2f}x p99)  "
              f"hr@10={acc['hr@10']:.3f} "
              f"(loss {point['hr10_loss']:.3f})  "
              f"frontier {point['frontier_reduction']:.1f}x smaller")

    # Best Pareto point: max p99 speedup within the accuracy budget
    # (fall back to max speedup so the SLO table still reports).
    within = [p for p in points if p["hr10_loss"] <= 0.02]
    best = max(within or points, key=lambda p: p["p99_speedup"])
    slo = evaluate_slos({**best, "off_identical": float(off_identical)},
                        p99_floor)

    # Fleet-metrics artifact: one short pass on a cascade server so the
    # cascade_* counters land in METRICS_cascade.json.
    with trainer.serve(cache_size=0, cascade=provider,
                       cascade_m=best["m"], trace_sample=1.0) as server:
        server.recommend_many(eval_sessions[:32], k=k)
        snapshot = server.fleet_snapshot().to_dict()
        spans = server.tracer.drain()
    snapshot["cascade_spans_recorded"] = sum(
        1 for s in spans if s.name == "cascade")

    return {
        "benchmark": "cascade",
        "scale": scale.name,
        "quick": quick,
        "k": k,
        "concurrency": concurrency,
        "requests": len(stream),
        "eval_sessions": len(eval_sessions),
        "off_identical": bool(off_identical),
        "baseline": {"latency": base_lat, "accuracy": base_acc,
                     "frontier_mass": base_frontier},
        "points": points,
        "best": {"m": best["m"], "p99_speedup": best["p99_speedup"],
                 "hr10_loss": best["hr10_loss"],
                 "frontier_reduction": best["frontier_reduction"]},
        "slo": slo,
        "slo_ok": all(r["ok"] for r in slo),
        "metrics_snapshot": snapshot,
    }


def emit_results(payload: dict, out_path=None) -> Path:
    out = emit(payload, out_path or RESULTS_DIR / "BENCH_cascade.json")
    metrics_out = out.parent / "METRICS_cascade.json"
    metrics_out.write_text(
        json.dumps(payload["metrics_snapshot"], indent=2))
    print(f"-> {out}")
    print(f"-> {metrics_out}")
    return out


@pytest.mark.slow
def test_cascade_pareto_sweep():
    """Full M sweep; >= 2x p99 at <= 2 points of HR@10 loss."""
    payload = run_cascade_bench(make_trainer(), quick=False)
    emit_results(payload)
    failed = [r["name"] for r in payload["slo"] if not r["ok"]]
    assert payload["slo_ok"], f"cascade SLO violations: {failed}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short stream + two-point M sweep "
                             "(the CI smoke configuration)")
    parser.add_argument("--p99-floor", type=float, default=2.0,
                        help="gated p99 speedup floor (CI passes a "
                             "loose value; acceptance is 2.0)")
    parser.add_argument("--out", type=Path, default=None,
                        help="payload path (default "
                             "benchmarks/results/BENCH_cascade.json; "
                             "METRICS_cascade.json lands next to it)")
    args = parser.parse_args(argv)
    t0 = perf_counter()
    payload = run_cascade_bench(make_trainer(), quick=args.quick,
                                p99_floor=args.p99_floor)
    emit_results(payload, args.out)
    print(f"total {perf_counter() - t0:.1f}s; SLO "
          + ("PASS" if payload["slo_ok"]
             else "FAIL " + str([r["name"] for r in payload["slo"]
                                 if not r["ok"]])))
    return 0 if payload["slo_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
