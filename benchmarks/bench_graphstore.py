"""Benchmark for the sharded graph store (``repro.graphstore``).

Measures the two costs the sharded store was built to cut:

1. **Compaction** — folding an online delta into the capped adjacency:
   the monolithic O(E) concat+sort rebuild (the pre-shard algorithm,
   ``merge_capped`` over the flattened store) vs the per-shard
   delta-proportional path (``compact_store``), across delta sizes and
   for deltas confined to <= 2 shards as well as scattered ones;
2. **Plane publish** — shipping the compacted adjacency to process
   workers: a full per-shard export of every segment vs
   ``ProcessWorkerPool.publish_tables``'s delta publish (dirty shards
   only: export + broadcast + worker re-attach + old-segment unlink).

Writes ``BENCH_graphstore.json`` (repo root by default).  Run::

    python -m benchmarks.bench_graphstore --quick   # CI smoke
    python -m benchmarks.bench_graphstore           # current scale
    REKS_BENCH_SCALE=small python -m benchmarks.bench_graphstore

The ``--speedup-floor`` gate asserts the confined-delta compaction
speedup (the acceptance number lives in the committed payload, taken
at ``small`` scale).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))


def _world_and_trainer():
    from common import bench_scale, get_world
    from repro import REKSConfig, REKSTrainer

    scale = bench_scale()
    world = get_world("beauty")
    dim = world.transe.config.dim
    # graph_shards pinned: the bench worlds are small enough that the
    # auto heuristic would (correctly) pick one shard, but the publish
    # section measures the delta protocol, which needs shards to diff.
    config = REKSConfig(dim=dim, state_dim=dim,
                        sample_sizes=(100, scale.final_beam),
                        action_cap=scale.action_cap, graph_shards=8,
                        seed=0)
    trainer = REKSTrainer(world.dataset, world.built, model_name="narm",
                          config=config, transe=world.transe)
    return world, trainer, scale


def _fresh_env(built, action_cap, shards):
    from repro.core.environment import KGEnvironment

    return KGEnvironment(built, action_cap=action_cap, seed=3,
                         shards=shards)


def _craft_delta(env, built, rng, target, shard_ids):
    """Stage ~``target`` fresh edges whose heads live in ``shard_ids``.

    Returns the number actually staged (dedup may shave candidates).
    """
    co_occur = built.kg.relation_id("co_occur")
    store = env.csr_tables()
    pools = []
    for sid in shard_ids:
        lo, hi = int(store.boundaries[sid]), int(store.boundaries[sid + 1])
        entities = np.arange(lo, hi, dtype=np.int64)
        room = np.take(store.degrees, entities) < env.action_cap - 1
        pools.append(entities[room])
    pool = np.concatenate(pools)
    if pool.size == 0:
        return 0
    staged = 0
    n_ent = built.kg.num_entities
    for _ in range(8):  # top up until the dedup-surviving count lands
        need = target - staged
        if need <= 0:
            break
        heads = rng.choice(pool, size=2 * need)
        tails = rng.integers(0, n_ent, size=2 * need)
        keep = heads != tails
        staged += env.stage_edges(heads[keep],
                                  np.full(int(keep.sum()), co_occur),
                                  tails[keep])
    return staged


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


# Synthetic store sizes per bench scale: the compaction kernels are a
# data-structure cost, so they are measured at production-representative
# edge counts (the scale's *world* KG is tiny — a 16k-edge graph hides
# the O(E) rebuild behind fixed per-call overheads).
_STORE_SIZES = {"smoke": (20_000, 10), "small": (120_000, 18),
                "paper": (600_000, 33)}


def _synthetic_store(scale_name, shards, cap, rng):
    from repro.graphstore import ShardedCSR

    n_ent, avg_deg = _STORE_SIZES.get(scale_name, _STORE_SIZES["smoke"])
    degrees = np.minimum(rng.poisson(avg_deg, n_ent).astype(np.int64),
                         cap)
    edges = int(degrees.sum())
    rels = rng.integers(0, 8, size=edges)
    tails = rng.integers(0, n_ent, size=edges)
    return ShardedCSR.build(degrees, rels, tails, num_shards=shards)


def _kernel_rows(store, action_cap, fractions, repeats,
                 confined_shards=2):
    """Store-level kernel timing: monolithic rebuild vs per-shard."""
    from repro.graphstore import compact_store, merge_capped

    rng = np.random.default_rng(41)
    flat = store.to_flat()  # baseline input — the old store was flat
    n_ent, edges = store.num_entities, store.num_edges
    rows = []
    for frac, scattered in [(f, False) for f in fractions] + [
            (fractions[-1], True)]:
        n = max(1, int(frac * edges))
        if scattered:
            heads = rng.integers(0, n_ent, size=n)
        else:
            hi = int(store.boundaries[min(confined_shards,
                                          store.num_shards)])
            heads = rng.integers(0, hi, size=n)
        rels = rng.integers(0, 8, size=n)
        tails = rng.integers(0, n_ent, size=n)
        order = np.argsort(heads, kind="stable")
        heads, rels, tails = heads[order], rels[order], tails[order]
        sid_of = store.shard_of(heads)
        by_shard = {int(sid): (heads[sid_of == sid],
                               rels[sid_of == sid],
                               tails[sid_of == sid])
                    for sid in np.unique(sid_of)}
        full_s = _time(
            lambda: merge_capped(n_ent, flat.degrees, flat.rels[1:],
                                 flat.tails[1:], heads, rels, tails,
                                 action_cap),
            repeats)
        sharded_s = _time(
            lambda: compact_store(store, by_shard, action_cap), repeats)
        rows.append({
            "delta_frac": frac,
            "delta_edges": int(n),
            "scattered": scattered,
            "shards_touched": len(by_shard),
            "full_rebuild_s": full_s,
            "sharded_compact_s": sharded_s,
            "speedup": full_s / max(sharded_s, 1e-9),
        })
    return rows


def _bench_env_compaction(built, action_cap, shards, frac, repeats):
    """End-to-end ``KGEnvironment.compact`` on the real world KG."""
    from repro.graphstore import merge_capped

    env = _fresh_env(built, action_cap, shards)
    store = env.csr_tables()
    rng = np.random.default_rng(42)
    staged = _craft_delta(env, built, rng,
                          max(1, int(frac * store.num_edges)), [0, 1])
    if staged == 0:
        return None
    by_shard = env.staged_by_shard()
    snap = env.staged_snapshot()
    order = np.argsort(snap[0], kind="stable")
    heads, rels, tails = (col[order] for col in snap)
    flat = store.to_flat()
    full_s = _time(
        lambda: merge_capped(store.num_entities, flat.degrees,
                             flat.rels[1:], flat.tails[1:], heads, rels,
                             tails, action_cap),
        repeats)
    start = perf_counter()
    env.compact()
    end_to_end_s = perf_counter() - start
    return {
        "delta_frac": frac,
        "delta_edges": int(staged),
        "shards_touched": len(by_shard),
        "full_rebuild_s": full_s,
        "compact_end_to_end_s": end_to_end_s,
        "speedup": full_s / max(end_to_end_s, 1e-9),
    }


def _bench_publish(trainer, built, repeats):
    """Full per-shard export vs delta publish (incl. worker re-attach)."""
    from repro.runtime import ProcessWorkerPool, export_shard_planes

    env = trainer.env
    rng = np.random.default_rng(43)

    def full_export():
        planes = export_shard_planes(env)
        for plane in planes.values():
            plane.unlink()

    full_s = _time(full_export, repeats)
    planes = export_shard_planes(env)
    full_bytes = sum(plane.nbytes for plane in planes.values())
    for plane in planes.values():
        plane.unlink()

    result = {
        "full_export_s": full_s,
        "full_export_bytes": int(full_bytes),
    }
    with ProcessWorkerPool(trainer.agent, workers=1) as pool:
        staged = _craft_delta(env, built, rng,
                              max(1, env.csr_tables().num_edges // 100),
                              [0, 1])
        result["delta_edges"] = int(staged)
        if staged == 0:  # every candidate deduped away: nothing to ship
            return result
        snap = env.staged_snapshot()
        pool.stage_edges(*snap)
        env.compact()
        start = perf_counter()
        pool.publish_tables(env)
        delta_s = perf_counter() - start
        publish = dict(pool.last_publish or {})
    if not publish:
        return result
    result.update({
        "delta_publish_s": delta_s,       # export + broadcast + re-attach
        "delta_publish_bytes": int(publish["nbytes"]),
        "delta_shards": publish["shards"],
        "total_shards": publish["total_shards"],
        "bytes_ratio": publish["nbytes"] / max(full_bytes, 1),
    })
    return result


def run(quick: bool = False, shards: int = 0) -> dict:
    from common import bench_scale

    world, trainer, _scale = _world_and_trainer()
    built = world.built
    store_shards = shards or 32
    action_cap = trainer.config.action_cap
    fractions = [0.01] if quick else [0.001, 0.01, 0.05]
    repeats = 1 if quick else 3

    rng = np.random.default_rng(40)
    store = _synthetic_store(bench_scale().name, store_shards,
                             action_cap, rng)
    payload = {
        "benchmark": "graphstore",
        "scale": bench_scale().name,
        "store": {
            "entities": store.num_entities,
            "edges": store.num_edges,
            "shards": store.num_shards,
        },
        "world": {
            "entities": trainer.env.csr_tables().num_entities,
            "edges": trainer.env.csr_tables().num_edges,
            "shards": trainer.env.num_shards,
        },
        "action_cap": action_cap,
        "compaction": _kernel_rows(store, action_cap, fractions,
                                   repeats),
        "env_compaction": _bench_env_compaction(
            built, action_cap, max(trainer.env.num_shards, 16), 0.01,
            repeats),
        "publish": _bench_publish(trainer, built, repeats),
    }
    confined = [row["speedup"] for row in payload["compaction"]
                if not row["scattered"] and row["delta_frac"] <= 0.01
                and row["shards_touched"] <= 2]
    payload["confined_delta_speedup_min"] = (min(confined)
                                             if confined else None)
    return payload


def format_report(payload: dict) -> str:
    store = payload["store"]
    lines = [
        f"graphstore bench @ scale {payload['scale']}: synthetic store "
        f"{store['edges']} edges / {store['entities']} entities in "
        f"{store['shards']} shards (cap {payload['action_cap']})"]
    for row in payload["compaction"]:
        kind = "scattered" if row["scattered"] else "confined "
        lines.append(
            f"  compact {kind} {row['delta_frac'] * 100:5.2f}%E "
            f"({row['delta_edges']:>6} edges, "
            f"{row['shards_touched']:>2} shards): "
            f"full {row['full_rebuild_s'] * 1e3:7.2f}ms  "
            f"sharded {row['sharded_compact_s'] * 1e3:7.2f}ms  "
            f"{row['speedup']:6.1f}x")
    env_row = payload.get("env_compaction")
    if env_row:
        lines.append(
            f"  env.compact (world KG, {env_row['delta_edges']} edges, "
            f"{env_row['shards_touched']} shards): full "
            f"{env_row['full_rebuild_s'] * 1e3:.2f}ms vs end-to-end "
            f"{env_row['compact_end_to_end_s'] * 1e3:.2f}ms "
            f"({env_row['speedup']:.1f}x)")
    pub = payload["publish"]
    if "delta_publish_s" in pub:
        lines.append(
            f"  publish: full export {pub['full_export_s'] * 1e3:.2f}ms "
            f"/ {pub['full_export_bytes'] / 1e6:.2f}MB vs delta "
            f"{pub['delta_publish_s'] * 1e3:.2f}ms / "
            f"{pub['delta_publish_bytes'] / 1e6:.2f}MB "
            f"({len(pub['delta_shards'])}/{pub['total_shards']} shards, "
            f"{pub['bytes_ratio'] * 100:.1f}% of bytes, incl. worker "
            f"re-attach)")
    else:
        lines.append("  publish: delta skipped (no stageable candidates "
                     "on this world)")
    if payload.get("confined_delta_speedup_min") is not None:
        lines.append(f"  confined <=1%E delta speedup floor: "
                     f"{payload['confined_delta_speedup_min']:.1f}x")
    return "\n".join(lines)


def emit(payload: dict, out: Path) -> Path:
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


@pytest.mark.slow
def test_graphstore_bench():
    payload = run(quick=True)
    print(format_report(payload))
    from common import RESULTS_DIR

    emit(payload, RESULTS_DIR / "BENCH_graphstore.json")
    assert payload["compaction"], "no compaction rows measured"
    if "bytes_ratio" in payload["publish"]:
        assert payload["publish"]["bytes_ratio"] < 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single delta size, single repeat")
    parser.add_argument("--scale", default=None,
                        help="override REKS_BENCH_SCALE "
                             "(smoke/small/paper)")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard count (0 = max(env auto, 16))")
    parser.add_argument("--speedup-floor", type=float, default=0.0,
                        help="fail unless every confined <=1%%E delta "
                             "compacts at least this many times faster "
                             "than the monolithic rebuild")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root "
                             "BENCH_graphstore.json)")
    args = parser.parse_args(argv)
    if args.scale:
        os.environ["REKS_BENCH_SCALE"] = args.scale

    payload = run(quick=args.quick, shards=args.shards)
    print(format_report(payload))

    from repro.utils import default_bench_path

    out = Path(args.out or default_bench_path("BENCH_graphstore.json"))
    emit(payload, out)
    print(f"-> {out}")

    floor = args.speedup_floor
    observed = payload.get("confined_delta_speedup_min")
    if floor and (observed is None or observed < floor):
        print(f"FAIL: confined-delta compaction speedup "
              f"{observed} < floor {floor}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
