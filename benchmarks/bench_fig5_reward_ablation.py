"""Figure 5: reward-function ablation — REKS_R1 / -path / -rank / full.

``REKS R1``: bare 0/1 terminal reward; ``REKS-path``: item reward only;
``REKS-rank``: item + path rewards (rank term removed); ``REKS``: all
three (Eq. 5).  The paper shows every component contributes.
"""

import numpy as np

from common import (
    MODELS,
    average_runs,
    bench_scale,
    get_world,
    run_reks,
    table,
    write_result,
)
from repro.core import REKSConfig

VARIANTS = (("REKS_R1", "r1"), ("REKS-path", "item_only"),
            ("REKS-rank", "no_rank"), ("REKS", "full"))
METRICS = ("HR@5", "HR@10", "NDCG@5", "NDCG@10")


def test_fig5_reward_ablation(benchmark):
    scale = bench_scale()
    world = get_world("beauty")
    results = {}

    def run_all():
        for model in MODELS:
            for label, mode in VARIANTS:
                runs = [run_reks(world, model, seed,
                                 config=REKSConfig(reward_mode=mode))
                        for seed in scale.seeds[:2]]
                results[(model, label)] = average_runs(runs)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[model, label] + [f"{results[(model, label)][m]:.2f}"
                              for m in METRICS]
            for model in MODELS for label, _ in VARIANTS]
    text = table(rows, headers=["Model", "Variant"] + list(METRICS))

    from repro.eval.plots import grouped_bar_chart

    text += "\n\n" + grouped_bar_chart(
        {model: {label: results[(model, label)]["HR@10"]
                 for label, _ in VARIANTS} for model in MODELS},
        title="HR@10 by reward variant (Beauty)")
    write_result("fig5_reward_ablation", text)

    def mean_hr(label):
        return np.mean([results[(m, label)]["HR@10"] for m in MODELS])

    # Paper shape: full reward >= the stripped variants on average.  At
    # smoke scale the tiny datasets saturate (HR@10 near 90%), so the
    # separation shrinks into run noise — assert with a tolerance here;
    # REKS_BENCH_SCALE=small reproduces the strict ordering.
    tolerance = 2.0 if bench_scale().name == "smoke" else 0.5
    assert mean_hr("REKS") >= mean_hr("REKS_R1") - tolerance
    assert mean_hr("REKS") >= mean_hr("REKS-path") - tolerance
    assert mean_hr("REKS") >= mean_hr("REKS-rank") - tolerance
