"""Micro-benchmarks of the substrate layers (throughput tracking).

Unlike the table/figure benches (one-shot protocol runs), these use
pytest-benchmark's repeated measurement to track the hot paths:
autograd backward, GRU step, transformer layer, KG action-space
queries, TransE epochs, and one full REKS train step.  Useful when
optimizing the numpy kernels.
"""

import numpy as np
import pytest

from common import get_world
from repro import REKSConfig, REKSTrainer, nn  # noqa: F401
from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.core.environment import KGEnvironment
from repro.data.loader import SessionBatcher
from repro.kg import TransE, TransEConfig
from repro.nn.rnn import GRU
from repro.nn.transformer import TransformerEncoderLayer


def test_micro_autograd_mlp_backward(benchmark):
    rng = np.random.default_rng(0)
    w1 = Tensor(rng.standard_normal((128, 256)).astype(np.float32),
                requires_grad=True)
    w2 = Tensor(rng.standard_normal((256, 64)).astype(np.float32),
                requires_grad=True)
    x = Tensor(rng.standard_normal((64, 128)).astype(np.float32))

    def step():
        w1.grad = None
        w2.grad = None
        loss = F.softmax(x.matmul(w1).relu().matmul(w2)).sum()
        loss.backward()
        return float(loss.item())

    result = benchmark(step)
    assert np.isfinite(result)


def test_micro_gru_forward(benchmark):
    rng = np.random.default_rng(0)
    gru = GRU(64, 64, rng=rng)
    x = Tensor(rng.standard_normal((64, 8, 64)).astype(np.float32))

    outputs, final = benchmark(lambda: gru(x))
    assert final.shape == (64, 64)


def test_micro_transformer_layer(benchmark):
    rng = np.random.default_rng(0)
    layer = TransformerEncoderLayer(64, 2, dropout=0.0, rng=rng)
    layer.eval()
    x = Tensor(rng.standard_normal((32, 10, 64)).astype(np.float32))

    out = benchmark(lambda: layer(x))
    assert out.shape == (32, 10, 64)


def test_micro_kg_batched_actions(benchmark):
    world = get_world("beauty")
    env = KGEnvironment(world.built, action_cap=100, seed=0)
    rng = np.random.default_rng(0)
    start, count = world.built.kg.type_range("product")
    entities = rng.integers(start, start + count, size=512)
    visited = entities[:, None]

    rels, tails, mask = benchmark(
        lambda: env.batched_actions(entities, visited))
    assert rels.shape[0] == 512


def test_micro_transe_epoch(benchmark):
    world = get_world("beauty")
    heads, rels, tails = world.built.kg.triples()
    model = TransE(world.built.kg.num_entities,
                   world.built.kg.num_relations,
                   TransEConfig(dim=32, epochs=1, seed=0))

    benchmark(lambda: model.fit_triples(heads, rels, tails))


def test_micro_reks_train_step(benchmark):
    world = get_world("beauty")
    cfg = REKSConfig(dim=world.transe.config.dim,
                     state_dim=world.transe.config.dim,
                     epochs=1, batch_size=64, action_cap=60, seed=0)
    trainer = REKSTrainer(world.dataset, world.built, model_name="gru4rec",
                          config=cfg, transe=world.transe)
    batch = next(iter(SessionBatcher(world.dataset.split.train,
                                     batch_size=64, shuffle=False)))

    def step():
        trainer.optimizer.zero_grad()
        loss, stats = trainer.agent.losses(batch)
        loss.backward()
        trainer.optimizer.step()
        return stats.loss

    result = benchmark(step)
    assert np.isfinite(result)
