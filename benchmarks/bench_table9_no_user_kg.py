"""Table IX: REKS on Amazon KGs built *without* user information.

The paper removes user entities (and the purchase relation) from the
Amazon KGs and shows REKS_NARM still beats vanilla NARM — user info
helps but is not required.  Reproduced for the three Amazon flavors.
"""

from common import (
    AMAZON_FLAVORS,
    average_runs,
    bench_scale,
    get_world,
    run_baseline,
    run_reks,
    table,
    write_result,
)

METRICS = ("HR@5", "HR@10", "HR@20", "NDCG@5", "NDCG@10", "NDCG@20")


def test_table9_no_user_information(benchmark):
    scale = bench_scale()
    results = {}

    def run_all():
        for flavor in AMAZON_FLAVORS:
            world = get_world(flavor, include_no_user=True)
            base_runs = [run_baseline(world, "narm", seed)
                         for seed in scale.seeds]
            reks_runs = [run_reks(world, "narm", seed,
                                  built=world.built_no_users)
                         for seed in scale.seeds]
            results[flavor] = (average_runs(base_runs),
                               average_runs(reks_runs))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for flavor in AMAZON_FLAVORS:
        base, reks = results[flavor]
        for label, metrics in (("NARM", base), ("REKS_NARM", reks)):
            rows.append([flavor, label]
                        + [f"{metrics[m]:.2f}" for m in METRICS])
    write_result("table9_no_user_kg",
                 table(rows, headers=["Dataset", "Method"] + list(METRICS)))

    # Paper shape: even without user entities REKS_NARM > NARM on HR@10
    # for a majority of datasets.
    wins = sum(results[f][1]["HR@10"] > results[f][0]["HR@10"]
               for f in AMAZON_FLAVORS)
    assert wins >= 2, f"REKS (no-user KG) should win on most datasets, won {wins}/3"
