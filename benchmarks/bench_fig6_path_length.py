"""Figure 6: path-length ablation — length 2 vs 3 vs 4.

Sampling sizes follow the paper: {100,1}, {100,1,1}, {100,1,1,1}.
Expected shape: length 2 is best (longer paths add noise), and length 4
tends to beat length 3 because the KG's "item -> attribute -> item"
structure makes even path lengths end on items.
"""

import numpy as np

from common import (
    MODELS,
    average_runs,
    bench_scale,
    get_world,
    run_reks,
    table,
    write_result,
)
from repro.core import REKSConfig

VARIANTS = (("REKS_l3", "reks_l3"), ("REKS_l4", "reks_l4"),
            ("REKS", "reks"))
METRICS = ("HR@5", "HR@10", "NDCG@5", "NDCG@10")


def test_fig6_path_length(benchmark):
    scale = bench_scale()
    world = get_world("beauty")
    results = {}

    def run_all():
        for model in MODELS:
            for label, preset in VARIANTS:
                runs = [run_reks(world, model, seed,
                                 config=REKSConfig.for_ablation(preset))
                        for seed in scale.seeds[:2]]
                results[(model, label)] = average_runs(runs)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[model, label] + [f"{results[(model, label)][m]:.2f}"
                              for m in METRICS]
            for model in MODELS for label, _ in VARIANTS]
    write_result("fig6_path_length",
                 table(rows, headers=["Model", "Variant"] + list(METRICS)))

    def mean_hr(label):
        return np.mean([results[(m, label)]["HR@10"] for m in MODELS])

    # Paper shape: length 2 best (tolerance absorbs smoke-scale noise).
    tolerance = 2.0 if bench_scale().name == "smoke" else 0.5
    assert mean_hr("REKS") >= mean_hr("REKS_l3") - tolerance
    assert mean_hr("REKS") >= mean_hr("REKS_l4") - tolerance
