"""Load benchmark for the request-coalescing serving subsystem.

Measures naive one-session-per-call throughput against the coalescing
:class:`~repro.serving.RecommendationServer` (cold cache) and the
cache-warm replay, across a concurrency sweep, and writes
``benchmarks/results/BENCH_serving.json``.

Run it any of three ways::

    python -m benchmarks.bench_serving --quick   # single quick config
    python benchmarks/bench_serving.py           # full sweep
    pytest benchmarks/bench_serving.py -m slow -s # sweep as a test

The pytest sweep is marked ``slow`` (excluded from tier-1); the quick
mode is the same configuration the ``serve-bench --quick`` CLI
acceptance run uses.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS_DIR, bench_scale, get_world  # noqa: E402
from repro import REKSConfig, REKSTrainer  # noqa: E402
from repro.serving.bench import (  # noqa: E402
    check_determinism,
    emit,
    format_report,
    run_serving_bench,
)

CONCURRENCY_SWEEP = (1, 8, 32)
SPEEDUP_FLOOR = 2.0  # acceptance bar at concurrency 32


def make_trainer() -> REKSTrainer:
    """An inference-ready REKS stack (training does not affect
    serving throughput, so none is run)."""
    scale = bench_scale()
    world = get_world("beauty")
    dim = world.transe.config.dim
    config = REKSConfig(dim=dim, state_dim=dim,
                        sample_sizes=(100, scale.final_beam),
                        action_cap=scale.action_cap,
                        frontier_buckets=scale.frontier_buckets, seed=0)
    return REKSTrainer(world.dataset, world.built, model_name="narm",
                       config=config, transe=world.transe)


def run_sweep(trainer: REKSTrainer, quick: bool = False) -> dict:
    sessions = [s for s in trainer.dataset.split.test
                if len(s.items) >= 2]
    assert check_determinism(trainer, sessions[:64], k=10), \
        "coalesced results diverge from recommend_sessions"
    sweep = (32,) if quick else CONCURRENCY_SWEEP
    min_requests = 384 if quick else 1024
    runs = []
    for concurrency in sweep:
        payload = run_serving_bench(
            trainer, sessions, concurrency=concurrency, k=10,
            min_requests=min_requests, naive_sessions=64)
        print(format_report(payload))
        runs.append(payload)
    return {"benchmark": "serving_sweep",
            "scale": bench_scale().name,
            "runs": runs}


def emit_results(payload: dict) -> Path:
    out = emit(payload, RESULTS_DIR / "BENCH_serving.json")
    print(f"-> {out}")
    return out


@pytest.mark.slow
def test_serving_load_sweep():
    """Full concurrency sweep; >= 2x naive at concurrency 32."""
    payload = run_sweep(make_trainer(), quick=False)
    emit_results(payload)
    top = [r for r in payload["runs"] if r["concurrency"] == 32][0]
    assert top["speedup_vs_naive"] >= SPEEDUP_FLOOR, (
        f"coalesced speedup {top['speedup_vs_naive']:.2f}x < "
        f"{SPEEDUP_FLOOR}x at concurrency 32")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single concurrency-32 run with a "
                             "shorter request stream")
    args = parser.parse_args(argv)
    payload = run_sweep(make_trainer(), quick=args.quick)
    emit_results(payload)
    top = [r for r in payload["runs"] if r["concurrency"] == 32][0]
    return 0 if top["speedup_vs_naive"] >= SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    sys.exit(main())
