"""Table VIII: overall comparison — 5 baselines vs REKS on 4 datasets.

For every (dataset, model) cell this bench trains the standalone model
and its REKS-wrapped version over several seeds, reports HR/NDCG at
{5, 10, 20}, the relative improvement, and the paired-t-test stars —
the full protocol of §IV-B-1 at reduced scale.

Shape expectations (asserted): REKS improves the average HR@10 for a
clear majority of (dataset, model) cells.  On synthetic data individual
cells can be noisy at smoke scale, hence a majority vote rather than a
per-cell assertion.
"""

import numpy as np

from common import (
    ALL_DATASETS,
    MODELS,
    average_runs,
    bench_scale,
    get_world,
    run_baseline,
    run_reks,
    table,
    write_result,
)
from repro.eval.significance import (
    improvement_percent,
    paired_t_test,
    significance_marker,
)

METRICS = ("HR@5", "HR@10", "HR@20", "NDCG@5", "NDCG@10", "NDCG@20")


def _cell(world, model):
    scale = bench_scale()
    base_runs, reks_runs = [], []
    for seed in scale.seeds:
        base_runs.append(run_baseline(world, model, seed))
        reks_runs.append(run_reks(world, model, seed))
    return base_runs, reks_runs


def test_table8_overall_comparison(benchmark):
    scale = bench_scale()
    datasets = ALL_DATASETS if scale.name != "smoke" else ALL_DATASETS
    results = {}

    def run_all():
        for name in datasets:
            world = get_world(name)
            for model in MODELS:
                results[(name, model)] = _cell(world, model)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    wins = 0
    cells = 0
    for name in datasets:
        for model in MODELS:
            base_runs, reks_runs = results[(name, model)]
            base = average_runs(base_runs)
            reks = average_runs(reks_runs)
            for metric in METRICS:
                _, p = paired_t_test([r[metric] for r in base_runs],
                                     [r[metric] for r in reks_runs])
                rows.append([
                    name, model, metric,
                    f"{base[metric]:.2f}", f"{reks[metric]:.2f}",
                    f"{improvement_percent(base[metric], reks[metric]):+.2f}%"
                    + significance_marker(p),
                ])
            cells += 1
            if reks["HR@10"] > base["HR@10"]:
                wins += 1

    text = table(rows, headers=["Dataset", "Model", "Metric", "Base",
                                "REKS", "Improv."])
    text += f"\n\nREKS wins HR@10 in {wins}/{cells} (dataset, model) cells."
    write_result("table8_overall", text)

    # Paper shape: REKS improves in "almost all cases".
    assert wins / cells >= 0.7, (
        f"REKS should beat the baseline in most cells, won {wins}/{cells}")
