"""Regression tests for degenerate frontiers.

Zero-degree (dead-end) entities, all-dead-end batches, empty batches,
and visited-masking that kills every action of a row must all produce
well-formed ``(N, A)`` shapes — never raise — and a walk over a
dead-end frontier must return an empty but shape-consistent rollout.
"""

import numpy as np
import pytest

from repro.core.environment import KGEnvironment, RolloutWorkspace
from repro.kg.builder import BuiltKG
from repro.kg.graph import KnowledgeGraph

from test_env_differential import random_built_kg


@pytest.fixture(scope="module")
def built():
    return random_built_kg(np.random.default_rng(0), n_edges=200,
                           dead_ends=4)


@pytest.fixture(scope="module")
def env(built):
    return KGEnvironment(built, action_cap=50, seed=0)


def _dead_entities(built, count):
    start = built.kg.num_entities - count
    return np.arange(start, built.kg.num_entities, dtype=np.int64)


class TestDegenerateFrontiers:
    def test_zero_degree_entity_in_batch(self, env, built):
        dead = _dead_entities(built, 4)[:1]
        live = np.array([0], dtype=np.int64)  # hub-ish head
        entities = np.concatenate([live, dead])
        visited = entities[:, None]
        rels, tails, mask = env.batched_actions(entities, visited)
        assert rels.shape == tails.shape == mask.shape
        assert rels.shape[0] == 2
        assert not mask[1].any()          # dead row: nothing legal
        assert (rels[1] == 0).all() and (tails[1] == 0).all()

    def test_all_dead_end_batch(self, env, built):
        entities = _dead_entities(built, 4)
        rels, tails, mask = env.batched_actions(entities,
                                                entities[:, None])
        assert rels.shape == (4, 1)       # width floors at 1
        assert not mask.any()
        assert (rels == 0).all() and (tails == 0).all()

    def test_empty_batch(self, env):
        entities = np.zeros(0, dtype=np.int64)
        visited = np.zeros((0, 2), dtype=np.int64)
        rels, tails, mask = env.batched_actions(entities, visited)
        assert rels.shape == tails.shape == mask.shape == (0, 1)

    def test_empty_batch_with_workspace(self, env):
        workspace = RolloutWorkspace()
        entities = np.zeros(0, dtype=np.int64)
        visited = np.zeros((0, 3), dtype=np.int64)
        rels, tails, mask = env.batched_actions(entities, visited,
                                                workspace=workspace)
        assert rels.shape == (0, 1)
        assert not mask.any()

    def test_visited_kills_every_action_of_a_row(self, env, built):
        entity = 0
        _, tails = env.actions_of(entity)
        assert len(tails) > 0
        neighborhood = np.unique(np.concatenate([[entity], tails]))
        visited = np.tile(neighborhood, (1, 1))
        rels, batch_tails, mask = env.batched_actions(
            np.array([entity]), visited)
        assert rels.shape[0] == 1
        assert not mask[0].any()

    def test_edgeless_kg(self):
        kg = KnowledgeGraph()
        kg.add_entity_type("product", 3)
        kg.add_relation("r0")
        kg.finalize()
        item_entity = np.array([-1, 0, 1, 2], dtype=np.int64)
        entity_item = np.array([1, 2, 3], dtype=np.int64)
        built = BuiltKG(kg=kg, item_entity=item_entity,
                        entity_item=entity_item, user_entity=None,
                        include_users=False)
        env = KGEnvironment(built, action_cap=10, seed=0)
        entities = np.array([0, 1, 2], dtype=np.int64)
        rels, tails, mask = env.batched_actions(entities,
                                                entities[:, None])
        assert rels.shape == (3, 1)
        assert not mask.any()
        assert env.degree(0) == 0
        got_r, got_t = env.actions_of(1)
        assert len(got_r) == len(got_t) == 0

    def test_bucketed_all_dead_ends(self, env, built):
        entities = _dead_entities(built, 4)
        buckets = list(env.iter_frontier_buckets(
            entities, entities[:, None], num_buckets=3))
        rows = np.sort(np.concatenate([b.rows for b in buckets]))
        np.testing.assert_array_equal(rows, np.arange(4))
        assert not any(b.mask.any() for b in buckets)


class TestDeadEndWalk:
    def test_walk_over_dead_frontier_is_empty_and_consistent(self):
        """A batch whose start entities have no edges yields an empty
        rollout with matching first dimensions, not a crash."""
        from repro.autograd import no_grad
        from repro.autograd.tensor import Tensor
        from repro.core.agent import REKSAgent
        from repro.core.config import REKSConfig
        from repro.core.policy import PolicyNetwork
        from repro.data.loader import SessionBatcher
        from repro.data.schema import Session

        rng = np.random.default_rng(3)
        # Items 1..3 are entities 0..2 with no outgoing edges at all.
        kg = KnowledgeGraph()
        kg.add_entity_type("product", 3)
        kg.add_entity_type("attribute", 2)
        r0 = kg.add_relation("r0")
        kg.add_triples([3], r0, [4])  # only attribute->attribute edges
        kg.finalize()
        item_entity = np.array([-1, 0, 1, 2], dtype=np.int64)
        entity_item = np.zeros(kg.num_entities, dtype=np.int64)
        entity_item[:3] = [1, 2, 3]
        built = BuiltKG(kg=kg, item_entity=item_entity,
                        entity_item=entity_item, user_entity=None,
                        include_users=False)
        env = KGEnvironment(built, action_cap=10, seed=0)
        dim = 8
        policy = PolicyNetwork(
            session_dim=dim, kg_dim=dim, state_dim=dim,
            entity_table=rng.standard_normal(
                (kg.num_entities, dim)).astype(np.float32),
            relation_table=rng.standard_normal(
                (kg.num_relations, dim)).astype(np.float32),
            rng=rng)
        cfg = REKSConfig(dim=dim, state_dim=dim, path_length=2,
                         sample_sizes=(4, 2), action_cap=10)
        agent = REKSAgent(encoder=None, policy=policy, env=env,
                          rewards=None, config=cfg)
        sessions = [Session([1, 2], 0, 0), Session([2, 3], 0, 0)]
        batch = next(iter(SessionBatcher(sessions, batch_size=4,
                                         shuffle=False)))
        session_repr = Tensor(
            rng.standard_normal((batch.batch_size, dim)).astype(np.float32))
        with no_grad():
            rollout = agent.walk(session_repr, batch)
        assert rollout.num_paths == 0
        assert rollout.entities.shape[0] == 0
        assert rollout.relations.shape[0] == 0
        assert rollout.prob.shape == (0,)
