"""Property-based tests at the nn and KG-builder level."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.data.schema import Session
from repro.data.loader import SessionBatcher
from repro.kg.builder import build_amazon_kg
from repro.nn.graph import build_session_graph
from repro.nn.rnn import GRU


class TestGRUMaskProperty:
    @given(st.integers(1, 6), st.integers(1, 5), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_right_padding_never_changes_final_state(self, length, pad,
                                                     seed):
        rng = np.random.default_rng(seed)
        gru = GRU(4, 5, rng=rng)
        x = rng.standard_normal((1, length, 4)).astype(np.float32)
        padded = np.concatenate(
            [x, np.zeros((1, pad, 4), dtype=np.float32)], axis=1)
        mask = np.concatenate([np.ones((1, length), dtype=np.float32),
                               np.zeros((1, pad), dtype=np.float32)],
                              axis=1)
        _, clean = gru(Tensor(x))
        _, masked = gru(Tensor(padded), mask=mask)
        np.testing.assert_allclose(masked.data, clean.data,
                                   rtol=1e-4, atol=1e-5)


class TestSessionGraphProperties:
    @given(st.lists(st.integers(1, 8), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_rows_normalized(self, items):
        arr = np.array(items, dtype=np.int64)
        _, adj_in, adj_out, _ = build_session_graph(arr)
        for row in adj_out:
            total = row.sum()
            assert total == 0 or abs(total - 1.0) < 1e-5
        for row in adj_in:
            total = row.sum()
            assert total == 0 or abs(total - 1.0) < 1e-5

    @given(st.lists(st.integers(1, 8), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_alias_maps_into_nodes(self, items):
        arr = np.array(items, dtype=np.int64)
        nodes, _, _, alias = build_session_graph(arr)
        assert len(alias) == len(arr)
        for pos, node_idx in enumerate(alias):
            assert nodes[node_idx] == arr[pos]

    @given(st.lists(st.integers(1, 8), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_nodes_are_distinct(self, items):
        nodes, _, _, _ = build_session_graph(np.array(items))
        assert len(set(nodes.tolist())) == len(nodes)


class TestBatcherTruncationProperty:
    @given(st.lists(st.integers(1, 20), min_size=2, max_size=30),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_last_item_always_prefix_tail(self, items, max_length):
        session = Session(items, user_id=0, day=0)
        batcher = SessionBatcher([session], batch_size=1,
                                 max_length=max_length, shuffle=False)
        batch = next(iter(batcher))
        assert batch.last_items[0] == items[-2]
        assert batch.targets[0] == items[-1]
        assert batch.items.shape[1] <= max_length


class TestKGBuilderProperty:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_metadata_edges_symmetric(self, seed):
        from repro.data import AmazonLikeGenerator

        ds = AmazonLikeGenerator("beauty", scale="tiny",
                                 seed=seed % 1000).generate()
        built = build_amazon_kg(ds)
        kg = built.kg
        heads, rels, tails = kg.triples()
        co = kg.relation_id("co_occur")
        # Every non-co_occur edge must have its mirror.
        sample = np.random.default_rng(seed % 97).choice(
            len(heads), size=min(300, len(heads)), replace=False)
        for i in sample:
            if rels[i] == co:
                continue
            assert kg.has_edge(int(tails[i]), int(rels[i]), int(heads[i]))
