"""Telemetry plane: metric blocks, fleet registry, tracing, exporters.

Unit layers (block seqlock, registry retire/merge, tracer, Prometheus
text, SLO gates, HTTP endpoint) run against synthetic metrics; the
integration layers drive a real :class:`RecommendationServer` — thread
and process worker modes — and assert the fleet snapshot, trace-id
propagation through the ring codec *and* its pipe fallback, bounded
``ServerStats`` memory under a 1M-request soak, and zero steady-state
scratch allocations in the grouped gather.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import replace
from urllib.error import HTTPError
from urllib.request import urlopen

import numpy as np
import pytest

from repro import REKSConfig, REKSTrainer
from repro.serving.stats import RESERVOIR_SIZE, ServerStats
from repro.telemetry.block import (
    HIST_BUCKETS,
    LocalHistogram,
    MetricBlock,
    MetricSchema,
    Reservoir,
    bucket_index,
    bucket_upper_edges,
    fleet_schema,
    gather_shard_counter,
    merge_hists,
    walk_hop_hist,
)
from repro.telemetry.exporters import (
    SLO,
    evaluate_slos,
    json_snapshot,
    prometheus_text,
    serving_slos,
    split_labels,
)
from repro.telemetry.httpd import MetricsEndpoint
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sink import TraceSink
from repro.telemetry.top import heat_bar, render_top, shard_heat
from repro.telemetry.trace import (
    ROW_SPAN,
    SPAN_KINDS,
    SpanRecord,
    Tracer,
    attribute_rows,
    span_kind_id,
    spans_by_trace,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.telemetry.window import (
    RollingWindow,
    WindowSampler,
    hist_delta,
    hist_from_dict,
)


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    """Untrained (but inference-ready) REKS stack, shared per module."""
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture(scope="module")
def sharded_trainer(beauty_tiny, beauty_kg, beauty_transe):
    """Same stack over a 2-shard graph store (grouped gathers)."""
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        graph_shards=2, seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture()
def sessions(beauty_tiny):
    return [s for s in beauty_tiny.split.test if len(s.items) >= 2]


SMALL = MetricSchema(counters=("a_total", "b_total"),
                     gauges=("level",),
                     histograms=("lat_seconds",))


# ----------------------------------------------------------------------
# MetricBlock
# ----------------------------------------------------------------------
class TestMetricBlock:
    def test_bucket_geometry(self):
        edges = bucket_upper_edges()
        assert len(edges) == HIST_BUCKETS
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(1e-12) == 0      # underflow clamps low
        assert bucket_index(1e12) == HIST_BUCKETS - 1  # overflow clamps
        for value in (1e-6, 1e-3, 0.5, 1.0, 7.3):
            i = bucket_index(value)
            assert value <= edges[i]
            if i:
                # Exact powers of two sit on the boundary (frexp puts
                # them in the upper bucket); everything else is strict.
                assert value >= edges[i - 1]

    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_create_write_snapshot(self, backend):
        block = MetricBlock.create(SMALL, role="t", backend=backend)
        try:
            block.count("a_total")
            block.count("a_total", 4)
            block.count("nonexistent_total")   # unknown names are no-ops
            block.gauge("level", 2.5)
            for v in (0.001, 0.002, 0.004):
                block.observe("lat_seconds", v)
            snap = block.snapshot()
            assert not snap.torn
            assert snap.role == "t"
            assert snap.counters == {"a_total": 5, "b_total": 0}
            assert snap.gauges["level"] == 2.5
            hist = snap.hists["lat_seconds"]
            assert hist.count == 3
            assert hist.sum == pytest.approx(0.007)
            assert hist.min == 0.001 and hist.max == 0.004
            assert int(hist.buckets.sum()) == 3
        finally:
            block.unlink()

    def test_attach_sees_writer_mutations(self):
        block = MetricBlock.create(SMALL, role="w")
        try:
            reader = MetricBlock.attach(block.manifest, writer=False)
            block.count("b_total", 7)
            block.observe("lat_seconds", 0.25)
            snap = reader.snapshot()
            assert snap.counters["b_total"] == 7
            assert snap.hists["lat_seconds"].count == 1
            reader.close()
        finally:
            block.unlink()

    def test_quantiles_clamped_to_observed_extremes(self):
        block = MetricBlock.create(SMALL, role="q")
        try:
            for v in [0.010] * 99 + [0.100]:
                block.observe("lat_seconds", v)
            hist = block.snapshot().hists["lat_seconds"]
            assert hist.quantile(0.5) == pytest.approx(0.010, rel=0.6)
            assert hist.quantile(0.5) >= hist.min
            assert hist.quantile(1.0) == pytest.approx(0.100)
            assert hist.to_dict()["p99"] <= hist.max
        finally:
            block.unlink()

    def test_empty_histogram_snapshot(self):
        block = MetricBlock.create(SMALL, role="e")
        try:
            hist = block.snapshot().hists["lat_seconds"]
            assert hist.count == 0
            assert hist.quantile(0.99) == 0.0
            assert hist.mean == 0.0
            assert hist.to_dict()["min"] == 0.0  # not the +inf sentinel
        finally:
            block.unlink()

    def test_seqlock_consistent_under_hammering_writer(self):
        """Reader snapshots taken while a writer thread hammers the
        block must be internally consistent: bucket mass == count and
        count*value == sum (every observation is the same constant, so
        any torn copy shows up as a mismatch)."""
        block = MetricBlock.create(SMALL, role="h")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                block.observe("lat_seconds", 0.5)
                block.count("a_total")

        writer = threading.Thread(target=hammer)
        writer.start()
        try:
            checked = 0
            deadline = time.time() + 2.0
            while checked < 300 and time.time() < deadline:
                snap = block.snapshot()
                if snap.torn:
                    continue
                hist = snap.hists["lat_seconds"]
                assert int(hist.buckets.sum()) == hist.count
                assert hist.sum == pytest.approx(0.5 * hist.count)
                checked += 1
            assert checked >= 100  # the seqlock actually admits readers
        finally:
            stop.set()
            writer.join()
            block.unlink()

    def test_merge_hists_sums_mass_and_extremes(self):
        a, b = LocalHistogram(), LocalHistogram()
        for v in (0.001, 0.004):
            a.observe(v)
        b.observe(2.0)
        merged = merge_hists((a.snapshot(), None, b.snapshot()))
        assert merged.count == 3
        assert merged.sum == pytest.approx(2.005)
        assert merged.min == 0.001 and merged.max == 2.0
        empty = merge_hists(())
        assert empty.count == 0 and empty.min == 0.0

    def test_fleet_schema_labelled_families(self):
        schema = fleet_schema(num_shards=3, hops=2)
        assert gather_shard_counter(2) in schema.counters
        assert gather_shard_counter(3) not in schema.counters
        assert walk_hop_hist(1) in schema.histograms
        assert walk_hop_hist(2) not in schema.histograms
        # One shared schema: every core family present regardless.
        assert "requests_total" in schema.counters
        assert "request_latency_seconds" in schema.histograms


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_merges_counters_and_hists_across_roles(self):
        with MetricsRegistry() as registry:
            w0 = registry.create_block("w0", SMALL)
            w1 = registry.create_block("w1", SMALL)
            w0.count("a_total", 2)
            w1.count("a_total", 3)
            w0.observe("lat_seconds", 0.01)
            w1.observe("lat_seconds", 0.03)
            w0.gauge("level", 1.0)
            w1.gauge("level", 2.0)
            snap = registry.snapshot()
            assert snap.roles == ("w0", "w1")
            assert snap.counter("a_total") == 5
            assert snap.hist("lat_seconds").count == 2
            # Gauges stay per-role (point-in-time, not additive).
            assert snap.gauges["level"] == {"w0": 1.0, "w1": 2.0}

    def test_respawn_never_double_counts(self):
        """create_block under a live role retires the stale block:
        the fleet total is old + new, exactly once each."""
        with MetricsRegistry() as registry:
            old = registry.create_block("w0", SMALL)
            old.count("a_total", 5)
            old.observe("lat_seconds", 0.01)
            fresh = registry.create_block("w0", SMALL)  # the respawn
            fresh.count("a_total", 3)
            snap = registry.snapshot()
            assert snap.counter("a_total") == 8
            assert snap.hist("lat_seconds").count == 1
            assert snap.retired_blocks == 1
            assert snap.roles == ("w0",)
            # A second snapshot must not re-fold the retired mass.
            assert registry.snapshot().counter("a_total") == 8

    def test_retire_folds_and_is_idempotent(self):
        with MetricsRegistry() as registry:
            block = registry.create_block("u", SMALL)
            block.count("b_total", 9)
            block.gauge("level", 4.0)
            assert registry.retire("u") is True
            assert registry.retire("u") is False
            snap = registry.snapshot()
            assert snap.counter("b_total") == 9
            assert snap.roles == ()
            assert "level" not in snap.gauges  # gauges die with the role

    def test_close_retires_everything_and_rejects_creates(self):
        registry = MetricsRegistry()
        block = registry.create_block("w0", SMALL)
        block.count("a_total")
        registry.close()
        assert registry.snapshot().counter("a_total") == 1
        with pytest.raises(RuntimeError):
            registry.create_block("w1", SMALL)
        registry.close()  # idempotent


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(sample=0.0)
        assert not tracer.enabled
        assert tracer.maybe_start() == 0
        tracer.record(0, "enqueue", "server", 0.0, 1.0)
        assert tracer.drain() == []

    def test_full_sampling_consumes_no_sampling_rng(self):
        """At sample=1.0 the accept/reject RNG is untouched — the id
        stream is a pure function of the seed, so traced differential
        runs stay deterministic."""
        a, b = Tracer(sample=1.0), Tracer(sample=1.0)
        ids_a = [a.maybe_start() for _ in range(50)]
        ids_b = [b.maybe_start() for _ in range(50)]
        assert ids_a == ids_b
        assert all(0 < tid < (1 << 31) for tid in ids_a)
        assert a._rng.getstate() == Tracer(sample=1.0)._rng.getstate()

    def test_partial_sampling_rate(self):
        tracer = Tracer(sample=0.25)
        ids = [tracer.maybe_start() for _ in range(2000)]
        hit = sum(1 for tid in ids if tid)
        assert 300 < hit < 700  # ~500 expected

    def test_batch_span_attribution(self):
        tracer = Tracer(sample=1.0)
        t1, t2 = tracer.maybe_start(), tracer.maybe_start()
        spans = [(span_kind_id("walk"), 1.0, 0.5),
                 (span_kind_id("topk"), 1.5, 0.1)]
        tracer.record_batch_spans([t1, 0, t2], "worker", spans)
        grouped = spans_by_trace(tracer.drain())
        assert set(grouped) == {t1, t2}
        for records in grouped.values():
            assert [s.name for s in records] == ["walk", "topk"]
            assert all(s.role == "worker" for s in records)

    def test_capacity_bounds_and_drops(self):
        tracer = Tracer(sample=1.0, capacity=8)
        for i in range(20):
            tracer.record(i + 1, "enqueue", "server", float(i), 0.1)
        assert len(tracer.peek()) == 8
        assert tracer.dropped == 12
        assert len(tracer.drain()) == 8
        assert tracer.peek() == []

    def test_export_formats(self):
        tracer = Tracer(sample=1.0)
        tid = tracer.maybe_start()
        tracer.record(tid, "enqueue", "server", 10.0, 0.002)
        tracer.record(tid, "exec", "worker", 10.002, 0.005)
        spans = tracer.drain()
        jsonl = spans_to_jsonl(spans)
        lines = [json.loads(line) for line in jsonl.splitlines()]
        assert [ln["name"] for ln in lines] == ["enqueue", "exec"]
        assert all(ln["trace_id"] == tid for ln in lines)
        chrome = spans_to_chrome_trace(spans)
        events = chrome["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"server", "worker"}
        xs = [e for e in events if e["ph"] == "X"]
        assert xs[0]["ts"] == 0.0  # rebased to the earliest span
        assert xs[1]["dur"] == pytest.approx(5000.0)  # us
        assert spans_to_chrome_trace([]) == {"traceEvents": [],
                                             "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Exporters + SLO gates
# ----------------------------------------------------------------------
class TestExporters:
    def test_split_labels(self):
        assert split_labels("requests_total") == ("requests_total", {})
        assert split_labels("gather_rows_total{shard=3}") == (
            "gather_rows_total", {"shard": "3"})
        assert split_labels("x_seconds{hop=1,kind=walk}") == (
            "x_seconds", {"hop": "1", "kind": "walk"})

    def _snapshot(self):
        registry = MetricsRegistry()
        block = registry.create_block(
            "w0", fleet_schema(num_shards=2, hops=1))
        block.count("requests_total", 10)
        block.count("cache_hits_total", 6)
        block.count("cache_misses_total", 4)
        block.count(gather_shard_counter(1), 33)
        block.gauge("model_version", 3)
        for v in (0.001, 0.002, 0.004, 0.008):
            block.observe("request_latency_seconds", v)
        block.observe(walk_hop_hist(0), 0.003)
        snap = registry.snapshot()
        registry.close()
        return snap

    def test_prometheus_text_shape(self):
        text = prometheus_text(self._snapshot())
        assert "# TYPE reks_requests_total counter" in text
        assert "reks_requests_total 10" in text
        # Inline labels round-trip into real Prometheus labels.
        assert 'reks_gather_rows_total{shard="1"} 33' in text
        assert 'reks_walk_hop_seconds_count{hop="0"} 1' in text
        assert 'reks_model_version{role="w0"} 3' in text
        assert "reks_request_latency_seconds_count 4" in text
        assert 'le="+Inf"' in text
        # Bucket series are cumulative and end at the total count.
        bucket_counts = [int(line.rsplit(" ", 1)[1])
                         for line in text.splitlines()
                         if line.startswith(
                             "reks_request_latency_seconds_bucket")]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 4

    def test_json_snapshot_round_trips(self):
        payload = json.loads(json_snapshot(self._snapshot()))
        assert payload["counters"]["requests_total"] == 10
        assert payload["histograms"]["request_latency_seconds"][
            "count"] == 4
        assert payload["roles"] == ["w0"]

    def test_serving_slos_evaluate(self):
        snap = self._snapshot()
        results = evaluate_slos(snap, serving_slos(
            p99_ms=1000.0, swap_max_ms=100.0,
            cache_hit_floor=0.5, ring_fallback_ceiling=0.1))
        by_name = {r.slo.name: r for r in results}
        assert by_name["request_p99"].ok       # 8ms << 1s
        assert by_name["swap_latency"].ok      # empty hist -> 0, passes
        assert by_name["cache_hit_rate"].value == pytest.approx(0.6)
        assert by_name["cache_hit_rate"].ok
        # 0 ring/pipe batches: ratio defined as 0, passes the ceiling.
        assert by_name["ring_fallback_rate"].value == 0.0
        failing = evaluate_slos(snap, serving_slos(cache_hit_floor=0.9))
        assert not failing[0].ok
        assert "VIOLATED" in failing[0].describe()

    def test_slo_stats_and_unknown_stat(self):
        snap = self._snapshot()
        count = evaluate_slos(snap, [SLO(name="n", stat="count",
                                         metric="request_latency_seconds",
                                         min_value=4)])[0]
        assert count.ok and count.value == 4.0
        value = evaluate_slos(snap, [SLO(name="v", stat="value",
                                         metric="requests_total",
                                         max_value=10)])[0]
        assert value.ok
        with pytest.raises(ValueError):
            evaluate_slos(snap, [SLO(name="bad", stat="p42",
                                     metric="request_latency_seconds")])

    def test_serving_slos_none_skips_gates(self):
        assert serving_slos() == ()
        assert len(serving_slos(p99_ms=5.0)) == 1


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_scrape_endpoints(self):
        with MetricsRegistry() as registry:
            block = registry.create_block("w0", SMALL)
            block.count("a_total", 3)
            endpoint = MetricsEndpoint(registry.snapshot, port=0)
            try:
                assert endpoint.port > 0
                with urlopen(endpoint.url, timeout=5) as resp:
                    text = resp.read().decode()
                    assert resp.headers["Content-Type"].startswith(
                        "text/plain")
                assert "reks_a_total 3" in text
                base = endpoint.url.rsplit("/", 1)[0]
                with urlopen(f"{base}/metrics.json", timeout=5) as resp:
                    payload = json.loads(resp.read().decode())
                assert payload["counters"]["a_total"] == 3
                with urlopen(f"{base}/healthz", timeout=5) as resp:
                    assert resp.read() == b"ok\n"
                with pytest.raises(HTTPError):
                    urlopen(f"{base}/nope", timeout=5)
            finally:
                endpoint.close()

    def test_scrape_sees_live_mutations(self):
        with MetricsRegistry() as registry:
            block = registry.create_block("w0", SMALL)
            endpoint = MetricsEndpoint(registry.snapshot, port=0)
            try:
                block.count("a_total", 1)
                with urlopen(endpoint.url, timeout=5) as resp:
                    first = resp.read().decode()
                block.count("a_total", 1)
                with urlopen(endpoint.url, timeout=5) as resp:
                    second = resp.read().decode()
                assert "reks_a_total 1" in first
                assert "reks_a_total 2" in second
            finally:
                endpoint.close()


# ----------------------------------------------------------------------
# Bounded ServerStats
# ----------------------------------------------------------------------
class TestBoundedStats:
    def test_exact_percentiles_below_reservoir_capacity(self):
        stats = ServerStats()
        values = [i / 1000.0 for i in range(1, 101)]
        for v in values:
            stats.record_request(v)
        snap = stats.snapshot()
        want = np.percentile(values, (50, 95, 99)) * 1e3
        assert snap.latency_ms_p50 == pytest.approx(want[0])
        assert snap.latency_ms_p95 == pytest.approx(want[1])
        assert snap.latency_ms_p99 == pytest.approx(want[2])
        assert snap.latency_ms_mean == pytest.approx(
            float(np.mean(values)) * 1e3)

    def test_million_request_soak_stays_flat(self):
        """Satellite (a): the old list-append implementation grew ~8MB
        per million requests; the histogram+reservoir bound is a fixed
        few tens of KB and the snapshot stays sane."""
        stats = ServerStats()
        bound = stats.nbytes
        assert bound < 100_000
        record = stats.record_request
        for i in range(1_000_000):
            record(0.002 if i % 10 else 0.020)
        assert stats.nbytes == bound              # flat, by construction
        assert stats._lat_sample.seen == 1_000_000
        assert stats._lat_sample.capacity == RESERVOIR_SIZE
        snap = stats.snapshot()
        assert snap.requests == 1_000_000
        assert snap.latency_ms_mean == pytest.approx(3.8, rel=0.01)
        assert 1.0 <= snap.latency_ms_p50 <= 21.0  # clamped to extremes
        assert snap.latency_ms_p99 <= 20.0 + 1e-6

    def test_snapshot_api_unchanged(self):
        """The StatsSnapshot surface every bench payload reads."""
        stats = ServerStats()
        stats.record_request(0.004)
        stats.record_batch(3)
        stats.record_cache(True, version=2)
        stats.record_cache(False, version=2)
        stats.record_swap(0.1)
        snap = stats.snapshot()
        payload = snap.to_dict()
        assert payload["requests"] == 1
        assert payload["batch_occupancy"] == {"3": 1}
        assert payload["cache_by_version"]["2"]["hit_rate"] == 0.5
        assert payload["swap_latency_ms"] == [pytest.approx(100.0)]
        assert snap.cache_hit_rate == 0.5
        stats.reset()
        assert stats.snapshot().requests == 0

    def test_mirrors_into_metric_block(self):
        block = MetricBlock.create(fleet_schema(), role="server")
        try:
            stats = ServerStats(metrics=block)
            stats.record_request(0.004)
            stats.record_cache(True)
            stats.record_swap(0.01)
            snap = block.snapshot()
            assert snap.counters["requests_total"] == 1
            assert snap.counters["cache_hits_total"] == 1
            assert snap.counters["swaps_total"] == 1
            assert snap.hists["request_latency_seconds"].count == 1
            assert snap.hists["swap_latency_seconds"].count == 1
        finally:
            block.unlink()

    def test_reservoir_is_deterministic(self):
        a, b = Reservoir(capacity=16, seed=0), Reservoir(capacity=16,
                                                         seed=0)
        for i in range(1000):
            a.add(float(i))
            b.add(float(i))
        assert np.array_equal(a.values(), b.values())
        assert a.seen == 1000 and a.capacity == 16


# ----------------------------------------------------------------------
# Server integration: fleet snapshot, tracing, lazy render
# ----------------------------------------------------------------------
class TestServerTelemetry:
    def test_fleet_snapshot_thread_mode(self, trainer, sessions):
        subset = sessions[:12]
        with trainer.serve(trace_sample=1.0) as server:
            server.recommend_many(subset, k=5)   # cold: misses
            server.recommend_many(subset, k=5)   # warm: hits
            snap = server.fleet_snapshot()
            spans = server.tracer.drain()
        assert "server" in snap.roles
        assert snap.counter("requests_total") == 2 * len(subset)
        assert snap.counter("cache_hits_total") == len(subset)
        assert snap.counter("cache_misses_total") == len(subset)
        # exec_rows_total counts rows actually *walked*; any in-flush
        # duplicates (same suffix + user) collapse into dedup_rows_total.
        assert (snap.counter("exec_rows_total")
                + snap.counter("dedup_rows_total")) == len(subset)
        assert snap.hist("request_latency_seconds").count == 2 * len(subset)
        assert snap.hist("walk_seconds").count >= 1
        # Render happened once per explanation row, at cache admission;
        # the warm replay deferred exactly those rows instead of
        # re-rendering them.
        assert snap.counter("render_rows_total") >= len(subset)
        assert snap.counter("render_deferred_total") \
            == snap.counter("render_rows_total")
        grouped = spans_by_trace(spans)
        assert len(grouped) == len(subset)  # only misses start traces
        for records in grouped.values():
            names = {s.name for s in records}
            assert {"enqueue", "flush", "transport",
                    "render", "respond"} <= names
            assert "walk" in names and "topk" in names

    def test_metrics_disabled_raises(self, trainer, sessions):
        with trainer.serve(metrics=False) as server:
            server.recommend_many(sessions[:4], k=5)
            with pytest.raises(RuntimeError):
                server.fleet_snapshot()

    def test_http_endpoint_on_live_server(self, trainer, sessions):
        with trainer.serve(metrics_port=0) as server:
            server.recommend_many(sessions[:6], k=5)
            with urlopen(server.metrics_url, timeout=5) as resp:
                text = resp.read().decode()
            assert text.startswith("# ")
            assert "reks_requests_total 6" in text

    def test_snapshot_survives_shutdown(self, trainer, sessions):
        with trainer.serve() as server:
            server.recommend_many(sessions[:5], k=5)
        # The server role was retired at shutdown; its counts persist
        # in the retained accumulators.
        snap = server.fleet_snapshot()
        assert snap.counter("requests_total") == 5
        assert "server" not in snap.roles

    def test_tracing_off_by_default_and_deterministic(self, trainer,
                                                      sessions):
        subset = sessions[:8]
        with trainer.serve(cache_size=0) as plain:
            baseline = [r.items for r in plain.recommend_many(subset, k=5)]
        with trainer.serve(cache_size=0, trace_sample=1.0) as traced:
            got = [r.items for r in traced.recommend_many(subset, k=5)]
            assert traced.tracer.peek()   # spans actually recorded
        assert got == baseline            # tracing never perturbs results

    def test_gather_scratch_steady_state_allocates_nothing(
            self, sharded_trainer):
        """Satellite (b): the first grouped gather warms the workspace
        scratch grids; every repeat runs without a single new
        allocation, and the per-shard row counters split the frontier
        across both shards."""
        from repro.core.environment import RolloutWorkspace

        store = sharded_trainer.env.csr_tables()
        assert store.num_shards == 2
        # A frontier straddling the shard boundary forces the
        # shard-major grouped path on every call.
        edge = int(store.boundaries[1])
        entities = np.array([edge - 2, edge - 1, edge, edge + 1],
                            dtype=np.int64)
        degs = np.take(store.degrees, entities)
        width = max(int(degs.max()), 1)
        cols = np.arange(width, dtype=np.int32)
        mask = cols[None, :] < degs[:, None]
        idx = np.empty((len(entities), width), dtype=np.int32)
        rels = np.empty_like(idx)
        tails = np.empty_like(idx)
        workspace = RolloutWorkspace()
        block = MetricBlock.create(fleet_schema(num_shards=2), role="g")
        try:
            for _ in range(5):
                store.gather_into(entities, cols, mask, idx, rels,
                                  tails, scratch=workspace,
                                  metrics=block)
            snap = block.snapshot()
            assert snap.counters["gather_multi_total"] == 5
            assert snap.counters["gather_rows_total"] == 5 * len(entities)
            assert snap.counters[gather_shard_counter(0)] == 5 * 2
            assert snap.counters[gather_shard_counter(1)] == 5 * 2
            # Both scatter grids allocated exactly once, on the first
            # call; the four repeats recycled them.
            assert snap.counters["gather_scratch_allocs_total"] == 2
            assert workspace.allocations == 2
        finally:
            block.unlink()


# ----------------------------------------------------------------------
# Process-mode integration: cross-process blocks, traces, respawn
# ----------------------------------------------------------------------
class TestProcessFleetTelemetry:
    def test_worker_blocks_merge_into_fleet_snapshot(self, trainer,
                                                     sessions):
        subset = sessions[:10]
        with trainer.serve(worker_mode="process", workers=2,
                           cache_size=0) as server:
            server.recommend_many(subset, k=5)
            snap = server.fleet_snapshot()
        assert {"server", "worker0", "worker1"} <= set(snap.roles)
        assert snap.counter("exec_rows_total") == len(subset)
        assert snap.counter("exec_batches_total") >= 1
        assert snap.counter("ring_batches_total") \
            + snap.counter("pipe_batches_total") >= 1
        assert snap.hist("exec_seconds").count >= 1

    def test_trace_ids_cross_the_ring(self, trainer, sessions):
        subset = sessions[:6]
        with trainer.serve(worker_mode="process", workers=1,
                           cache_size=0, trace_sample=1.0) as server:
            server.recommend_many(subset, k=5)
            spans = server.tracer.drain()
            snap = server.fleet_snapshot()
        grouped = spans_by_trace(spans)
        assert len(grouped) == len(subset)
        for records in grouped.values():
            roles = {s.role for s in records}
            assert "worker" in roles          # echoed back over the ring
            names = {s.name for s in records}
            assert "exec" in names and "walk" in names
        assert snap.counter("worker_traces_total") == len(subset)

    def test_trace_ids_survive_ring_to_pipe_fallback(self, trainer,
                                                     sessions):
        """Satellite (d): shrink the parent's view of the request slot
        so every batch raises RingUnsuitable and rides the pickle pipe
        — worker spans and trace echoes must come back regardless."""
        subset = sessions[:6]
        # Memo off: a warm replay would be all memo hits — no walk, no
        # worker row spans — and this test is about transport fallback.
        with trainer.serve(worker_mode="process", workers=1,
                           cache_size=0, walk_memo_size=0,
                           trace_sample=1.0) as server:
            expected = [r.items for r in server.recommend_many(subset,
                                                               k=5)]
            server.tracer.drain()
            pool = server.process_pool
            for handle in pool._workers:
                handle.ring.manifest = replace(handle.ring.manifest,
                                               req_slot_bytes=8)
            fallen = [r.items for r in server.recommend_many(subset,
                                                             k=5)]
            spans = server.tracer.drain()
            snap = server.fleet_snapshot()
        assert fallen == expected             # transport is invisible
        assert snap.counter("ring_fallbacks_total") >= 1
        grouped = spans_by_trace(spans)
        assert len(grouped) == len(subset)
        for records in grouped.values():
            assert "worker" in {s.role for s in records}

    def test_respawn_keeps_counts_without_double_counting(self, trainer,
                                                          sessions):
        subset = sessions[:6]
        with trainer.serve(worker_mode="process", workers=2,
                           cache_size=0) as server:
            server.recommend_many(subset, k=5)
            before = server.fleet_snapshot()
            assert before.counter("exec_rows_total") == len(subset)
            for handle in server.process_pool._workers:
                handle.process.kill()
            time.sleep(0.2)
            server.recommend_many(subset, k=5)
            after = server.fleet_snapshot()
        # Old counts folded exactly once, new counts added on top.
        assert after.counter("exec_rows_total") == 2 * len(subset)
        assert after.counter("worker_respawns_total") >= 1
        assert after.retired_blocks >= 1
        assert {"worker0", "worker1"} <= set(after.roles)
        # Stable across repeated snapshots (no re-folding).
        assert after.counter("exec_rows_total") == 2 * len(subset)


# ----------------------------------------------------------------------
# Updater child block
# ----------------------------------------------------------------------
class TestUpdaterTelemetry:
    @pytest.mark.parametrize("mode", ["thread", "subprocess"])
    def test_round_metrics_flow_into_fleet(self, trainer, beauty_tiny,
                                           tmp_path, mode):
        from repro.online import (CheckpointRegistry, DeltaIngestor,
                                  OnlineUpdater)

        delta = [s for s in beauty_tiny.split.validation
                 if len(s.items) >= 2][:8]
        registry = CheckpointRegistry(tmp_path, keep_last=2)
        ingestor = DeltaIngestor(trainer.built, trainer.env,
                                 compact_every=10_000)
        fleet = MetricsRegistry()
        updater = OnlineUpdater(trainer, ingestor, registry,
                                min_sessions=1, max_steps=1, mode=mode,
                                metrics_registry=fleet)
        try:
            assert updater.run_once(force=True) is not None
            ingestor.ingest_sessions(delta)
            assert updater.run_once(force=True) is not None
            snap = fleet.snapshot()
        finally:
            updater.stop()
            fleet.close()
        assert "updater" in snap.roles
        assert snap.counter("online_rounds_total") == 2
        assert snap.counter("online_sessions_total") == len(delta)
        assert snap.hist("online_round_seconds").count == 2
        assert snap.hist("online_publish_seconds").count == 2


# ----------------------------------------------------------------------
# Streaming trace sink
# ----------------------------------------------------------------------
class TestTraceSink:
    def test_streams_jsonl_with_args(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceSink(path) as sink:
            tracer = Tracer(sample=1.0, sink=sink)
            tid = tracer.maybe_start()
            tracer.record(tid, "enqueue", "server", 1.0, 0.25)
            tracer.record_rows([(tid, (4, 2), 0.5, 0.125)], "server")
            sink.flush()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [ln["name"] for ln in lines] == ["enqueue", ROW_SPAN]
        assert lines[1]["args"] == {"frontier": [4, 2], "walk_s": 0.5,
                                    "topk_s": 0.125}

    def test_size_rotation_keeps_generations(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceSink(path, max_bytes=2048, keep=3) as sink:
            tracer = Tracer(sample=1.0, sink=sink)
            for i in range(400):
                tracer.record(i + 1, "soak", "t", float(i), 1e-3)
            sink.flush()
            assert sink.rotations >= 1
            files = sink.files()
        assert str(path) in files
        assert any(f.endswith(".1") for f in files)
        assert len(files) <= 4  # live + keep generations
        for f in files:  # every retained line parses
            for line in open(f, encoding="utf-8"):
                assert json.loads(line)["name"] == "soak"

    def test_100k_span_soak_is_lossless_with_sink_attached(self,
                                                           tmp_path):
        """Satellite: the drain-or-drop tracer buffer loses nothing on
        a 100k-span soak once the streaming sink takes the handoff —
        the deque alone would have evicted all but its tail."""
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(path, max_bytes=1 << 20, keep=200)
        tracer = Tracer(sample=1.0, capacity=64, sink=sink)
        total = 100_000
        for i in range(total):
            tracer.record((i % 997) + 1, "soak", "t", float(i), 1e-6)
        sink.flush()
        sink.close()
        assert tracer.dropped == 0
        assert sink.dropped == 0
        assert sink.written == total
        assert sink.rotations >= 1
        retained = sum(1 for f in sink.files()
                       for line in open(f, encoding="utf-8") if line)
        assert retained == total

    def test_closed_sink_counts_drops_in_metrics(self, tmp_path):
        block = MetricBlock.create(fleet_schema(), "sink")
        try:
            sink = TraceSink(tmp_path / "t.jsonl", metrics=block)
            sink.close()
            span = SpanRecord(trace_id=1, name="late", role="t",
                              t0=0.0, dur=0.0)
            assert sink.offer(span) is False
            assert sink.dropped == 1
            assert block.snapshot().counters["trace_dropped_total"] == 1
        finally:
            block.unlink()

    def test_tracer_does_not_double_count_sink_drops(self, tmp_path):
        """When tracer and sink share the metric block, a rejected
        span lands in ``trace_dropped_total`` exactly once."""
        block = MetricBlock.create(fleet_schema(), "t")
        try:
            sink = TraceSink(tmp_path / "t.jsonl", metrics=block)
            sink.close()  # every offer now rejects
            tracer = Tracer(sample=1.0, sink=sink, metrics=block)
            tracer.record(5, "x", "t", 0.0, 0.0)
            assert tracer.dropped == 1
            assert block.snapshot().counters["trace_dropped_total"] == 1
        finally:
            block.unlink()


# ----------------------------------------------------------------------
# Rolling windows + burn-rate SLOs
# ----------------------------------------------------------------------
class TestRollingWindow:
    def _observe(self, block, values):
        for v in values:
            block.observe("request_latency_seconds", v)

    def test_window_matches_cumulative_oracle(self):
        """Windowed count/sum are exact; windowed quantiles match an
        oracle histogram fed only the window's values to within one
        log-2 bucket (the resolution every quantile here has)."""
        registry = MetricsRegistry()
        block = registry.create_block("w0", fleet_schema())
        phase_a = [0.001 * (i % 7 + 1) for i in range(200)]
        phase_b = [0.004 * (i % 13 + 1) for i in range(300)]
        self._observe(block, phase_a)
        block.count("requests_total", len(phase_a))
        rolling = RollingWindow()
        rolling.record(registry.snapshot())
        self._observe(block, phase_b)
        block.count("requests_total", len(phase_b))
        rolling.record(registry.snapshot())
        registry.close()

        win = rolling.window(None)
        assert win.counter("requests_total") == len(phase_b)
        hist = win.hist("request_latency_seconds")
        oracle = LocalHistogram()
        for v in phase_b:
            oracle.observe(v)
        want = oracle.snapshot()
        assert hist.count == want.count
        assert hist.sum == pytest.approx(want.sum)
        assert np.array_equal(hist.buckets, want.buckets)
        for q in (0.5, 0.95, 0.99):
            got = hist.quantile(q)
            ref = want.quantile(q)
            assert ref / 2 <= got <= ref * 2

    def test_hist_delta_zero_window(self):
        hist = LocalHistogram()
        hist.observe(0.25)
        snap = hist.snapshot()
        delta = hist_delta(snap, snap)
        assert delta.count == 0 and delta.sum == 0.0
        # No start: the cumulative end IS the window.
        assert hist_delta(snap, None) is snap

    def test_hist_from_dict_round_trips(self):
        hist = LocalHistogram()
        for v in (0.001, 0.01, 0.3):
            hist.observe(v)
        snap = hist.snapshot()
        back = hist_from_dict(snap.to_dict())
        assert back.count == snap.count
        assert back.sum == pytest.approx(snap.sum)
        assert np.array_equal(back.buckets, snap.buckets)

    def test_window_seconds_selects_start_sample(self):
        registry = MetricsRegistry()
        block = registry.create_block("w0", fleet_schema())
        rolling = RollingWindow()
        for round_id in range(3):
            block.count("requests_total", 10)
            snap = registry.snapshot()
            # Synthetic timestamps: one sample per second.
            object.__setattr__(snap, "generated_at", float(round_id))
            rolling.record(snap)
        registry.close()
        # Full span: both increments since the first sample.
        assert rolling.window(None).counter("requests_total") == 20
        # A 1s window starts at the middle sample.
        win = rolling.window(1.0)
        assert win.counter("requests_total") == 10
        assert win.seconds == pytest.approx(1.0)
        assert win.rate("requests_total") == pytest.approx(10.0)

    def test_windowed_slos_and_burn_rate(self):
        registry = MetricsRegistry()
        block = registry.create_block("w0", fleet_schema())
        rolling = RollingWindow()
        self._observe(block, [0.001] * 50)  # calm cumulative past
        rolling.record(registry.snapshot())
        self._observe(block, [0.9] * 50)    # the window is on fire
        rolling.record(registry.snapshot())
        snapshot = registry.snapshot()
        registry.close()
        slos = serving_slos(p99_ms=100.0)
        cumulative = evaluate_slos(snapshot, slos)[0]
        windowed = evaluate_slos(snapshot, slos,
                                 window=rolling.window(None))[0]
        # The cumulative p99 already trips here too, but the windowed
        # value isolates the hot phase and burns hotter.
        assert not windowed.ok
        assert windowed.burn_rate > 1.0
        assert windowed.window_seconds is not None
        assert windowed.value >= cumulative.value
        assert "burn=" in windowed.describe()
        assert "over" in windowed.describe()

    def test_burn_rate_floor_direction(self):
        registry = MetricsRegistry()
        block = registry.create_block("w0", fleet_schema())
        block.count("cache_hits_total", 1)
        block.count("cache_misses_total", 9)
        snapshot = registry.snapshot()
        registry.close()
        result = evaluate_slos(snapshot,
                               serving_slos(cache_hit_floor=0.5))[0]
        assert not result.ok
        assert result.burn_rate == pytest.approx(5.0)  # 0.5 / 0.1

    def test_quiet_window_passes_vacuously(self):
        # A window with no traffic cannot burn a floor: the windowed
        # cache-hit ratio is 0/0, not 0, and the windowed p99 has no
        # observations — both must pass with burn_rate None even while
        # the cumulative snapshot is violating.
        registry = MetricsRegistry()
        block = registry.create_block("w0", fleet_schema())
        block.count("cache_hits_total", 1)
        block.count("cache_misses_total", 9)
        block.observe("request_latency_seconds", 0.5)
        rolling = RollingWindow()
        rolling.record(registry.snapshot())
        rolling.record(registry.snapshot())   # nothing moved between
        snapshot = registry.snapshot()
        registry.close()
        win = rolling.window(None)
        assert win is not None
        slos = serving_slos(cache_hit_floor=0.5, p99_ms=100.0)
        cumulative = evaluate_slos(snapshot, slos)
        assert not all(r.ok for r in cumulative)
        windowed = evaluate_slos(snapshot, slos, window=win)
        assert all(r.ok for r in windowed)
        assert all(r.burn_rate is None for r in windowed)

    def test_window_sampler_feeds_rolling_window(self):
        registry = MetricsRegistry()
        block = registry.create_block("w0", fleet_schema())
        rolling = RollingWindow()
        sampler = WindowSampler(registry.snapshot, rolling,
                                interval_s=0.02)
        try:
            deadline = time.monotonic() + 5.0
            while len(rolling) < 3 and time.monotonic() < deadline:
                block.count("requests_total", 1)
                time.sleep(0.02)
        finally:
            sampler.close()
            registry.close()
        assert len(rolling) >= 3
        assert rolling.window(None).counter("requests_total") >= 1


# ----------------------------------------------------------------------
# Per-row span attribution (unit)
# ----------------------------------------------------------------------
class TestRowAttribution:
    def test_walk_time_splits_by_frontier_mass(self):
        spans = [(span_kind_id("walk"), 0.0, 0.8),
                 (span_kind_id("topk"), 0.8, 0.2)]
        # Row 0 carries 3x the frontier mass of row 1; row 2 unsampled.
        frontier = [np.array([6, 2, 4]), np.array([3, 1, 2])]
        records = attribute_rows([11, 22, 0], [5, 10, 5],
                                 frontier, spans)
        assert [r[0] for r in records] == [11, 22]
        (t1, w1, walk1, topk1), (t2, w2, walk2, topk2) = records
        assert w1 == (6, 3) and w2 == (2, 1)
        assert walk1 == pytest.approx(0.8 * 9 / 18)
        assert walk2 == pytest.approx(0.8 * 3 / 18)
        assert topk1 == pytest.approx(0.2 * 5 / 20)
        assert topk2 == pytest.approx(0.2 * 10 / 20)

    def test_zero_mass_falls_back_to_equal_split(self):
        spans = [(span_kind_id("walk"), 0.0, 0.4)]
        frontier = [np.zeros(2, dtype=np.int64)]
        records = attribute_rows([7, 9], [5, 5], frontier, spans)
        assert [r[2] for r in records] == pytest.approx([0.2, 0.2])

    def test_no_frontier_yields_empty_widths(self):
        records = attribute_rows([3], [5], None,
                                 [(span_kind_id("walk"), 0.0, 0.1)])
        assert records == [(3, (), pytest.approx(0.1), 0.0)]


# ----------------------------------------------------------------------
# Live fleet view rendering
# ----------------------------------------------------------------------
class TestTopView:
    def _snapshot_dict(self, requests, latencies, at):
        registry = MetricsRegistry()
        block = registry.create_block(
            "server", fleet_schema(num_shards=2))
        block.count("requests_total", requests)
        block.count("cache_hits_total", requests // 2)
        block.count("cache_misses_total", requests - requests // 2)
        block.count(gather_shard_counter(0), requests * 3)
        block.count(gather_shard_counter(1), requests)
        block.gauge("model_version", 4)
        for v in latencies:
            block.observe("request_latency_seconds", v)
        snap = registry.snapshot()
        object.__setattr__(snap, "generated_at", float(at))
        payload = snap.to_dict()
        registry.close()
        return payload

    def test_heat_bar_scales_to_peak(self):
        assert heat_bar([]) == ""
        assert heat_bar([0.0, 0.0]) == "  "
        bar = heat_bar([1.0, 4.0, 8.0])
        assert len(bar) == 3
        assert bar[-1] == "█"

    def test_shard_heat_diffs_labelled_counters(self):
        prev = self._snapshot_dict(10, [0.001], at=0.0)
        curr = self._snapshot_dict(30, [0.001, 0.002], at=2.0)
        heat = shard_heat(curr, prev)
        assert heat == [(0, 60), (1, 20)]

    def test_render_cumulative_and_windowed_frames(self):
        prev = self._snapshot_dict(10, [0.001] * 10, at=0.0)
        curr = self._snapshot_dict(30, [0.001] * 30, at=2.0)
        first = render_top(prev)
        assert "cumulative" in first
        assert "requests" in first
        frame = render_top(curr, prev)
        assert "2.0s window" in frame
        assert "model v4" in frame
        assert "p50" in frame and "p99" in frame
        assert "server" in frame      # per-role table row
        # 20 new requests over 2s.
        assert "10/s" in frame


# ----------------------------------------------------------------------
# Continuous serving integration: row spans, windows, health, close
# ----------------------------------------------------------------------
class TestContinuousServing:
    def test_per_row_spans_thread_mode(self, trainer, sessions):
        subset = sessions[:8]
        with trainer.serve(cache_size=0, trace_sample=1.0) as server:
            server.recommend_many(subset, k=5)
            spans = server.tracer.drain()
        rows = [s for s in spans if s.name == ROW_SPAN]
        grouped = spans_by_trace(spans)
        assert len(rows) == len(subset)  # one row record per request
        for span in rows:
            assert span.args is not None
            widths = span.args["frontier"]
            assert len(widths) >= 1       # at least one executed hop
            assert all(w >= 0 for w in widths)
            assert span.dur == pytest.approx(span.args["walk_s"]
                                             + span.args["topk_s"])
        # Row spans attribute the batch's walk time exactly: per-trace
        # walk shares of one batch sum to that batch's walk span.
        for records in grouped.values():
            walk = sum(s.dur for s in records if s.name == "walk")
            row = [s for s in records if s.name == ROW_SPAN]
            assert len(row) == 1
            assert row[0].args["walk_s"] <= walk + 1e-9

    def test_per_row_spans_cross_the_ring(self, trainer, sessions):
        subset = sessions[:6]
        with trainer.serve(worker_mode="process", workers=1,
                           cache_size=0, trace_sample=1.0) as server:
            server.recommend_many(subset, k=5)
            spans = server.tracer.drain()
        rows = [s for s in spans if s.name == ROW_SPAN]
        assert len(rows) == len(subset)
        assert {s.role for s in rows} == {"worker"}
        for span in rows:
            assert len(span.args["frontier"]) >= 1

    def test_trace_rows_off_suppresses_row_spans(self, trainer,
                                                 sessions):
        subset = sessions[:4]
        with trainer.serve(cache_size=0, trace_sample=1.0,
                           trace_rows=False) as server:
            server.recommend_many(subset, k=5)
            spans = server.tracer.drain()
        assert [s for s in spans if s.name == ROW_SPAN] == []
        assert spans  # batch-level tracing still on

    def test_row_spans_do_not_perturb_results(self, trainer, sessions):
        subset = sessions[:8]
        with trainer.serve(cache_size=0) as plain:
            want = [r.items for r in plain.recommend_many(subset, k=5)]
        for mode in ("thread", "process"):
            with trainer.serve(worker_mode=mode, cache_size=0,
                               trace_sample=1.0,
                               trace_rows=True) as server:
                got = [r.items
                       for r in server.recommend_many(subset, k=5)]
            assert got == want

    def test_trace_path_streams_spans_to_jsonl(self, trainer, sessions,
                                               tmp_path):
        path = tmp_path / "server_trace.jsonl"
        with trainer.serve(cache_size=0, trace_sample=1.0,
                           trace_path=str(path)) as server:
            server.recommend_many(sessions[:5], k=5)
            assert server.trace_sink is not None
            server.trace_sink.flush()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines
        names = {ln["name"] for ln in lines}
        assert ROW_SPAN in names and "walk" in names

    def test_window_endpoint_and_healthz(self, trainer, sessions):
        subset = sessions[:6]
        with trainer.serve(metrics_port=0, cache_size=0) as server:
            server.recommend_many(subset, k=5)
            base = server.metrics_url.rsplit("/metrics", 1)[0]
            with urlopen(f"{base}/metrics.json?window=all",
                         timeout=5) as resp:
                win = json.loads(resp.read().decode())
            assert win["window_seconds"] >= 0.0
            assert win["counters"]["requests_total"] == len(subset)
            assert "request_latency_seconds" in win["histograms"]
            with urlopen(f"{base}/healthz", timeout=5) as resp:
                assert resp.read() == b"ok\n"
            assert server.health()["roles"]["server"]["ok"] is True
            # server.window() serves the same view programmatically.
            assert server.window().counter("requests_total") \
                == len(subset)

    def test_healthz_degraded_on_torn_block(self, trainer, sessions):
        from repro.telemetry.block import _SEQ

        with trainer.serve(metrics_port=0) as server:
            server.recommend_many(sessions[:3], k=5)
            base = server.metrics_url.rsplit("/metrics", 1)[0]
            block = server._metrics_registry.block("server")
            block._hdr[_SEQ] += 1  # odd seqlock: writer died mid-write
            try:
                with pytest.raises(HTTPError) as err:
                    urlopen(f"{base}/healthz", timeout=10)
                assert err.value.code == 503
                body = json.loads(err.value.read().decode())
                assert body["ok"] is False
                assert body["roles"]["server"]["torn"] is True
            finally:
                block._hdr[_SEQ] += 1  # restore even for shutdown

    def test_close_shuts_endpoint_thread_down(self, trainer, sessions):
        server = trainer.serve(metrics_port=0)
        try:
            server.recommend_many(sessions[:3], k=5)
            endpoint = server._endpoint
            assert endpoint.alive
        finally:
            server.close()
        assert not endpoint.alive          # no dangling HTTP thread
        server.close()                     # idempotent

    def test_window_sampler_on_live_server(self, trainer, sessions):
        with trainer.serve(cache_size=0,
                           window_interval_ms=20.0) as server:
            server.recommend_many(sessions[:6], k=5)
            time.sleep(0.1)                # a few sampler ticks
            win = server.window(seconds=60.0)
            assert win is not None
            assert win.counter("requests_total") == 6
            sampler = server._window_sampler
            assert sampler is not None
        # shutdown joined the sampler thread with everything else
        assert not sampler._thread.is_alive()
