"""Unit tests for additive / scaled-dot / multi-head attention."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.nn.attention import scaled_dot_product_attention


class TestAdditiveAttention:
    def test_context_shape(self, rng):
        attn = nn.AdditiveAttention(6, rng=rng)
        q = Tensor(rng.standard_normal((3, 6)).astype(np.float32))
        keys = Tensor(rng.standard_normal((3, 5, 6)).astype(np.float32))
        context, weights = attn(q, keys)
        assert context.shape == (3, 6)
        assert weights.shape == (3, 5)

    def test_weights_sum_to_one(self, rng):
        attn = nn.AdditiveAttention(4, rng=rng)
        q = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
        keys = Tensor(rng.standard_normal((2, 7, 4)).astype(np.float32))
        _, weights = attn(q, keys)
        np.testing.assert_allclose(weights.data.sum(axis=1), np.ones(2),
                                   rtol=1e-5)

    def test_mask_zeroes_padded_positions(self, rng):
        attn = nn.AdditiveAttention(4, rng=rng)
        q = Tensor(rng.standard_normal((1, 4)).astype(np.float32))
        keys = Tensor(rng.standard_normal((1, 4, 4)).astype(np.float32))
        mask = np.array([[1, 1, 0, 0]], dtype=bool)
        _, weights = attn(q, keys, mask=mask)
        np.testing.assert_allclose(weights.data[0, 2:], [0.0, 0.0], atol=1e-6)
        assert weights.data[0, :2].sum() == pytest.approx(1.0, rel=1e-5)

    def test_single_key_gets_full_weight(self, rng):
        attn = nn.AdditiveAttention(4, rng=rng)
        q = Tensor(rng.standard_normal((1, 4)).astype(np.float32))
        keys = Tensor(rng.standard_normal((1, 1, 4)).astype(np.float32))
        context, weights = attn(q, keys)
        assert weights.data[0, 0] == pytest.approx(1.0, rel=1e-6)
        np.testing.assert_allclose(context.data, keys.data[:, 0], rtol=1e-5)


class TestScaledDotProduct:
    def test_uniform_when_scores_equal(self):
        q = Tensor(np.zeros((1, 2, 4), dtype=np.float32))
        k = Tensor(np.ones((1, 3, 4), dtype=np.float32))
        v = Tensor(np.arange(12, dtype=np.float32).reshape(1, 3, 4))
        out, weights = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(weights.data, np.full((1, 2, 3), 1 / 3),
                                   rtol=1e-5)
        np.testing.assert_allclose(out.data[0, 0], v.data[0].mean(axis=0),
                                   rtol=1e-5)

    def test_mask_blocks_positions(self, rng):
        q = Tensor(rng.standard_normal((1, 2, 4)).astype(np.float32))
        k = Tensor(rng.standard_normal((1, 3, 4)).astype(np.float32))
        v = Tensor(rng.standard_normal((1, 3, 4)).astype(np.float32))
        mask = np.array([[[True, False, True]]])  # broadcast to (1, 2, 3)
        _, weights = scaled_dot_product_attention(q, k, v, mask=mask)
        np.testing.assert_allclose(weights.data[:, :, 1], 0.0, atol=1e-6)


class TestMultiHeadAttention:
    def test_dim_divisibility_check(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(7, 2, rng=rng)

    def test_output_shape(self, rng):
        mha = nn.MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((3, 5, 8)).astype(np.float32))
        assert mha(x).shape == (3, 5, 8)

    def test_padding_mask_changes_output(self, rng):
        mha = nn.MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 8)).astype(np.float32))
        full = mha(x).data
        masked = mha(x, mask=np.array([[1, 1, 0, 0]])).data
        assert not np.allclose(full[:, 0], masked[:, 0])

    def test_gradients_reach_projections(self, rng):
        mha = nn.MultiHeadAttention(4, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32))
        mha(x).sum().backward()
        assert mha.q_proj.weight.grad is not None
        assert mha.out_proj.weight.grad is not None
