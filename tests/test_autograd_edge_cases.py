"""Autograd edge cases: dtype discipline, detach mid-graph, empties."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F


class TestDtypeDiscipline:
    def test_float32_default_preserved_through_ops(self):
        a = Tensor(np.ones((2, 2)))
        out = (a * 2.0 + 1.0).sigmoid().matmul(a)
        assert out.dtype == np.float32

    def test_float64_opt_in_preserved(self):
        a = Tensor(np.ones(3), dtype=np.float64)
        assert (a.exp() + a).dtype == np.float64

    def test_grad_dtype_matches_data(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2.0).sum().backward()
        assert a.grad.dtype == np.float32


class TestDetachMidGraph:
    def test_gradient_stops_at_detach(self):
        a = Tensor([2.0], requires_grad=True, dtype=np.float64)
        b = (a * 3.0).detach()
        c = Tensor([1.0], requires_grad=True, dtype=np.float64)
        (b * c).sum().backward()
        assert a.grad is None
        np.testing.assert_allclose(c.grad, [6.0])

    def test_detach_shares_memory(self):
        a = Tensor([1.0, 2.0])
        b = a.detach()
        b.data[0] = 9.0
        assert a.data[0] == 9.0


class TestEmptyAndScalar:
    def test_empty_tensor_ops(self):
        a = Tensor(np.zeros((0, 3)), requires_grad=True)
        out = (a * 2.0).sum()
        out.backward()
        assert a.grad.shape == (0, 3)

    def test_zero_dim_scalar_tensor(self):
        a = Tensor(np.float32(2.5), requires_grad=True)
        (a * a).backward()
        assert a.grad == pytest.approx(5.0)

    def test_sum_of_empty_is_zero(self):
        a = Tensor(np.zeros(0))
        assert a.sum().item() == 0.0


class TestRepr:
    def test_repr_mentions_shape_and_grad(self):
        a = Tensor(np.zeros((2, 3)), requires_grad=True)
        text = repr(a)
        assert "(2, 3)" in text
        assert "requires_grad=True" in text
        assert "leaf" in text

    def test_repr_mentions_op(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        assert "op=mul" in repr(a * 2.0)


class TestNoGradInteractions:
    def test_parameters_created_inside_no_grad_stay_frozen(self):
        with no_grad():
            p = Tensor(np.ones(2), requires_grad=True)
        assert not p.requires_grad

    def test_mixed_graph_partial_grad(self):
        a = Tensor([1.0], requires_grad=True, dtype=np.float64)
        with no_grad():
            frozen = a * 5.0
        live = a * 2.0
        (frozen + live).sum().backward()
        # Only the live branch contributes.
        np.testing.assert_allclose(a.grad, [2.0])


class TestScatterAddEdges:
    def test_empty_source(self):
        src = Tensor(np.zeros(0), requires_grad=True, dtype=np.float64)
        out = F.scatter_add(src, (np.zeros(0, dtype=np.int64),), (4,))
        np.testing.assert_allclose(out.data, np.zeros(4))
        out.sum().backward()
        assert src.grad.shape == (0,)

    def test_all_to_one_bucket(self):
        src = Tensor(np.ones(5), requires_grad=True, dtype=np.float64)
        out = F.scatter_add(src, (np.zeros(5, dtype=np.int64),), (2,))
        np.testing.assert_allclose(out.data, [5.0, 0.0])
        (out * Tensor([2.0, 3.0], dtype=np.float64)).sum().backward()
        np.testing.assert_allclose(src.grad, np.full(5, 2.0))


class TestMaskedFillEdges:
    def test_all_true_mask(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True, dtype=np.float64)
        out = a.masked_fill(np.ones((2, 2), dtype=bool), -1.0)
        np.testing.assert_allclose(out.data, -1.0)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.zeros((2, 2)))

    def test_broadcast_mask(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True, dtype=np.float64)
        mask = np.array([True, False, False, True])
        out = a.masked_fill(mask, 0.0)
        np.testing.assert_allclose(out.data[:, 0], 0.0)
        np.testing.assert_allclose(out.data[:, 1], 1.0)
