"""End-to-end determinism: identical seeds must give identical results.

Every stochastic component (generators, TransE, parameter init,
dropout, batch shuffling, Gumbel exploration) draws from explicitly
seeded generators, so two identically-configured runs must agree bit
for bit — the property the 5-seed significance protocol rests on.
"""

import numpy as np
import pytest

from repro.core import REKSConfig, REKSTrainer
from repro.models import StandaloneConfig, StandaloneTrainer, create_encoder


class TestStandaloneDeterminism:
    def test_same_seed_same_metrics(self, beauty_tiny, beauty_transe,
                                    beauty_kg):
        results = []
        for _ in range(2):
            encoder = create_encoder(
                "gru4rec", n_items=beauty_tiny.n_items, dim=16,
                item_init=beauty_transe.item_embeddings(
                    beauty_kg.item_entity),
                rng=np.random.default_rng(3))
            trainer = StandaloneTrainer(
                encoder, beauty_tiny.split.train,
                beauty_tiny.split.validation,
                StandaloneConfig(epochs=2, lr=3e-3, seed=3))
            trainer.fit()
            results.append(trainer.evaluate(beauty_tiny.split.test,
                                            ks=(10,)))
        assert results[0] == results[1]

    def test_different_seed_differs(self, beauty_tiny, beauty_transe,
                                    beauty_kg):
        states = []
        for seed in (1, 2):
            encoder = create_encoder(
                "gru4rec", n_items=beauty_tiny.n_items, dim=16,
                rng=np.random.default_rng(seed))
            trainer = StandaloneTrainer(
                encoder, beauty_tiny.split.train,
                beauty_tiny.split.validation,
                StandaloneConfig(epochs=1, lr=3e-3, seed=seed))
            trainer.fit()
            states.append(encoder.item_embedding.weight.data.copy())
        assert not np.allclose(states[0], states[1])


class TestREKSDeterminism:
    def test_same_seed_same_metrics(self, beauty_tiny, beauty_kg,
                                    beauty_transe):
        results = []
        for _ in range(2):
            cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                             action_cap=60, seed=4)
            trainer = REKSTrainer(beauty_tiny, beauty_kg,
                                  model_name="gru4rec", config=cfg,
                                  transe=beauty_transe)
            trainer.fit()
            results.append(trainer.evaluate(beauty_tiny.split.test,
                                            ks=(10,)))
        assert results[0] == results[1]

    def test_stochastic_selection_still_deterministic(self, beauty_tiny,
                                                      beauty_kg,
                                                      beauty_transe):
        """Gumbel exploration draws from a seeded generator, so even the
        'sample' training mode reproduces exactly."""
        results = []
        for _ in range(2):
            cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=64,
                             action_cap=40, train_selection="sample",
                             seed=6)
            trainer = REKSTrainer(beauty_tiny, beauty_kg,
                                  model_name="gru4rec", config=cfg,
                                  transe=beauty_transe)
            history = trainer.fit()
            results.append(history.losses[0])
        assert results[0] == pytest.approx(results[1], abs=0.0)
