"""Bench-adjacent sanity: the CSR hot path outruns the loop reference.

A coarse in-suite guard (the real numbers live in
``benchmarks/bench_micro_env_hotpath.py``): on a moderately sized
frontier the vectorized ``batched_actions`` must beat the loop-based
reference.  Slow-marked so tier-1 stays timing-free.
"""

from time import perf_counter

import numpy as np
import pytest

from reference_env import ReferenceKGEnvironment
from repro.autograd import no_grad
from repro.core.environment import KGEnvironment, RolloutWorkspace

from test_env_differential import random_built_kg


def _best_of(fn, repeats=5):
    fn()  # warmup
    times = []
    for _ in range(repeats):
        start = perf_counter()
        fn()
        times.append(perf_counter() - start)
    return min(times)


@pytest.mark.slow
def test_csr_beats_reference_on_moderate_frontier():
    rng = np.random.default_rng(0)
    built = random_built_kg(rng, n_items=300, n_other=100, n_relations=4,
                            n_edges=20_000, hub_degree=500)
    ref_env = ReferenceKGEnvironment(built, action_cap=100, seed=0)
    csr_env = KGEnvironment(built, action_cap=100, seed=0)
    workspace = RolloutWorkspace()
    entities = rng.integers(0, built.kg.num_entities, size=2048)
    visited = np.stack(
        [entities, rng.integers(0, built.kg.num_entities, 2048)], axis=1)

    ref_s = _best_of(lambda: ref_env.batched_actions(entities, visited))
    with no_grad():
        csr_s = _best_of(lambda: csr_env.batched_actions(
            entities, visited, workspace=workspace))
    # Loose 2x bar: this is a correctness-of-direction check, the
    # calibrated >= 5x bar lives in the micro benchmark.
    assert csr_s < ref_s / 2, (
        f"CSR path ({csr_s * 1e3:.2f} ms) not clearly faster than "
        f"reference ({ref_s * 1e3:.2f} ms)")
