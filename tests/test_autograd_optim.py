"""Unit tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.autograd import Adam, SGD, Tensor, clip_grad_norm
from repro.autograd.optim import Optimizer


def quadratic_loss(param: Tensor) -> Tensor:
    """(p - 3)^2 summed — minimized at p == 3."""
    diff = param - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True, dtype=np.float64)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Tensor(np.zeros(1), requires_grad=True, dtype=np.float64)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.ones(1) * 5.0, requires_grad=True, dtype=np.float64)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero task gradient
        opt.step()
        assert p.data[0] < 5.0

    def test_skips_params_without_grad(self):
        p = Tensor(np.ones(1), requires_grad=True)
        opt = SGD([p], lr=0.5)
        opt.step()  # no backward happened; must not crash
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(3), requires_grad=True, dtype=np.float64)
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(3, 3.0), atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction the first Adam step is ~lr regardless of
        # gradient scale.
        p = Tensor(np.zeros(1), requires_grad=True, dtype=np.float64)
        opt = Adam([p], lr=0.05)
        opt.zero_grad()
        (p * 1000.0).sum().backward()
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.05, rel=1e-3)

    def test_requires_trainable_params(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.zeros(1))], lr=0.1)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(2), requires_grad=True, dtype=np.float64)
        p.grad = np.array([0.3, 0.4])
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clips_to_max_norm(self):
        p = Tensor(np.zeros(2), requires_grad=True, dtype=np.float64)
        p.grad = np.array([3.0, 4.0])
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_multiple_params_joint_norm(self):
        a = Tensor(np.zeros(1), requires_grad=True, dtype=np.float64)
        b = Tensor(np.zeros(1), requires_grad=True, dtype=np.float64)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm([a.grad[0], b.grad[0]]) == pytest.approx(2.5)

    def test_ignores_gradless_params(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        assert clip_grad_norm([p], 1.0) == 0.0


class TestOptimizerBase:
    def test_zero_grad_clears(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        p.grad = np.array([1.0], dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_base_step_not_implemented(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(NotImplementedError):
            Optimizer([p]).step()
