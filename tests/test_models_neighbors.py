"""Unit tests for the classic (non-neural) baselines."""

import numpy as np
import pytest

from repro.data.schema import Session
from repro.eval.metrics import top_k_from_scores
from repro.models.neighbors import (
    CLASSIC_BASELINES,
    ItemKNNRecommender,
    MarkovChainRecommender,
    PopRecommender,
    SessionPopRecommender,
    create_classic_baseline,
)

TRAIN = [
    Session([1, 2, 3], 0, 0),
    Session([1, 2], 1, 0),
    Session([2, 3], 2, 0),
    Session([4, 5], 3, 0),
    Session([1, 2], 4, 0),
]
N_ITEMS = 5


class TestPop:
    def test_popularity_ordering(self):
        model = PopRecommender(N_ITEMS).fit(TRAIN)
        scores = model.score_sessions([Session([4, 1], 9, 0)])
        ranked = top_k_from_scores(scores, 3)[0]
        # Item 2 appears 4x, item 1 3x, item 3 2x.
        np.testing.assert_array_equal(ranked, [2, 1, 3])

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PopRecommender(N_ITEMS).score_sessions([Session([1, 2], 0, 0)])

    def test_padding_excluded(self):
        model = PopRecommender(N_ITEMS).fit(TRAIN)
        scores = model.score_sessions([Session([1, 2], 0, 0)])
        assert scores[0, 0] == -np.inf


class TestSessionPop:
    def test_in_session_items_dominate(self):
        model = SessionPopRecommender(N_ITEMS).fit(TRAIN)
        # Prefix [4]: item 4 is rare globally but in-session.
        scores = model.score_sessions([Session([4, 1], 9, 0)])
        ranked = top_k_from_scores(scores, 1)[0]
        assert ranked[0] == 4

    def test_global_backfill(self):
        model = SessionPopRecommender(N_ITEMS).fit(TRAIN)
        scores = model.score_sessions([Session([4, 1], 9, 0)])
        ranked = top_k_from_scores(scores, 3)[0].tolist()
        assert ranked[0] == 4          # session item first
        assert ranked[1] == 2          # then global popularity


class TestMarkov:
    def test_transition_scores(self):
        model = MarkovChainRecommender(N_ITEMS).fit(TRAIN)
        # After item 1, item 2 followed 3 times.
        scores = model.score_sessions([Session([1, 99], 9, 0)])
        ranked = top_k_from_scores(scores, 1)[0]
        assert ranked[0] == 2

    def test_unseen_last_item_falls_back_to_popularity(self):
        model = MarkovChainRecommender(N_ITEMS).fit(TRAIN)
        scores = model.score_sessions([Session([5, 99], 9, 0)])
        # 5 -> nothing observed except 5->? (4,5 session has 4->5 only),
        # so scores are the smoothed popularity: argmax is item 2.
        ranked = top_k_from_scores(scores, 1)[0]
        assert ranked[0] == 2

    def test_chain_beats_popularity_on_structured_data(self):
        model = MarkovChainRecommender(N_ITEMS).fit(TRAIN)
        scores = model.score_sessions([Session([2, 99], 9, 0)])
        ranked = top_k_from_scores(scores, 1)[0]
        assert ranked[0] == 3  # 2 -> 3 twice; popularity would say 2


class TestItemKNN:
    def test_cooccurring_items_score(self):
        model = ItemKNNRecommender(N_ITEMS, regularization=0.0).fit(TRAIN)
        scores = model.score_sessions([Session([1, 99], 9, 0)])
        assert scores[0, 2] > 0          # 1 and 2 co-occur 3 times
        assert scores[0, 3] > 0          # via session [1,2,3]
        assert scores[0, 5] == 0         # never co-occurs with 1

    def test_similarity_symmetric(self):
        model = ItemKNNRecommender(N_ITEMS, regularization=0.0).fit(TRAIN)
        assert model.similarity[1][2] == pytest.approx(model.similarity[2][1])

    def test_regularization_dampens_rare_pairs(self):
        tight = ItemKNNRecommender(N_ITEMS, regularization=0.0).fit(TRAIN)
        loose = ItemKNNRecommender(N_ITEMS, regularization=50.0).fit(TRAIN)
        assert loose.similarity[4][5] < tight.similarity[4][5]


class TestFactoryAndAccuracy:
    def test_factory(self):
        for name in CLASSIC_BASELINES:
            model = create_classic_baseline(name, n_items=N_ITEMS)
            assert model.n_items == N_ITEMS
        with pytest.raises(KeyError):
            create_classic_baseline("svd", n_items=N_ITEMS)

    def test_markov_beats_random_on_synthetic(self, beauty_tiny):
        from repro.eval.metrics import evaluate_rankings

        model = MarkovChainRecommender(beauty_tiny.n_items)
        model.fit(beauty_tiny.split.train)
        scores = model.score_sessions(beauty_tiny.split.test)
        ranked = top_k_from_scores(scores, 10)
        targets = [s.target for s in beauty_tiny.split.test]
        metrics = evaluate_rankings(ranked, targets, ks=(10,))
        random_hr = 100.0 * 10 / beauty_tiny.n_items
        assert metrics["HR@10"] > random_hr
