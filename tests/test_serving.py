"""Serving subsystem: scheduler, pool, cache, server, determinism.

Everything here is tier-1 (fast): the REKS stack under test is an
untrained agent over the shared tiny fixtures — serving behavior does
not depend on training, and the determinism contract is exactly about
reproducing ``recommend_sessions`` bit-for-bit on rankings.
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np
import pytest

from repro import REKSConfig, REKSTrainer
from repro.core.environment import RolloutWorkspace
from repro.serving import (
    BatchScheduler,
    ExplanationCache,
    SchedulerClosed,
    ServerClosed,
    WorkspacePool,
)
from repro.serving.bench import check_determinism


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    """Untrained (but inference-ready) REKS stack, shared per module."""
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture()
def sessions(beauty_tiny):
    return [s for s in beauty_tiny.split.test if len(s.items) >= 2]


# ----------------------------------------------------------------------
# BatchScheduler
# ----------------------------------------------------------------------
class TestBatchScheduler:
    def test_size_flush_returns_full_batch_immediately(self):
        sched = BatchScheduler(max_batch=4, max_wait_ms=10_000)
        futures = [sched.submit(i) for i in range(4)]
        start = perf_counter()
        batch = sched.next_batch()
        assert perf_counter() - start < 1.0  # no deadline wait
        assert [r.payload for r in batch] == [0, 1, 2, 3]
        assert all(not f.done() for f in futures)

    def test_deadline_flush_with_single_queued_request(self):
        sched = BatchScheduler(max_batch=64, max_wait_ms=30)
        sched.submit("lone")
        start = perf_counter()
        batch = sched.next_batch()
        waited = perf_counter() - start
        assert [r.payload for r in batch] == ["lone"]
        assert waited < 5.0  # flushed on deadline, not stranded

    def test_oversize_burst_splits_at_max_batch(self):
        sched = BatchScheduler(max_batch=4, max_wait_ms=0)
        for i in range(11):
            sched.submit(i)
        sizes = []
        while sched.pending:
            sizes.append(len(sched.next_batch()))
        assert sum(sizes) == 11
        assert max(sizes) <= 4
        assert sizes[0] == 4  # oldest-first, full cuts while oversize

    def test_close_drain_keeps_pending_for_workers(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=10_000)
        sched.submit("queued")
        assert sched.close(drain=True) == []
        batch = sched.next_batch()
        assert [r.payload for r in batch] == ["queued"]
        assert sched.next_batch() is None  # drained -> workers exit

    def test_close_without_drain_returns_abandoned(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=10_000)
        sched.submit("dropped")
        abandoned = sched.close(drain=False)
        assert [r.payload for r in abandoned] == ["dropped"]
        assert sched.next_batch() is None

    def test_submit_after_close_raises(self):
        sched = BatchScheduler()
        sched.close()
        with pytest.raises(SchedulerClosed):
            sched.submit("late")

    def test_invalid_knobs_raise(self):
        with pytest.raises(ValueError):
            BatchScheduler(max_batch=0)
        with pytest.raises(ValueError):
            BatchScheduler(max_wait_ms=-1)


# ----------------------------------------------------------------------
# WorkspacePool / RolloutWorkspace hooks
# ----------------------------------------------------------------------
class TestWorkspacePool:
    def test_double_checkout_raises(self):
        workspace = RolloutWorkspace()
        workspace.checkout()
        with pytest.raises(RuntimeError, match="checked out"):
            workspace.checkout()
        workspace.release()
        workspace.checkout()  # usable again
        assert workspace.checkouts == 2

    def test_pool_recycles_and_counts(self):
        pool = WorkspacePool(2)
        with pool.checkout() as first:
            with pool.checkout() as second:
                assert first is not second
                assert pool.idle == 0
        assert pool.idle == 2
        with pool.checkout():
            pass
        assert pool.checkouts == 3

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            WorkspacePool(0)

    def test_corrupted_checkout_does_not_shrink_pool(self):
        """A workspace whose checkout flag is stuck must be replaced,
        not silently dropped — losing the slot would eventually
        deadlock every checkout behind it."""
        pool = WorkspacePool(1)
        stuck = pool._workspaces[0]
        stuck.checkout()  # simulate a worker that died mid-flush
        with pytest.raises(RuntimeError, match="checked out"):
            with pool.checkout():
                pass
        assert pool.idle == 1  # fresh replacement queued
        with pool.checkout() as replacement:
            assert replacement is not stuck
        assert pool.idle == 1

    def test_body_failure_releases_workspace(self):
        pool = WorkspacePool(1)
        with pytest.raises(RuntimeError, match="boom"):
            with pool.checkout():
                raise RuntimeError("boom")
        assert pool.idle == 1
        with pool.checkout():
            pass  # still usable


# ----------------------------------------------------------------------
# ExplanationCache
# ----------------------------------------------------------------------
class TestExplanationCache:
    def test_hit_miss_accounting(self):
        cache = ExplanationCache(4)
        key = ExplanationCache.key((1, 2, 3), 10)
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ExplanationCache(2)
        a, b, c = (ExplanationCache.key((i,), 1) for i in range(3))
        cache.put(a, "a")
        cache.put(b, "b")
        assert cache.get(a) == "a"  # refresh a
        cache.put(c, "c")           # evicts b (least recent)
        assert cache.get(b) is None
        assert cache.get(a) == "a"
        assert cache.get(c) == "c"
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ExplanationCache(0)
        key = ExplanationCache.key((1,), 1)
        cache.put(key, "value")
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_user_scoped_keys_differ(self):
        base = ExplanationCache.key((1, 2), 5)
        scoped = ExplanationCache.key((1, 2), 5, user_id=7)
        assert base != scoped


# ----------------------------------------------------------------------
# RecommendationServer
# ----------------------------------------------------------------------
class TestRecommendationServer:
    def test_coalesced_matches_recommend_sessions(self, trainer, sessions):
        """Determinism: coalesced rankings and paths == the synchronous
        batch path, request interleaving notwithstanding."""
        k = 10
        expected_rank, expected_paths = [], []
        recs = trainer.recommend_sessions(sessions, k=k)
        offset = 0
        for rec in recs:
            for row in range(rec.ranked_items.shape[0]):
                expected_rank.append(rec.ranked_items[row])
                expected_paths.append(
                    {item: rec.paths[(row, item)]
                     for (r, item) in rec.paths if r == row})
            offset += rec.ranked_items.shape[0]
        with trainer.serve(max_batch=8, max_wait_ms=5.0, workers=2,
                           cache_size=0) as server:
            results = server.recommend_many(sessions, k=k)
        assert len(results) == len(sessions)
        for result, rank, paths in zip(results, expected_rank,
                                       expected_paths):
            np.testing.assert_array_equal(
                np.asarray(result.items, dtype=np.int64), rank)
            for item, path in zip(result.items, result.paths):
                if path is None:
                    assert item not in paths
                else:
                    assert paths[item].entities == path.entities
                    assert paths[item].relations == path.relations

    def test_concurrent_callers_each_get_their_answer(self, trainer,
                                                      sessions):
        k = 5
        flat = []
        for rec in trainer.recommend_sessions(sessions, k=k):
            flat.extend(rec.ranked_items)
        results = [None] * len(sessions)
        with trainer.serve(max_batch=4, max_wait_ms=3.0,
                           workers=2, cache_size=0) as server:
            def client(i):
                results[i] = server.recommend_one(sessions[i], k=k)
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(sessions))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for result, rank in zip(results, flat):
            np.testing.assert_array_equal(
                np.asarray(result.items, dtype=np.int64), rank)

    def test_deadline_flush_serves_single_request(self, trainer,
                                                  sessions):
        with trainer.serve(max_batch=64, max_wait_ms=10.0,
                           workers=1) as server:
            result = server.recommend_one(sessions[0], k=5)
            snapshot = server.stats()
        assert len(result.items) == 5
        assert snapshot.batch_occupancy.get(1) == 1
        assert snapshot.requests == 1

    def test_oversize_request_split(self, trainer, sessions):
        many = (sessions * 3)[:12]
        with trainer.serve(max_batch=4, max_wait_ms=1.0, workers=1,
                           cache_size=0) as server:
            results = server.recommend_many(many, k=5)
            snapshot = server.stats()
        assert len(results) == 12
        assert snapshot.requests == 12
        assert max(snapshot.batch_occupancy) <= 4
        assert snapshot.batches >= 3

    def test_cache_hit_returns_identical_payload(self, trainer,
                                                 sessions):
        with trainer.serve(max_batch=8, max_wait_ms=1.0,
                           workers=1) as server:
            first = server.recommend_one(sessions[0], k=5)
            second = server.recommend_one(sessions[0], k=5)
            snapshot = server.stats()
            assert server.cache.hits == 1
            assert server.cache.misses == 1
        assert not first.cached
        assert second.cached
        assert second.items == first.items
        assert second.scores == first.scores
        assert second.explanations == first.explanations
        assert snapshot.cache_hits == 1
        assert snapshot.cache_misses == 1
        assert snapshot.requests == 2

    def test_distinct_k_not_conflated(self, trainer, sessions):
        with trainer.serve(max_batch=8, max_wait_ms=1.0,
                           workers=1) as server:
            five = server.recommend_one(sessions[0], k=5)
            ten = server.recommend_one(sessions[0], k=10)
        assert len(five.items) == 5
        assert len(ten.items) == 10
        assert server.cache.hits == 0  # different keys

    def test_mixed_k_coalesced_batch(self, trainer, sessions):
        """Requests with different k coalesce but execute exactly."""
        with trainer.serve(max_batch=16, max_wait_ms=20.0, workers=1,
                           cache_size=0) as server:
            futures = [server.submit(sessions[i % len(sessions)],
                                     k=(5 if i % 2 else 10))
                       for i in range(6)]
            results = [f.result() for f in futures]
        for i, result in enumerate(results):
            assert len(result.items) == (5 if i % 2 else 10)

    def test_mixed_k_single_superset_flush_bit_identical(self, trainer,
                                                         sessions):
        """A mixed-k flush executes as ONE superset walk — a single
        batch at max(k) with each row selected at its own k — and every
        ranking, score, and explanation is bit-identical to a dedicated
        per-k execution of that session alone."""
        subset = sessions[:6]
        ks = [3, 10, 5, 7, 10, 3]
        with trainer.serve(max_batch=16, max_wait_ms=50.0, workers=1,
                           cache_size=0) as server:
            futures = [server.submit(s, k=k)
                       for s, k in zip(subset, ks)]
            results = [f.result() for f in futures]
            snapshot = server.stats()
        # One flush, one walk: the mixed ks did NOT split the batch.
        assert snapshot.batches == 1
        assert snapshot.batch_occupancy.get(len(subset)) == 1
        # Per-k reference: the SAME collated batch executed at each
        # distinct k (scores/walk are batch-composition dependent, so
        # the batch is held fixed; the superset selection must then be
        # bitwise indistinguishable from a dedicated k run).
        reference = {k: trainer.recommend_sessions(subset, k=k)[0]
                     for k in set(ks)}
        for row, (k, result) in enumerate(zip(ks, results)):
            assert len(result.items) == k
            rec = reference[k]
            np.testing.assert_array_equal(
                np.asarray(result.items, dtype=np.int64),
                rec.ranked_items[row])
            assert result.scores == tuple(
                float(rec.scores[row, item]) for item in result.items)
            for item, path in zip(result.items, result.paths):
                expected = rec.paths.get((row, item))
                if path is None:
                    assert expected is None
                else:
                    assert path.entities == expected.entities
                    assert path.relations == expected.relations

    def test_graceful_shutdown_completes_in_flight(self, trainer,
                                                   sessions):
        server = trainer.serve(max_batch=64, max_wait_ms=10_000.0,
                               workers=1, cache_size=0)
        futures = [server.submit(s, k=5) for s in sessions[:6]]
        assert not any(f.done() for f in futures)  # parked on deadline
        server.shutdown(drain=True)
        for future in futures:
            assert len(future.result(timeout=0).items) == 5
        with pytest.raises(ServerClosed):
            server.recommend_one(sessions[0], k=5)

    def test_shutdown_without_drain_fails_pending(self, trainer,
                                                  sessions):
        server = trainer.serve(max_batch=64, max_wait_ms=10_000.0,
                               workers=1, cache_size=0)
        futures = [server.submit(s, k=5) for s in sessions[:3]]
        server.shutdown(drain=False)
        failed = 0
        for future in futures:
            try:
                future.result(timeout=1)
            except ServerClosed:
                failed += 1
        assert failed == len(futures)

    def test_short_session_rejected(self, trainer, beauty_tiny):
        from repro.data.schema import Session

        stub = Session([3], user_id=0, day=0)
        with trainer.serve(workers=1) as server:
            with pytest.raises(ValueError, match=">= 2 items"):
                server.recommend_one(stub, k=5)

    def test_from_trainer_uses_config_knobs(self, trainer):
        server = trainer.serve(workers=1)
        try:
            assert server._scheduler.max_batch == \
                trainer.config.serve_max_batch
            assert server.cache.capacity == \
                trainer.config.serve_cache_size
            assert server.default_k == trainer.config.serve_default_k
        finally:
            server.shutdown()

    def test_check_determinism_helper(self, trainer, sessions):
        assert check_determinism(trainer, sessions[:10], k=5)


# ----------------------------------------------------------------------
# Failure containment: a worker raising mid-flush must fail the
# affected futures, release its pinned workspace, and keep serving.
# ----------------------------------------------------------------------
class TestWorkerFailureContainment:
    def test_batch_failure_fails_all_futures_and_recovers(
            self, trainer, sessions, monkeypatch):
        from repro.core.agent import REKSAgent

        real = REKSAgent.recommend
        calls = {"n": 0}

        def flaky(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected walk failure")
            return real(self, *args, **kwargs)

        monkeypatch.setattr(REKSAgent, "recommend", flaky)
        with trainer.serve(max_batch=8, max_wait_ms=20.0, workers=1,
                           cache_size=0) as server:
            futures = [server.submit(s, k=5) for s in sessions[:3]]
            failed = 0
            for future in futures:
                try:
                    future.result(timeout=10)
                except RuntimeError as exc:
                    assert "injected walk failure" in str(exc)
                    failed += 1
            assert failed == 3  # coalesced batch: all fail, none hang
            # The pinned workspace was released on the error path...
            assert server.pool.idle == 1
            # ...and the worker thread survived to serve new traffic.
            result = server.recommend_one(sessions[0], k=5)
            assert len(result.items) == 5

    def test_failure_leaves_later_queue_intact(self, trainer, sessions,
                                               monkeypatch):
        """Requests queued behind a failing batch still execute."""
        from repro.core.agent import REKSAgent

        real = REKSAgent.recommend
        calls = {"n": 0}

        def flaky(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first batch dies")
            return real(self, *args, **kwargs)

        monkeypatch.setattr(REKSAgent, "recommend", flaky)
        with trainer.serve(max_batch=1, max_wait_ms=0.0, workers=1,
                           cache_size=0) as server:
            futures = [server.submit(s, k=5) for s in sessions[:4]]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(len(future.result(timeout=10).items))
                except RuntimeError:
                    outcomes.append("failed")
            assert outcomes.count("failed") == 1
            assert outcomes.count(5) == 3


# ----------------------------------------------------------------------
# Trainer integration
# ----------------------------------------------------------------------
class TestTrainerIntegration:
    def test_evaluate_routes_through_server(self, trainer, sessions):
        direct = trainer.evaluate(sessions, ks=(5, 10))
        with trainer.serve(max_batch=8, max_wait_ms=2.0,
                           workers=2) as server:
            served = trainer.evaluate(sessions, ks=(5, 10),
                                      server=server)
        assert served == direct

    def test_recommend_sessions_empty_input(self, trainer):
        assert trainer.recommend_sessions([]) == []
        assert trainer.recommend_sessions(iter(())) == []

    def test_evaluate_drops_short_sessions_consistently(self, trainer,
                                                        sessions):
        """A <2-item session must not shift rankings against targets,
        and the server path must agree with the direct path."""
        from repro.data.schema import Session

        stub = Session([3], user_id=0, day=0)
        mixed = [sessions[0], stub, sessions[1]]
        clean = [sessions[0], sessions[1]]
        expected = trainer.evaluate(clean, ks=(5,))
        assert trainer.evaluate(mixed, ks=(5,)) == expected
        with trainer.serve(workers=1) as server:
            assert trainer.evaluate(mixed, ks=(5,),
                                    server=server) == expected


def test_serving_smoke_round_trip(trainer, sessions):
    """Tier-1 smoke: one coalesced round trip with explanations."""
    with trainer.serve(max_batch=4, max_wait_ms=1.0,
                       workers=1) as server:
        result = server.recommend_one(sessions[0], k=3)
    assert len(result.items) == 3
    assert len(result.explanations) == 3
    assert any(result.scores)  # something was actually ranked
    for path, rendered in zip(result.paths, result.explanations):
        assert (path is None) == (rendered == "")
