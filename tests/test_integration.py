"""Cross-module integration tests: full REKS pipelines on tiny data."""

import numpy as np
import pytest

from repro import (
    Explainer,
    REKSConfig,
    REKSTrainer,
    StandaloneConfig,
    StandaloneTrainer,
    build_kg,
    create_encoder,
)
from repro.eval.user_study import simulate_user_study, UserStudyConfig


class TestAmazonPipeline:
    def test_reks_improves_over_baseline(self, beauty_tiny, beauty_kg,
                                         beauty_transe):
        """The paper's headline claim (Table VIII shape) on tiny data."""
        item_init = beauty_transe.item_embeddings(beauty_kg.item_entity)
        enc = create_encoder("gru4rec", n_items=beauty_tiny.n_items, dim=16,
                             item_init=item_init,
                             rng=np.random.default_rng(0))
        base = StandaloneTrainer(
            enc, beauty_tiny.split.train, beauty_tiny.split.validation,
            StandaloneConfig(epochs=4, lr=3e-3, patience=5, seed=0))
        base.fit()
        base_metrics = base.evaluate(beauty_tiny.split.test, ks=(10,))

        cfg = REKSConfig(dim=16, state_dim=16, epochs=4, batch_size=64,
                         lr=2e-3, action_cap=60, patience=5, seed=0)
        reks = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                           config=cfg, transe=beauty_transe)
        reks.fit()
        reks_metrics = reks.evaluate(beauty_tiny.split.test, ks=(10,))
        assert reks_metrics["HR@10"] > base_metrics["HR@10"]

    def test_no_user_kg_still_works(self, beauty_tiny, beauty_kg_no_users):
        """Table IX: REKS works on a KG without user entities."""
        cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                         action_cap=60, transe_epochs=4, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg_no_users,
                              model_name="narm", config=cfg)
        trainer.fit()
        metrics = trainer.evaluate(beauty_tiny.split.test, ks=(10,))
        random_hr = 100.0 * 10 / beauty_tiny.n_items
        assert metrics["HR@10"] > random_hr


class TestMovieLensPipeline:
    def test_reks_runs_on_movielens(self, movielens_tiny, movielens_kg):
        """The MovieLens KG has no users at all — genericity check."""
        cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                         action_cap=60, transe_epochs=4, seed=0)
        trainer = REKSTrainer(movielens_tiny, movielens_kg,
                              model_name="gru4rec", config=cfg)
        trainer.fit()
        metrics = trainer.evaluate(movielens_tiny.split.test, ks=(10,))
        assert metrics["HR@10"] > 0.0


class TestExplanationPipeline:
    def test_user_study_on_real_explanations(self, beauty_tiny, beauty_kg,
                                             beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                         action_cap=60, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                              config=cfg, transe=beauty_transe)
        trainer.fit()
        cases = Explainer(trainer).explain_sessions(
            beauty_tiny.split.test[:10], k=5)
        results = simulate_user_study(
            cases, UserStudyConfig(n_subjects=10, n_cases=10, seed=0))
        # Positive perspectives should outscore reverse-coded ones for
        # genuine on-KG explanations.
        assert (results["Transparency"]["mean"]
                > results["Difficult to understand"]["mean"])

    def test_ablation_variants_all_run(self, beauty_tiny, beauty_kg,
                                       beauty_transe):
        for name in ("reks_r1", "reks-path", "reks-rank", "reks_c"):
            cfg = REKSConfig.for_ablation(
                name, dim=16, state_dim=16, epochs=1, batch_size=64,
                action_cap=40, seed=0)
            trainer = REKSTrainer(beauty_tiny, beauty_kg,
                                  model_name="gru4rec", config=cfg,
                                  transe=beauty_transe)
            history = trainer.fit()
            assert np.isfinite(history.losses[0])

    def test_user_start_ablation_runs(self, beauty_tiny, beauty_kg,
                                      beauty_transe):
        cfg = REKSConfig.for_ablation(
            "reks_user", dim=16, state_dim=16, epochs=1, batch_size=64,
            action_cap=40, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                              config=cfg, transe=beauty_transe)
        history = trainer.fit()
        assert np.isfinite(history.losses[0])

    def test_path_length_ablations_run(self, beauty_tiny, beauty_kg,
                                       beauty_transe):
        for name, hops in (("reks_l3", 3), ("reks_l4", 4)):
            cfg = REKSConfig.for_ablation(
                name, dim=16, state_dim=16, epochs=1, batch_size=64,
                action_cap=40, seed=0)
            trainer = REKSTrainer(beauty_tiny, beauty_kg,
                                  model_name="gru4rec", config=cfg,
                                  transe=beauty_transe)
            trainer.fit()
            rec = trainer.recommend_sessions(beauty_tiny.split.test[:5],
                                             k=5)[0]
            for path in rec.paths.values():
                assert path.hops == hops
