"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

COMMON = ["--scale", "tiny", "--dim", "16", "--epochs", "1",
          "--batch-size", "64"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "books"])

    def test_defaults(self):
        args = build_parser().parse_args(["reks"])
        assert args.dataset == "beauty"
        assert args.model == "narm"
        assert args.final_beam == 4


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "beauty"] + COMMON) == 0
        out = capsys.readouterr().out
        assert "co_occur" in out
        assert "#sessions" in out

    def test_stats_movielens(self, capsys):
        assert main(["stats", "--dataset", "movielens"] + COMMON) == 0
        assert "directed_by" in capsys.readouterr().out

    def test_baseline(self, capsys):
        assert main(["baseline", "--model", "gru4rec"] + COMMON) == 0
        assert "HR@10" in capsys.readouterr().out

    def test_reks(self, capsys):
        assert main(["reks", "--model", "gru4rec"] + COMMON) == 0
        assert "REKS_gru4rec" in capsys.readouterr().out

    def test_explain(self, capsys):
        code = main(["explain", "--model", "gru4rec", "--cases", "2",
                     "--top-k", "2"] + COMMON)
        assert code == 0
        out = capsys.readouterr().out
        assert "session:" in out

    def test_reks_no_users(self, capsys):
        assert main(["reks", "--model", "gru4rec", "--no-users"]
                    + COMMON) == 0

    def test_compare(self, capsys):
        assert main(["compare", "--model", "gru4rec"] + COMMON) == 0
        out = capsys.readouterr().out
        assert "REKS_gru4rec" in out and "HR@5" in out

    def test_ingest(self, capsys, tmp_path):
        code = main(["ingest", "--rounds", "1", "--chunk", "8",
                     "--max-steps", "1",
                     "--checkpoints", str(tmp_path / "registry")]
                    + COMMON)
        assert code == 0
        out = capsys.readouterr().out
        assert "warm-start checkpoint v1" in out
        assert "published" in out
        assert (tmp_path / "registry" / "manifest.json").exists()

    def test_online_bench_parser_defaults(self):
        args = build_parser().parse_args(["online-bench", "--quick"])
        assert args.quick
        assert args.out.endswith("BENCH_online.json")
        assert args.concurrency == 16
        assert args.updater_mode == "thread"
        assert args.func.__name__ == "cmd_online_bench"

    def test_runtime_bench_parser_defaults(self):
        args = build_parser().parse_args(["runtime-bench", "--quick"])
        assert args.quick
        assert args.out.endswith("BENCH_runtime.json")
        assert args.workers == 4
        assert args.func.__name__ == "cmd_runtime_bench"

    def test_serve_bench_worker_mode_flag(self):
        args = build_parser().parse_args(
            ["serve-bench", "--quick", "--worker-mode", "process"])
        assert args.worker_mode == "process"
        assert args.out.endswith("BENCH_serving.json")
