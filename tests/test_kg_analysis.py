"""Unit tests for KG diagnostics."""

import numpy as np
import pytest

from repro.kg.analysis import (
    connectivity_report,
    degree_profile,
    find_hubs,
    pattern_statistics,
    reachable_within,
    to_networkx,
    two_hop_target_reachability,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.paths import SemanticPath


@pytest.fixture()
def chain_kg():
    """0 -> 1 -> 2 plus isolated entity 3."""
    kg = KnowledgeGraph()
    kg.add_entity_type("n", 4)
    r = kg.add_relation("r")
    kg.add_triples([0, 1], r, [1, 2])
    kg.finalize()
    return kg


class TestConversion:
    def test_to_networkx_counts(self, chain_kg):
        g = to_networkx(chain_kg)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 2
        assert g["0" if False else 0][1][0]["relation"] == "r"


class TestConnectivity:
    def test_report(self, chain_kg):
        rep = connectivity_report(chain_kg)
        assert rep["num_components"] == 2
        assert rep["largest_component"] == 3
        assert rep["isolated_entities"] == 1
        assert rep["largest_fraction"] == pytest.approx(0.75)

    def test_real_kg_mostly_connected(self, beauty_kg):
        # Isolated entities exist (related products of filtered items,
        # users without train sessions), but the bulk of the graph —
        # and every product — must sit in one component.
        rep = connectivity_report(beauty_kg.kg)
        assert rep["largest_fraction"] > 0.7
        prof = degree_profile(beauty_kg.kg)
        assert prof["product"]["zero_degree"] == 0


class TestDegrees:
    def test_profile(self, chain_kg):
        prof = degree_profile(chain_kg)
        assert prof["n"]["count"] == 4
        assert prof["n"]["max_degree"] == 1
        assert prof["n"]["zero_degree"] == 2  # entity 2 and 3

    def test_hubs_sorted(self, beauty_kg):
        hubs = find_hubs(beauty_kg.kg, top=5)
        degrees = [d for _, _, d in hubs]
        assert degrees == sorted(degrees, reverse=True)
        assert len(hubs) == 5


class TestReachability:
    def test_reachable_within(self, chain_kg):
        assert reachable_within(chain_kg, 0, 1) == {0, 1}
        assert reachable_within(chain_kg, 0, 2) == {0, 1, 2}
        assert reachable_within(chain_kg, 3, 2) == {3}

    def test_two_hop_target_reachability(self, beauty_kg, beauty_tiny):
        frac = two_hop_target_reachability(beauty_kg,
                                           beauty_tiny.split.test)
        assert 0.5 < frac <= 1.0  # the synthetic KG is path-dense


class TestPatterns:
    def test_pattern_statistics(self, chain_kg):
        p1 = SemanticPath(entities=[0, 1, 2], relations=[0, 0])
        p2 = SemanticPath(entities=[0, 1], relations=[0])
        stats = pattern_statistics([p1, p1, p2], chain_kg)
        assert stats[("r", "r")] == 2
        assert stats[("r",)] == 1
