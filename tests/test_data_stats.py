"""Unit tests for the statistics helpers (Tables II-VI machinery)."""

import numpy as np
import pytest

from repro.data.stats import (
    dataset_statistics,
    entity_statistics,
    format_table,
    relation_statistics,
)


class TestRelationStatistics:
    def test_matches_manual_counts(self, beauty_kg):
        stats = relation_statistics(beauty_kg.kg)
        heads, rels, tails = beauty_kg.kg.triples()
        for rel_id, name in enumerate(beauty_kg.kg.relation_names):
            assert stats[name] == int((rels == rel_id).sum())

    def test_totals_match_triple_count(self, beauty_kg):
        stats = relation_statistics(beauty_kg.kg)
        assert sum(stats.values()) == beauty_kg.kg.num_triples


class TestEntityStatistics:
    def test_counts_match_type_ranges(self, beauty_kg):
        stats = entity_statistics(beauty_kg.kg)
        total = sum(stats.values())
        assert total == beauty_kg.kg.num_entities
        assert stats["product"] == beauty_kg.n_items


class TestDatasetStatistics:
    def test_fields(self, beauty_tiny, beauty_kg):
        stats = dataset_statistics(beauty_tiny, beauty_kg.kg)
        assert stats["#sessions"] == len(beauty_tiny.sessions)
        assert stats["#train sessions"] == len(beauty_tiny.split.train)
        assert stats["#entities"] == beauty_kg.kg.num_entities
        assert stats["#relations"] == beauty_kg.kg.num_triples
        assert stats["average length"] == pytest.approx(
            beauty_tiny.average_session_length, abs=0.01)

    def test_without_kg(self, beauty_tiny):
        stats = dataset_statistics(beauty_tiny)
        assert "#entities" not in stats


class TestFormatTable:
    def test_alignment(self):
        text = format_table([["a", 1], ["long-label", 22]],
                            headers=["name", "n"])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        # Columns align: the numbers start at the same offset.
        assert lines[2].index("1") == lines[3].index("2")

    def test_no_headers(self):
        text = format_table([["x", "y"]])
        assert "---" not in text
        assert "x" in text
