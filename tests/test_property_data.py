"""Property-based tests for session filtering, splitting, and metrics."""

from collections import Counter

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.loader import SessionBatcher
from repro.data.schema import Session
from repro.data.sessions import filter_sessions, split_sessions
from repro.eval.metrics import (
    hit_rate_at_k,
    mrr_at_k,
    ndcg_at_k,
    top_k_from_scores,
)


@st.composite
def session_lists(draw):
    n = draw(st.integers(0, 30))
    sessions = []
    for i in range(n):
        length = draw(st.integers(2, 6))
        items = [draw(st.integers(1, 12)) for _ in range(length)]
        sessions.append(Session(items, user_id=i % 5, day=i))
    return sessions


class TestFilterInvariants:
    @given(session_lists(), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_support_invariant_holds(self, sessions, min_support):
        filtered, remap = filter_sessions(sessions,
                                          min_item_support=min_support)
        support = Counter(i for s in filtered for i in s.items)
        assert all(c >= min_support for c in support.values())

    @given(session_lists(), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_all_sessions_long_enough(self, sessions, min_support):
        filtered, _ = filter_sessions(sessions, min_item_support=min_support)
        assert all(len(s) >= 2 for s in filtered)

    @given(session_lists(), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_remap_contiguous(self, sessions, min_support):
        filtered, remap = filter_sessions(sessions,
                                          min_item_support=min_support)
        if remap:
            assert sorted(remap.values()) == list(range(1, len(remap) + 1))

    @given(session_lists(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_filtering_is_idempotent(self, sessions, min_support):
        once, _ = filter_sessions(sessions, min_item_support=min_support)
        twice, remap = filter_sessions(once, min_item_support=min_support)
        assert [s.items for s in twice] == [
            [remap[i] for i in s.items] for s in once]


class TestSplitInvariants:
    @given(st.integers(0, 200), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_exactly(self, n, seed):
        sessions = [Session([1, 2], u, 0) for u in range(n)]
        split = split_sessions(sessions, rng=np.random.default_rng(seed))
        assert (len(split.train) + len(split.validation)
                + len(split.test)) == n


class TestBatcherInvariants:
    @given(session_lists(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_every_example_served_once(self, sessions, batch_size):
        batcher = SessionBatcher(sessions, batch_size=batch_size,
                                 shuffle=False)
        served = sum(b.batch_size for b in batcher)
        assert served == batcher.num_examples

    @given(session_lists())
    @settings(max_examples=40, deadline=None)
    def test_mask_consistent_with_items(self, sessions):
        batcher = SessionBatcher(sessions, batch_size=8, shuffle=False)
        for batch in batcher:
            np.testing.assert_array_equal(batch.mask > 0, batch.items != 0)
            np.testing.assert_array_equal(batch.lengths,
                                          batch.mask.sum(axis=1))


class TestMetricInvariants:
    @given(st.integers(1, 20), st.integers(1, 10), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_metric_ordering(self, n_rows, k, seed):
        rng = np.random.default_rng(seed)
        ranked = [rng.permutation(30)[:k].tolist() for _ in range(n_rows)]
        targets = rng.integers(0, 30, size=n_rows).tolist()
        hr = hit_rate_at_k(ranked, targets, k)
        ndcg = ndcg_at_k(ranked, targets, k)
        mrr = mrr_at_k(ranked, targets, k)
        assert 0.0 <= mrr <= ndcg <= hr <= 1.0

    @given(st.integers(1, 10), st.integers(1, 15), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_top_k_sorted_descending(self, rows, k, seed):
        rng = np.random.default_rng(seed)
        scores = rng.standard_normal((rows, 20))
        ranked = top_k_from_scores(scores, k)
        picked = np.take_along_axis(scores, ranked, axis=1)
        assert (np.diff(picked, axis=1) <= 1e-12).all()
