"""Loop-based reference implementation of the KG environment.

This is the pre-CSR ``KGEnvironment`` kept verbatim as a differential
oracle: per-entity neighbor lists built one entity at a time, and
``batched_actions`` padding the frontier with a Python loop over its
rows.  It is deliberately slow and deliberately unchanged — the CSR
environment in :mod:`repro.core.environment` must return the same
legal-action sets (see ``test_env_differential.py``), and the micro
benchmark measures its throughput against the vectorized version.

Both implementations consume the action-cap subsampling RNG in the
same order (entities ascending, one draw per over-cap entity), so with
equal seeds the capped adjacencies are bit-identical, not merely
equivalent up to reordering.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kg.builder import BuiltKG


class ReferenceKGEnvironment:
    """Per-entity-list adjacency with loop-padded action-space queries."""

    def __init__(self, built: BuiltKG, action_cap: int = 250,
                 seed: int = 0) -> None:
        self.built = built
        self.kg = built.kg
        self.action_cap = action_cap
        rng = np.random.default_rng(seed)
        self._rels: List[np.ndarray] = []
        self._tails: List[np.ndarray] = []
        for entity in range(self.kg.num_entities):
            rels, tails = self.kg.neighbors(entity)
            if len(tails) > action_cap:
                pick = rng.choice(len(tails), size=action_cap, replace=False)
                pick.sort()
                rels, tails = rels[pick], tails[pick]
            self._rels.append(np.ascontiguousarray(rels))
            self._tails.append(np.ascontiguousarray(tails))
        self._degrees = np.array([len(t) for t in self._tails],
                                 dtype=np.int64)

    def degree(self, entity: int) -> int:
        return int(self._degrees[entity])

    def actions_of(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._rels[entity], self._tails[entity]

    def batched_actions(self, entities: np.ndarray, visited: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        entities = np.asarray(entities, dtype=np.int64)
        n = len(entities)
        width = int(self._degrees[entities].max()) if n else 0
        width = max(width, 1)
        rels = np.zeros((n, width), dtype=np.int64)
        tails = np.zeros((n, width), dtype=np.int64)
        mask = np.zeros((n, width), dtype=bool)
        for i, entity in enumerate(entities):
            deg = self._degrees[entity]
            if deg == 0:
                continue
            rels[i, :deg] = self._rels[entity]
            tails[i, :deg] = self._tails[entity]
            mask[i, :deg] = True
        for col in range(visited.shape[1]):
            mask &= tails != visited[:, col:col + 1]
        return rels, tails, mask
