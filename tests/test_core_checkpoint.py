"""Integration tests for REKS trainer checkpointing."""

import numpy as np
import pytest

from repro.core import REKSConfig, REKSTrainer


@pytest.fixture(scope="module")
def fitted(beauty_tiny, beauty_kg, beauty_transe):
    cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                     action_cap=60, seed=3)
    trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                          config=cfg, transe=beauty_transe)
    trainer.fit()
    return trainer


class TestSaveLoad:
    def test_round_trip_preserves_predictions(self, fitted, beauty_tiny,
                                              beauty_kg, beauty_transe,
                                              tmp_path):
        path = tmp_path / "reks.npz"
        fitted.save(path)
        metrics_before = fitted.evaluate(beauty_tiny.split.test[:20],
                                         ks=(10,))

        cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                         action_cap=60, seed=99)  # different init seed
        fresh = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                            config=cfg, transe=beauty_transe)
        fresh.load(path)
        metrics_after = fresh.evaluate(beauty_tiny.split.test[:20],
                                       ks=(10,))
        assert metrics_after["HR@10"] == pytest.approx(
            metrics_before["HR@10"], abs=1e-9)

    def test_wrong_model_rejected(self, fitted, beauty_tiny, beauty_kg,
                                  beauty_transe, tmp_path):
        path = tmp_path / "reks.npz"
        fitted.save(path)
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, seed=0,
                         action_cap=60)
        other = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                            config=cfg, transe=beauty_transe)
        with pytest.raises(ValueError):
            other.load(path)
