"""Unit tests for the text chart renderers."""

import pytest

from repro.eval.plots import bar_chart, grouped_bar_chart, likert_chart, line_chart


class TestBarChart:
    def test_renders_all_labels(self):
        out = bar_chart({"REKS": 9.9, "base": 8.7}, title="HR@5")
        assert "HR@5" in out
        assert "REKS" in out and "base" in out
        assert "█" in out

    def test_larger_value_longer_bar(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        bars = {line.split(" |")[0].strip(): line.count("█")
                for line in out.splitlines()}
        assert bars["a"] > bars["b"]

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_zero_values_no_crash(self):
        out = bar_chart({"a": 0.0})
        assert "a" in out


class TestGroupedBarChart:
    def test_groups_and_series(self):
        out = grouped_bar_chart({"beauty": {"REKS": 9.9, "base": 8.7},
                                 "baby": {"REKS": 5.3, "base": 4.8}})
        assert "beauty:" in out and "baby:" in out
        assert out.count("REKS") == 2


class TestLineChart:
    def test_contains_series_glyphs(self):
        out = line_chart([1, 2, 3], {"HR": [5.0, 6.0, 7.0],
                                     "NDCG": [3.0, 4.0, 5.0]})
        assert "o" in out and "x" in out
        assert "o=HR" in out

    def test_bounds_labeled(self):
        out = line_chart([1, 2], {"m": [2.0, 8.0]})
        assert "8.00" in out and "2.00" in out

    def test_empty(self):
        assert line_chart([], {}, title="t") == "t"


class TestLikertChart:
    def test_means_and_stds_shown(self):
        out = likert_chart({"Satisfaction": {"mean": 4.2, "std": 0.6},
                            "Unusability": {"mean": 1.8, "std": 0.7}})
        assert "4.20±0.60" in out
        assert "1.80±0.70" in out

    def test_higher_mean_longer_bar(self):
        out = likert_chart({"hi": {"mean": 4.8, "std": 0.1},
                            "lo": {"mean": 1.2, "std": 0.1}})
        lines = {line.split(" |")[0].strip(): line.count("█")
                 for line in out.splitlines()}
        assert lines["hi"] > lines["lo"]
