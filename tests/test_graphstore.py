"""Sharded graph store: monolithic-vs-sharded differential + delta publish.

Three contracts pinned here:

1. **Sharding is invisible to queries** — an environment over S shards
   answers every ``actions_of`` / ``batched_actions`` / ``flat_tables``
   query identically to the S=1 (monolithic) degenerate, through
   arbitrary interleavings of staging, compaction, and queries
   (random delta streams, mixed shard counts).
2. **Per-shard compaction == full rebuild** — the delta-proportional
   merge and the monolithic O(E) merge agree on the final capped
   adjacency (hypothesis property over random graphs and deltas).
3. **Delta publish ships only dirty shards** — after a compaction that
   touches a subset of shards, ``publish_tables`` exports exactly
   those shards' bytes (asserted via manifest inspection) and worker
   rankings stay bit-identical to thread mode.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from reference_env import ReferenceKGEnvironment
from test_env_differential import (
    legal_action_sets,
    random_built_kg,
    random_frontier,
)

from repro import REKSConfig, REKSTrainer
from repro.core.environment import KGEnvironment
from repro.graphstore import (
    ShardedCSR,
    compact_store,
    full_merge,
    merge_capped,
    shard_boundaries,
)


def random_delta(rng, built, size):
    """Random candidate triples (dups and already-present edges mixed in)."""
    n_ent = built.kg.num_entities
    n_rel = built.kg.num_relations
    heads = rng.integers(0, n_ent, size=size)
    rels = rng.integers(0, n_rel, size=size)
    tails = rng.integers(0, n_ent, size=size)
    return heads, rels, tails


def assert_same_adjacency(sharded: KGEnvironment, mono: KGEnvironment):
    flat_s, flat_m = sharded.flat_tables(), mono.flat_tables()
    for got, want in zip(flat_s, flat_m):
        np.testing.assert_array_equal(np.asarray(got), np.asarray(want))


# ----------------------------------------------------------------------
# Boundaries
# ----------------------------------------------------------------------
class TestShardBoundaries:
    def test_cover_and_monotone(self):
        rng = np.random.default_rng(0)
        degrees = rng.integers(0, 50, size=257)
        for shards in (1, 2, 5, 16, 257, 1000):
            bounds = shard_boundaries(degrees, shards)
            assert bounds[0] == 0 and bounds[-1] == degrees.size
            assert (np.diff(bounds) > 0).all()
            assert len(bounds) - 1 <= max(shards, 1)

    def test_edge_mass_balanced(self):
        # One mega-hub: the cut must isolate it rather than splitting
        # entities evenly.
        degrees = np.ones(100, dtype=np.int64)
        degrees[0] = 1000
        bounds = shard_boundaries(degrees, 4)
        # The hub's shard ends almost immediately; the rest of the
        # entity space is spread over the remaining shards.
        assert bounds[1] <= 5

    def test_edgeless_graph_splits_by_entity(self):
        bounds = shard_boundaries(np.zeros(64, dtype=np.int64), 4)
        assert bounds[0] == 0 and bounds[-1] == 64
        assert (np.diff(bounds) > 0).all()


# ----------------------------------------------------------------------
# Store-level invariants
# ----------------------------------------------------------------------
class TestShardedStore:
    def _store(self, rng, shards):
        degrees = rng.integers(0, 9, size=40).astype(np.int64)
        edges = int(degrees.sum())
        rels = rng.integers(0, 3, size=edges)
        tails = rng.integers(0, 40, size=edges)
        return ShardedCSR.build(degrees, rels, tails, num_shards=shards), \
            (degrees, rels, tails)

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_build_round_trips_flat(self, shards):
        rng = np.random.default_rng(shards)
        store, (degrees, rels, tails) = self._store(rng, shards)
        flat = store.to_flat()
        np.testing.assert_array_equal(flat.degrees,
                                      degrees.astype(np.int32))
        np.testing.assert_array_equal(flat.rels[1:],
                                      rels.astype(np.int32))
        np.testing.assert_array_equal(flat.tails[1:],
                                      tails.astype(np.int32))
        assert store.num_edges == rels.size

    def test_digest_stable_and_shard_cached(self):
        rng = np.random.default_rng(5)
        store, raw = self._store(rng, 4)
        again = ShardedCSR.build(*raw, num_shards=4)
        assert store.digest() == again.digest()
        # replace_shards keeps clean shards' digest objects (cached —
        # unchanged shards hash for free).
        fresh = store.replace_shards({})
        assert fresh.shards[1] is store.shards[1]
        assert fresh.shards[1]._digest == store.shards[1]._digest

    def test_replace_shards_rejects_range_mismatch(self):
        rng = np.random.default_rng(6)
        store, _ = self._store(rng, 4)
        wrong = store.shards[1]
        with pytest.raises(ValueError, match="covers"):
            store.replace_shards({0: wrong})

    def test_epochs_bump_only_on_dirty_shards(self):
        rng = np.random.default_rng(7)
        store, _ = self._store(rng, 4)
        heads = np.array([int(store.boundaries[0])], dtype=np.int64)
        staged = {0: (heads, np.zeros(1, np.int64), np.ones(1, np.int64))}
        new_store, updates = compact_store(store, staged, action_cap=50)
        assert set(updates) == {0}
        assert new_store.shards[0].epoch == store.shards[0].epoch + 1
        for sid in range(1, 4):
            assert new_store.shards[sid] is store.shards[sid]

    def test_degrees_lazy_and_replace_does_not_materialize(self):
        """replace_shards must not pay the O(entities) global-degrees
        copy: the fresh facade starts unmaterialized and re-concats
        only when something actually reads degrees through it."""
        rng = np.random.default_rng(8)
        store, (degrees, _, _) = self._store(rng, 4)
        assert store._degrees is None  # built lazy
        heads = np.array([int(store.boundaries[0])], dtype=np.int64)
        staged = {0: (heads, np.zeros(1, np.int64),
                      np.ones(1, np.int64))}
        new_store, _ = compact_store(store, staged, action_cap=50)
        assert new_store._degrees is None
        _ = new_store.nbytes  # introspection must not force the concat
        assert new_store._degrees is None
        got = new_store.degrees  # first real read materializes
        assert new_store._degrees is not None
        assert new_store.degrees is got  # cached
        # Content: concatenation of the (possibly rebuilt) shards.
        np.testing.assert_array_equal(
            got, np.concatenate([s.tables.degrees
                                 for s in new_store.shards]))
        # Clean-shard ranges agree with the original degrees.
        lo, hi = int(store.boundaries[1]), int(store.boundaries[-1])
        np.testing.assert_array_equal(got[lo:hi],
                                      degrees[lo:hi].astype(np.int32))

    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_scattered_gather_matches_monolithic(self, shards):
        """gather_into on a frontier scattered across every shard must
        match the S=1 store cell for cell (the shard-major grouped path
        against the monolithic single gather)."""
        rng = np.random.default_rng(100 + shards)
        store, raw = self._store(rng, shards)
        mono = ShardedCSR.build(*raw, num_shards=1)
        assert store.num_shards > 1
        degrees = store.degrees
        candidates = np.flatnonzero(degrees > 0)
        for trial in range(3):
            n = int(rng.integers(3, 33))
            entities = rng.choice(candidates, size=n,
                                  replace=True).astype(np.int64)
            width = int(degrees[entities].max()) + int(rng.integers(0, 3))
            cols = np.arange(width, dtype=np.int32)
            mask = cols[None, :] < degrees[entities][:, None]
            grids = []
            for variant in (store, mono):
                idx = np.empty((n, width), dtype=np.int32)
                rels = np.full((n, width), -1, dtype=np.int32)
                tails = np.full((n, width), -1, dtype=np.int32)
                variant.gather_into(entities, cols, mask, idx,
                                    rels, tails)
                grids.append((rels, tails))
            np.testing.assert_array_equal(grids[0][0], grids[1][0])
            np.testing.assert_array_equal(grids[0][1], grids[1][1])


# ----------------------------------------------------------------------
# Monolithic vs sharded differential (random delta streams)
# ----------------------------------------------------------------------
class TestMonoShardedDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 8])
    def test_delta_stream_interleavings(self, shards):
        """stage / compact / query interleavings agree with S=1 at
        every step, and the final compacted adjacency is identical."""
        rng = np.random.default_rng(100 + shards)
        built = random_built_kg(rng, n_items=16, n_other=8, n_edges=250,
                                hub_degree=40)
        cap = 12
        mono = KGEnvironment(built, action_cap=cap, seed=3, shards=1)
        shard_env = KGEnvironment(built, action_cap=cap, seed=3,
                                  shards=shards)
        assert shard_env.num_shards == (shards if shards == 1
                                        else shard_env.num_shards)
        assert_same_adjacency(shard_env, mono)
        for step in range(6):
            heads, rels, tails = random_delta(rng, built,
                                              rng.integers(1, 40))
            got = shard_env.stage_edges(heads, rels, tails)
            want = mono.stage_edges(heads, rels, tails)
            assert got == want
            assert shard_env.staged_edges == mono.staged_edges
            entities, visited = random_frontier(rng, built,
                                                rng.integers(1, 48), 2)
            got_grid = shard_env.batched_actions(entities, visited)
            want_grid = mono.batched_actions(entities, visited)
            assert legal_action_sets(*got_grid) \
                == legal_action_sets(*want_grid)
            if step % 2 == 1:
                assert shard_env.compact() == mono.compact()
                assert_same_adjacency(shard_env, mono)
        shard_env.compact(), mono.compact()
        assert_same_adjacency(shard_env, mono)
        for entity in range(built.kg.num_entities):
            got_r, got_t = shard_env.actions_of(entity)
            want_r, want_t = mono.actions_of(entity)
            np.testing.assert_array_equal(np.asarray(got_r),
                                          np.asarray(want_r))
            np.testing.assert_array_equal(np.asarray(got_t),
                                          np.asarray(want_t))

    def test_sharded_env_matches_reference_oracle(self):
        """The loop-based oracle still agrees with a many-shard env
        (same rng seed => exact array equality, not just set)."""
        rng = np.random.default_rng(17)
        built = random_built_kg(rng, n_edges=300, hub_degree=60)
        cap = 20
        env = KGEnvironment(built, action_cap=cap, seed=4, shards=6)
        ref = ReferenceKGEnvironment(built, action_cap=cap, seed=4)
        for _ in range(4):
            entities, visited = random_frontier(rng, built,
                                                rng.integers(1, 64), 3)
            got = env.batched_actions(entities, visited)
            want = ref.batched_actions(entities, visited)
            assert got[0].shape == want[0].shape
            for g, w in zip(got, want):
                np.testing.assert_array_equal(np.asarray(g), w)

    def test_vectorized_staging_preserves_sequential_semantics(self):
        """In-batch duplicates collapse to the first occurrence and the
        at-cap drop keeps staging order — the vectorized dedup must be
        indistinguishable from the old per-edge loop."""
        rng = np.random.default_rng(23)
        built = random_built_kg(rng, n_edges=60, dead_ends=2)
        env = KGEnvironment(built, action_cap=5, seed=0, shards=3)
        head = next(e for e in range(built.kg.num_entities)
                    if env.degree(e) == 0)
        tails = [(head + 1 + i) % built.kg.num_entities for i in range(8)]
        heads = [head] * 8
        rels = [0] * 8
        # Duplicate the 2nd edge in-batch: 8 candidates, 7 distinct,
        # cap 5 => exactly 5 staged, in input order.
        heads.insert(3, head), rels.insert(3, 0), tails.insert(3, tails[1])
        staged = env.stage_edges(heads, rels, tails)
        assert staged == 5
        got_r, got_t = env.actions_of(head)
        # First five *distinct* tails in input order (index 3 is the
        # in-batch duplicate, collapsed onto its first occurrence).
        distinct = [t for i, t in enumerate(tails) if i != 3]
        assert list(got_t) == distinct[:5]
        # Re-staging the same batch is a full dedup no-op.
        assert env.stage_edges(heads, rels, tails) == 0
        # After compaction the base holds them; still duplicates.
        env.compact()
        assert env.stage_edges(heads, rels, tails) == 0

    def test_fingerprint_deterministic_per_layout(self):
        """Same content + same shard layout => same fingerprint across
        independent processes/builds; staging and compaction re-key it.
        (The fingerprint is deliberately layout-scoped — re-sharding
        re-keys it, conservatively; see KGEnvironment.fingerprint —
        so cross-layout identity goes through flat_tables instead.)"""
        rng = np.random.default_rng(29)
        built = random_built_kg(rng, n_edges=200)
        env_a = KGEnvironment(built, action_cap=10, seed=1, shards=4)
        env_b = KGEnvironment(built, action_cap=10, seed=1, shards=4)
        assert env_a.fingerprint() == env_b.fingerprint()
        mono = KGEnvironment(built, action_cap=10, seed=1, shards=1)
        for got, want in zip(mono.flat_tables(), env_a.flat_tables()):
            np.testing.assert_array_equal(np.asarray(got),
                                          np.asarray(want))
        before = env_a.fingerprint()
        heads, rels, tails = random_delta(rng, built, 10)
        if env_a.stage_edges(heads, rels, tails):
            assert env_a.fingerprint() != before  # staged count counts
            env_a.compact()
            assert env_a.fingerprint() != before


# ----------------------------------------------------------------------
# Hypothesis: per-shard compaction == full rebuild
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), shards=st.integers(1, 9),
       cap=st.sampled_from([1, 3, 8, 1000]))
def test_property_shard_compaction_equals_full_rebuild(seed, shards, cap):
    rng = np.random.default_rng(seed)
    n_ent = int(rng.integers(4, 60))
    degrees = rng.integers(0, 7, size=n_ent).astype(np.int64)
    degrees = np.minimum(degrees, cap)
    edges = int(degrees.sum())
    rels = rng.integers(0, 4, size=edges)
    tails = rng.integers(0, n_ent, size=edges)
    store = ShardedCSR.build(degrees, rels, tails, num_shards=shards)

    n_delta = int(rng.integers(1, 30))
    d_heads = rng.integers(0, n_ent, size=n_delta)
    d_rels = rng.integers(0, 4, size=n_delta)
    d_tails = rng.integers(0, n_ent, size=n_delta)

    # Route the delta through the per-shard path...
    staged = {}
    sid_of = store.shard_of(d_heads)
    for sid in np.unique(sid_of):
        rows = sid_of == sid
        staged[int(sid)] = (d_heads[rows], d_rels[rows], d_tails[rows])
    sharded, _ = compact_store(store, staged, action_cap=cap)

    # ...and through the monolithic full rebuild.
    # (full_merge concatenates per-head; group the delta by head first
    # the same way the overlay does — staging order within a head.)
    order = np.argsort(d_heads, kind="stable")
    f_deg, f_rels, f_tails = full_merge(
        store, d_heads[order], d_rels[order], d_tails[order], cap)

    flat = sharded.to_flat()
    np.testing.assert_array_equal(flat.degrees, f_deg.astype(np.int32))
    np.testing.assert_array_equal(flat.rels[1:], f_rels.astype(np.int32))
    np.testing.assert_array_equal(flat.tails[1:],
                                  f_tails.astype(np.int32))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_merge_capped_is_base_first(seed):
    """Every head keeps its base edges (up to the cap) ahead of extras."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 20))
    base_deg = rng.integers(0, 5, size=n).astype(np.int64)
    edges = int(base_deg.sum())
    base_rels = rng.integers(0, 3, size=edges)
    base_tails = rng.integers(0, n, size=edges)
    extra = int(rng.integers(0, 15))
    cap = int(rng.integers(1, 8))
    base_deg = np.minimum(base_deg, cap)
    edges = int(base_deg.sum())
    base_rels, base_tails = base_rels[:edges], base_tails[:edges]
    deg, rels, tails = merge_capped(
        n, base_deg, base_rels, base_tails,
        rng.integers(0, n, size=extra), rng.integers(0, 3, size=extra),
        rng.integers(0, n, size=extra), cap)
    assert deg.max(initial=0) <= cap
    indptr = np.concatenate([[0], np.cumsum(deg)])
    base_ptr = np.concatenate([[0], np.cumsum(base_deg)])
    for head in range(n):
        kept = min(int(base_deg[head]), cap)
        lo, hi = base_ptr[head], base_ptr[head] + kept
        np.testing.assert_array_equal(
            rels[indptr[head]:indptr[head] + kept], base_rels[lo:hi])
        np.testing.assert_array_equal(
            tails[indptr[head]:indptr[head] + kept], base_tails[lo:hi])


# ----------------------------------------------------------------------
# Delta publish: only dirty shards travel
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    # graph_shards pinned: the tiny fixture KG is below the auto
    # heuristic's sharding threshold, and the delta-publish tests need
    # shards to diff.
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        graph_shards=8, seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


def _fresh_edges_in_shard(env, built, sid, count=4):
    """(heads, rels, tails) new co_occur edges whose heads live in
    shard ``sid`` and have room under the action cap."""
    co_occur = built.kg.relation_id("co_occur")
    store = env.csr_tables()
    lo, hi = int(store.boundaries[sid]), int(store.boundaries[sid + 1])
    heads, tails = [], []
    for head in range(lo, hi):
        if env.degree(head) >= env.action_cap - 1:
            continue
        _, existing = env.actions_of(head)
        for tail in range(built.kg.num_entities - 1, -1, -1):
            if tail != head and tail not in existing:
                heads.append(head)
                tails.append(tail)
                break
        if len(heads) >= count:
            break
    return heads, [co_occur] * len(heads), tails


class TestDeltaPublish:
    def test_publish_ships_only_dirty_shards(self, trainer, beauty_kg):
        from repro.runtime import ProcessWorkerPool

        env = trainer.env
        assert env.num_shards >= 2, "fixture KG must shard for this test"
        sid = 0
        heads, rels, tails = _fresh_edges_in_shard(env, beauty_kg, sid)
        assert heads, "no under-cap head found in shard 0"
        with ProcessWorkerPool(trainer.agent, workers=1) as pool:
            before = pool.shard_manifests()
            total_bytes = sum(p.nbytes
                              for p in pool._csr_planes.values())
            env.stage_edges(heads, rels, tails)
            pool.stage_edges(heads, rels, tails)
            assert env.compact() == len(heads)
            key = pool.publish_tables(env)
            assert key == env.fingerprint()
            # Manifest inspection: exactly the dirty shard re-exported.
            after = pool.shard_manifests()
            assert pool.last_publish["shards"] == [sid]
            assert after[sid].segment != before[sid].segment
            assert after[sid].shard_ids() == (sid,)
            for other in after:
                if other != sid:
                    assert after[other] is before[other]
            # ...and only its bytes were published.
            assert pool.last_publish["nbytes"] \
                == pool._csr_planes[sid].nbytes < total_bytes
            # A second publish with nothing new is a no-op.
            generation = pool.generation
            assert pool.publish_tables(env) == key
            assert pool.generation == generation

    def test_rankings_identical_after_delta_attach(self, trainer,
                                                   beauty_kg,
                                                   beauty_tiny):
        sessions = [s for s in beauty_tiny.split.test
                    if len(s.items) >= 2][:8]
        env = trainer.env
        heads, rels, tails = _fresh_edges_in_shard(env, beauty_kg, 1,
                                                   count=3)
        assert heads
        with trainer.serve(worker_mode="process", workers=2,
                           cache_size=0) as proc, \
                trainer.serve(worker_mode="thread", workers=2,
                              cache_size=0) as thread:
            thread.stage_edges(heads, rels, tails)
            proc.stage_edges(heads, rels, tails)
            env.compact()
            proc.refresh_tables()
            assert proc.process_pool.last_publish["shards"] == [1]
            got = [r.items for r in proc.recommend_many(sessions, k=5)]
            want = [r.items for r in thread.recommend_many(sessions, k=5)]
            assert got == want

    def test_partial_attach_keeps_clean_shard_overlay(self, trainer,
                                                      beauty_kg):
        """attach_shards drops only the replaced shards' overlay slices
        and replays the shipped staged edges — the per-shard staged
        snapshot contract a delta-attaching worker relies on."""
        config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                            graph_shards=8, seed=0)
        private = REKSTrainer(trainer.dataset, beauty_kg,
                              model_name="narm", config=config,
                              transe=trainer.transe)
        env = private.env
        h0, r0, t0 = _fresh_edges_in_shard(env, beauty_kg, 0, count=2)
        h1, r1, t1 = _fresh_edges_in_shard(env, beauty_kg, 1, count=2)
        assert h0 and h1
        env.stage_edges(h0 + h1, r0 + r1, t0 + t1)
        by_shard = env.staged_by_shard()
        assert set(by_shard) == {0, 1}
        assert env.staged_counts_by_shard() == {0: len(h0), 1: len(h1)}
        # Replace shard 0 with a publisher-compacted generation.
        donor = KGEnvironment(beauty_kg, action_cap=env.action_cap,
                              seed=config.seed + 3,
                              shards=env.num_shards)
        donor.stage_edges(h0, r0, t0)
        donor.compact()
        update = {0: donor.csr_tables().shards[0]}
        env.attach_shards(update, staged=None)
        # Shard-0 overlay dropped (now in the base), shard-1 kept.
        assert env.staged_counts_by_shard() == {1: len(h1)}
        rels, tails = env.actions_of(h0[0])
        assert t0[0] in list(tails)  # served from the new base
        rels, tails = env.actions_of(h1[0])
        assert t1[0] in list(tails)  # still served from the overlay
