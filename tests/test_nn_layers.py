"""Unit tests for Linear, MLP, Embedding, LayerNorm, Dropout layers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor

from helpers import assert_grad_close, make_tensor


class TestLinear:
    def test_output_shape_2d_and_3d(self, rng):
        layer = nn.Linear(4, 6, rng=rng)
        assert layer(Tensor(np.ones((2, 4), dtype=np.float32))).shape == (2, 6)
        assert layer(Tensor(np.ones((2, 3, 4), dtype=np.float32))).shape == (2, 3, 6)

    def test_matches_manual_affine(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        out = layer(Tensor(x))
        manual = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, manual, rtol=1e-5)

    def test_no_bias(self, rng):
        layer = nn.Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        layer.weight.data = layer.weight.data.astype(np.float64)
        layer.bias.data = layer.bias.data.astype(np.float64)
        x = make_tensor(rng, 4, 3, requires_grad=False)
        assert_grad_close(lambda: layer(x).sum(),
                          [layer.weight, layer.bias])


class TestMLP:
    def test_needs_two_sizes(self, rng):
        with pytest.raises(ValueError):
            nn.MLP([4], rng=rng)

    def test_hidden_activation_applied(self, rng):
        mlp = nn.MLP([3, 5, 2], rng=rng)
        out = mlp(Tensor(np.ones((2, 3), dtype=np.float32)))
        assert out.shape == (2, 2)

    def test_final_activation_flag(self, rng):
        mlp = nn.MLP([3, 2], final_activation=True, rng=rng)
        out = mlp(Tensor(-100 * np.ones((1, 3), dtype=np.float32)))
        assert (out.data >= 0).all()  # relu clamps the output


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_padding_row_zeroed(self, rng):
        emb = nn.Embedding(10, 4, padding_idx=0, rng=rng)
        np.testing.assert_allclose(emb(np.array([0])).data, np.zeros((1, 4)))

    def test_out_of_range_raises(self, rng):
        emb = nn.Embedding(5, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatter(self, rng):
        emb = nn.Embedding(6, 3, rng=rng)
        emb.weight.data = emb.weight.data.astype(np.float64)
        idx = np.array([2, 2, 5])
        assert_grad_close(lambda: emb(idx).sum(), [emb.weight])

    def test_from_pretrained(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        emb = nn.Embedding.from_pretrained(table, trainable=False)
        np.testing.assert_allclose(emb(np.array([2])).data, table[2:3])
        assert not emb.weight.requires_grad

    def test_zero_padding_after_update(self, rng):
        emb = nn.Embedding(4, 2, padding_idx=0, rng=rng)
        emb.weight.data += 1.0
        emb.zero_padding()
        np.testing.assert_allclose(emb.weight.data[0], [0.0, 0.0])

    def test_index_dtype_preserved_int32(self):
        """int32 lookups must not be upcast to int64 per call."""
        from repro.nn.embedding import coerce_indices

        idx32 = np.array([1, 2, 3], dtype=np.int32)
        out = coerce_indices(idx32, detach=False)
        assert out.dtype == np.int32
        assert out is idx32  # zero-copy on the inference path
        detached = coerce_indices(idx32, detach=True)
        assert detached.dtype == np.int32
        assert detached is not idx32  # tape-safe copy, same width
        assert coerce_indices(np.array([1.0, 2.0]),
                              detach=False).dtype == np.int64

    def test_frozen_table_lookup_keeps_int32_view(self, rng):
        """A frozen table under no_grad gathers straight from the
        int32 view — same values as an int64 lookup, no upcast."""
        from repro.autograd import no_grad

        table = rng.standard_normal((8, 3)).astype(np.float32)
        emb = nn.Embedding.from_pretrained(table, trainable=False)
        idx32 = np.array([[0, 5], [7, 1]], dtype=np.int32)
        with no_grad():
            out32 = emb(idx32)
        out64 = emb(idx32.astype(np.int64))
        np.testing.assert_array_equal(out32.data, out64.data)

    def test_trainable_int32_lookup_backward_matches_int64(self, rng):
        emb = nn.Embedding(6, 3, rng=rng)
        idx32 = np.array([2, 2, 5], dtype=np.int32)
        emb(idx32).sum().backward()
        grad32 = emb.weight.grad.copy()
        emb.weight.zero_grad()
        emb(idx32.astype(np.int64)).sum().backward()
        np.testing.assert_array_equal(grad32, emb.weight.grad)


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        ln = nn.LayerNorm(8)
        x = Tensor(rng.standard_normal((4, 8)) * 10 + 3, dtype=np.float32)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_affine_parameters(self):
        ln = nn.LayerNorm(4)
        ln.gain.data[...] = 2.0
        ln.bias.data[...] = 1.0
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4)),
                   dtype=np.float32)
        out = ln(x).data
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_gradients(self, rng):
        ln = nn.LayerNorm(5)
        ln.gain.data = ln.gain.data.astype(np.float64)
        ln.bias.data = ln.bias.data.astype(np.float64)
        x = make_tensor(rng, 3, 5, requires_grad=False)
        assert_grad_close(lambda: (ln(x) * ln(x)).sum(),
                          [ln.gain, ln.bias], rtol=2e-2)


class TestDropoutLayer:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_eval_identity(self, rng):
        drop = nn.Dropout(0.9, rng=rng)
        drop.eval()
        x = Tensor(np.ones(100, dtype=np.float32))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_train_zeroes_some(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones(1000, dtype=np.float32))
        out = drop(x).data
        assert (out == 0).sum() > 300
        assert (out > 1.0).any()  # kept values are scaled up
