"""Unit tests for the FGNN extension encoder."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import REKSConfig, REKSTrainer
from repro.data.loader import SessionBatcher
from repro.data.schema import Session
from repro.models import create_encoder
from repro.models.fgnn import FGNN, WeightedGraphAttention


@pytest.fixture()
def batch():
    sessions = [Session([1, 2, 3, 2], 0, 0), Session([4, 5], 1, 0)]
    return next(iter(SessionBatcher(sessions, batch_size=4, shuffle=False)))


class TestWGATLayer:
    def test_shape_preserved(self, rng):
        layer = WeightedGraphAttention(6, rng=rng)
        hidden = Tensor(rng.standard_normal((2, 3, 6)).astype(np.float32))
        adjacency = rng.random((2, 3, 3)).astype(np.float32)
        node_mask = np.ones((2, 3), dtype=np.float32)
        assert layer(hidden, adjacency, node_mask).shape == (2, 3, 6)

    def test_isolated_node_keeps_self_attention(self, rng):
        layer = WeightedGraphAttention(4, rng=rng)
        hidden = Tensor(rng.standard_normal((1, 2, 4)).astype(np.float32))
        adjacency = np.zeros((1, 2, 2), dtype=np.float32)
        node_mask = np.ones((1, 2), dtype=np.float32)
        out = layer(hidden, adjacency, node_mask)
        assert np.isfinite(out.data).all()

    def test_edge_changes_output(self, rng):
        layer = WeightedGraphAttention(4, rng=rng)
        hidden = Tensor(rng.standard_normal((1, 2, 4)).astype(np.float32))
        no_edge = np.zeros((1, 2, 2), dtype=np.float32)
        with_edge = no_edge.copy()
        with_edge[0, 0, 1] = 1.0
        mask = np.ones((1, 2), dtype=np.float32)
        a = layer(hidden, no_edge, mask).data
        b = layer(hidden, with_edge, mask).data
        assert not np.allclose(a[0, 0], b[0, 0])


class TestFGNNEncoder:
    def test_registered(self):
        enc = create_encoder("fgnn", n_items=10, dim=8,
                             rng=np.random.default_rng(0))
        assert isinstance(enc, FGNN)

    def test_encode_shape(self, batch):
        enc = FGNN(n_items=10, dim=8, rng=np.random.default_rng(0))
        assert enc.encode(batch).shape == (2, 8)

    def test_gradients_flow(self, batch):
        enc = FGNN(n_items=10, dim=8, rng=np.random.default_rng(0))
        se, logits = enc(batch)
        logits.sum().backward()
        assert enc.item_embedding.weight.grad is not None
        assert enc.layers[0].transform.weight.grad is not None

    def test_padding_invariance(self):
        enc = FGNN(n_items=10, dim=8, rng=np.random.default_rng(0))
        enc.eval()
        s1 = Session([1, 2, 3], 0, 0)
        s2 = Session([4, 5, 6, 7, 8], 1, 0)
        solo = next(iter(SessionBatcher([s1], batch_size=2, shuffle=False)))
        both = next(iter(SessionBatcher([s1, s2], batch_size=2,
                                        shuffle=False)))
        np.testing.assert_allclose(enc.encode(solo).data[0],
                                   enc.encode(both).data[0],
                                   rtol=1e-4, atol=1e-5)

    def test_reks_wraps_fgnn(self, beauty_tiny, beauty_kg, beauty_transe):
        """The genericity claim: a sixth model plugs in unchanged."""
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=64,
                         action_cap=40, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="fgnn",
                              config=cfg, transe=beauty_transe)
        history = trainer.fit()
        assert np.isfinite(history.losses[0])
        metrics = trainer.evaluate(beauty_tiny.split.test[:20], ks=(10,))
        assert 0.0 <= metrics["HR@10"] <= 100.0
