"""Integration tests for the REKS trainer and explainer."""

import numpy as np
import pytest

from repro.core import Explainer, REKSConfig, REKSTrainer


@pytest.fixture(scope="module")
def fitted(beauty_tiny, beauty_kg, beauty_transe):
    cfg = REKSConfig(dim=16, state_dim=16, epochs=3, batch_size=64,
                     lr=2e-3, action_cap=60, patience=5, seed=1)
    trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                          config=cfg, transe=beauty_transe)
    trainer.fit()
    return trainer


class TestFit:
    def test_history_populated(self, fitted):
        h = fitted.history
        assert len(h.losses) >= 1
        assert len(h.val_metrics) == len(h.losses)
        assert h.best_epoch >= 0

    def test_beats_random_on_test(self, fitted, beauty_tiny):
        metrics = fitted.evaluate(beauty_tiny.split.test, ks=(10,))
        random_hr = 100.0 * 10 / beauty_tiny.n_items
        assert metrics["HR@10"] > 2 * random_hr

    def test_dim_mismatch_paper_constraint(self, beauty_tiny, beauty_kg,
                                           beauty_transe):
        """d0 (TransE) and d1 (encoder) must match; a mismatched TransE
        is rejected at item-init time."""
        cfg = REKSConfig(dim=32, state_dim=32, epochs=1, seed=0)
        with pytest.raises(ValueError):
            REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                        config=cfg, transe=beauty_transe)  # transe dim 16

    def test_evaluate_empty(self, fitted):
        metrics = fitted.evaluate([], ks=(5,))
        assert metrics["HR@5"] == 0.0


class TestModelsPlugIn:
    @pytest.mark.parametrize("name", ["gru4rec", "srgnn", "bert4rec"])
    def test_one_epoch_runs(self, name, beauty_tiny, beauty_kg,
                            beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=64,
                         action_cap=40, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name=name,
                              config=cfg, transe=beauty_transe)
        history = trainer.fit()
        assert len(history.losses) == 1
        assert np.isfinite(history.losses[0])


class TestExplainer:
    def test_cases_structure(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        cases = explainer.explain_sessions(beauty_tiny.split.test[:4], k=3)
        assert len(cases) == 4
        for case in cases:
            assert case.session_items
            assert 1 <= case.target <= beauty_tiny.n_items
            for rec in case.recommendations:
                assert rec.score > 0
                if rec.path is not None:
                    assert 0.0 <= rec.relevance <= 1.0

    def test_paths_terminate_at_recommended_item(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        cases = explainer.explain_sessions(beauty_tiny.split.test[:4], k=3)
        for case in cases:
            for rec in case.recommendations:
                if rec.path is not None:
                    terminal_item = fitted.built.items_of_entities(
                        np.array([rec.path.terminal]))[0]
                    assert terminal_item == rec.item

    def test_paths_start_at_last_session_item(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        cases = explainer.explain_sessions(beauty_tiny.split.test[:4], k=3)
        for case in cases:
            last = case.session_items[-1]
            start_entity = fitted.built.item_entity[last]
            for rec in case.recommendations:
                if rec.path is not None:
                    assert rec.path.entities[0] == start_entity

    def test_render_case_text(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        case = explainer.explain_sessions(beauty_tiny.split.test[:1], k=2)[0]
        text = explainer.render_case(case)
        assert "session:" in text
        assert "ground truth:" in text
        if case.recommendations and case.recommendations[0].path:
            assert "-->" in text

    def test_hit_property(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        cases = explainer.explain_sessions(beauty_tiny.split.test[:10], k=5)
        assert any(c.hit for c in cases)  # the model does hit sometimes
