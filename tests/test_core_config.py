"""Unit tests for REKSConfig validation and ablation presets."""

import pytest

from repro.core.config import REKSConfig


class TestValidation:
    def test_defaults_follow_paper(self):
        cfg = REKSConfig()
        assert cfg.path_length == 2
        assert cfg.sample_sizes == (100, 1)
        assert cfg.gamma == 0.99
        assert cfg.reward_weights == (1.0, 2.0, 1.0)

    def test_bad_reward_mode(self):
        with pytest.raises(ValueError):
            REKSConfig(reward_mode="bogus")

    def test_bad_loss_mode(self):
        with pytest.raises(ValueError):
            REKSConfig(loss_mode="bogus")

    def test_bad_start(self):
        with pytest.raises(ValueError):
            REKSConfig(start_from="middle_item")

    def test_sample_sizes_must_match_path_length(self):
        with pytest.raises(ValueError):
            REKSConfig(path_length=3, sample_sizes=(100, 1))

    def test_bad_selection(self):
        with pytest.raises(ValueError):
            REKSConfig(train_selection="greedy")

    def test_frontier_buckets_default_off(self):
        assert REKSConfig().frontier_buckets == 1

    def test_bad_frontier_buckets(self):
        with pytest.raises(ValueError):
            REKSConfig(frontier_buckets=0)


class TestAblationPresets:
    def test_loss_variants(self):
        assert REKSConfig.for_ablation("reks_r").loss_mode == "reward_only"
        assert REKSConfig.for_ablation("reks_c").loss_mode == "ce_only"

    def test_reward_variants(self):
        assert REKSConfig.for_ablation("reks_r1").reward_mode == "r1"
        assert REKSConfig.for_ablation("reks-path").reward_mode == "item_only"
        assert REKSConfig.for_ablation("reks-rank").reward_mode == "no_rank"

    def test_user_start_uses_paper_settings(self):
        cfg = REKSConfig.for_ablation("reks_user")
        assert cfg.start_from == "user"
        assert cfg.path_length == 3
        assert cfg.sample_sizes == (100, 10, 1)

    def test_path_length_variants(self):
        assert REKSConfig.for_ablation("reks_l3").sample_sizes == (100, 1, 1)
        assert REKSConfig.for_ablation("reks_l4").sample_sizes == (100, 1, 1, 1)

    def test_overrides_apply(self):
        cfg = REKSConfig.for_ablation("reks", dim=16, beta=0.8)
        assert cfg.dim == 16
        assert cfg.beta == 0.8

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            REKSConfig.for_ablation("reks_unknown")
