"""Unit and integration tests for the REKS agent (walk, ŷ, losses)."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import REKSConfig, REKSTrainer
from repro.data.loader import SessionBatcher


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=32,
                     action_cap=60, seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                       config=cfg, transe=beauty_transe)


@pytest.fixture()
def batch(beauty_tiny, trainer):
    batcher = SessionBatcher(beauty_tiny.split.train, batch_size=16,
                             shuffle=False)
    return next(iter(batcher))


class TestWalk:
    def test_paths_are_real_kg_edges(self, trainer, batch, beauty_kg):
        with no_grad():
            se = trainer.encoder.encode(batch)
            rollout = trainer.agent.walk(se, batch)
        kg = beauty_kg.kg
        for p in range(min(rollout.num_paths, 50)):
            ents = rollout.entities[p]
            rels = rollout.relations[p]
            for h, r, t in zip(ents[:-1], rels, ents[1:]):
                assert kg.has_edge(int(h), int(r), int(t)), \
                    f"path used non-edge ({h}, {r}, {t})"

    def test_paths_are_simple(self, trainer, batch):
        with no_grad():
            se = trainer.encoder.encode(batch)
            rollout = trainer.agent.walk(se, batch)
        for p in range(rollout.num_paths):
            ents = rollout.entities[p].tolist()
            assert len(set(ents)) == len(ents)

    def test_paths_start_at_last_item(self, trainer, batch, beauty_kg):
        with no_grad():
            se = trainer.encoder.encode(batch)
            rollout = trainer.agent.walk(se, batch)
        starts = beauty_kg.item_entity[batch.last_items]
        np.testing.assert_array_equal(
            rollout.entities[:, 0], starts[rollout.session_idx])

    def test_hop_count_matches_config(self, trainer, batch):
        with no_grad():
            se = trainer.encoder.encode(batch)
            rollout = trainer.agent.walk(se, batch)
        assert rollout.entities.shape[1] == 3  # path_length 2 -> 3 nodes
        assert rollout.relations.shape[1] == 2

    def test_probabilities_valid(self, trainer, batch):
        with no_grad():
            se = trainer.encoder.encode(batch)
            rollout = trainer.agent.walk(se, batch)
        assert (rollout.prob > 0).all()
        assert (rollout.prob <= 1.0 + 1e-6).all()

    def test_per_session_mass_at_most_one(self, trainer, batch):
        with no_grad():
            se = trainer.encoder.encode(batch)
            rollout = trainer.agent.walk(se, batch)
        mass = np.bincount(rollout.session_idx, weights=rollout.prob,
                           minlength=batch.batch_size)
        assert (mass <= 1.0 + 1e-4).all()

    def test_custom_sizes(self, trainer, batch):
        with no_grad():
            se = trainer.encoder.encode(batch)
            rollout = trainer.agent.walk(se, batch, sizes=(5, 2))
        per_session = np.bincount(rollout.session_idx,
                                  minlength=batch.batch_size)
        assert per_session.max() <= 10


class TestAggregation:
    def test_tensor_and_numpy_agree(self, trainer, batch):
        se = trainer.encoder.encode(batch)
        rollout = trainer.agent.walk(se, batch)
        dense = trainer.agent.aggregate_scores(rollout, batch.batch_size)
        dense_np = trainer.agent.aggregate_scores_numpy(
            rollout, batch.batch_size)
        got = dense.data.copy()
        got[:, 0] = 0.0
        np.testing.assert_allclose(got, dense_np, rtol=1e-4, atol=1e-6)

    def test_tensor_mode_requires_log_prob(self, trainer, batch):
        from repro.core.environment import Rollout

        stripped = Rollout(session_idx=np.zeros(1, dtype=np.int64),
                           entities=np.zeros((1, 3), dtype=np.int64),
                           relations=np.zeros((1, 2), dtype=np.int64),
                           prob=np.ones(1), log_prob=None)
        with pytest.raises(RuntimeError):
            trainer.agent.aggregate_scores(stripped, 1)


class TestLosses:
    def test_losses_finite_and_backward(self, trainer, batch):
        trainer.agent.train()
        loss, stats = trainer.agent.losses(batch)
        assert np.isfinite(stats.loss)
        assert np.isfinite(stats.reward_loss)
        assert np.isfinite(stats.ce_loss)
        loss.backward()
        grads = [p for p in trainer.agent.parameters() if p.grad is not None]
        assert grads, "no parameter received a gradient"

    def test_encoder_receives_gradient(self, trainer, batch):
        trainer.agent.zero_grad()
        trainer.agent.train()
        loss, _ = trainer.agent.losses(batch)
        loss.backward()
        assert trainer.encoder.item_embedding.weight.grad is not None

    def test_reward_components_reported(self, trainer, batch):
        _, stats = trainer.agent.losses(batch)
        assert set(stats.reward_components) == {"item", "rank", "path"}
        assert stats.num_paths > 0

    def test_loss_modes(self, beauty_tiny, beauty_kg, beauty_transe, batch):
        outs = {}
        for mode in ("joint", "reward_only", "ce_only"):
            cfg = REKSConfig(dim=16, state_dim=16, epochs=1, seed=0,
                             action_cap=60, loss_mode=mode)
            t = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                            config=cfg, transe=beauty_transe)
            loss, stats = t.agent.losses(batch)
            outs[mode] = (float(loss.item()), stats)
        joint_loss = outs["joint"][0]
        expected = (0.2 * outs["joint"][1].reward_loss
                    + outs["joint"][1].ce_loss)
        assert joint_loss == pytest.approx(expected, rel=1e-4)


class TestRecommend:
    def test_output_shapes(self, trainer, batch):
        rec = trainer.agent.recommend(batch, k=10)
        assert rec.scores.shape == (batch.batch_size,
                                    trainer.dataset.n_items + 1)
        assert rec.ranked_items.shape[0] == batch.batch_size
        assert rec.ranked_items.shape[1] <= 10

    def test_paths_attach_to_recommended_items(self, trainer, batch):
        rec = trainer.agent.recommend(batch, k=5)
        for (row, item), path in rec.paths.items():
            assert path.terminal == trainer.built.item_entity[item]
            assert path.prob > 0

    def test_every_positive_item_has_a_path(self, trainer, batch):
        rec = trainer.agent.recommend(batch, k=5)
        for row in range(batch.batch_size):
            for item in rec.ranked_items[row]:
                item = int(item)
                if item != 0 and rec.scores[row, item] > 0:
                    assert (row, item) in rec.paths

    def test_padding_never_recommended_with_positive_score(self, trainer,
                                                           batch):
        rec = trainer.agent.recommend(batch, k=5)
        assert (rec.scores[:, 0] == 0).all()

    def test_stochastic_selection_differs(self, trainer, batch):
        cfgd = trainer.config
        with no_grad():
            se = trainer.encoder.encode(batch)
            greedy = trainer.agent.walk(se, batch, sizes=(3, 1))
            trainer.agent.train()
            stoch = trainer.agent.walk(se, batch, sizes=(3, 1),
                                       stochastic=True)
            trainer.agent.eval()
        assert (greedy.entities.shape != stoch.entities.shape
                or not np.array_equal(greedy.entities, stoch.entities))
