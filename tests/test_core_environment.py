"""Unit tests for the KG environment (action spaces, starts, capping)."""

import numpy as np
import pytest

from repro.core.environment import KGEnvironment
from repro.data.loader import SessionBatcher
from repro.data.schema import Session


@pytest.fixture(scope="module")
def env(beauty_kg):
    return KGEnvironment(beauty_kg, action_cap=50, seed=0)


class TestActionSpaces:
    def test_actions_match_graph_neighbors(self, env, beauty_kg):
        entity = int(beauty_kg.item_entity[1])
        rels, tails = env.actions_of(entity)
        kg_rels, kg_tails = beauty_kg.kg.neighbors(entity)
        kg_pairs = set(zip(kg_rels.tolist(), kg_tails.tolist()))
        assert set(zip(rels.tolist(), tails.tolist())) <= kg_pairs

    def test_cap_enforced(self, beauty_kg):
        env = KGEnvironment(beauty_kg, action_cap=5, seed=0)
        degrees = [env.degree(e) for e in range(beauty_kg.kg.num_entities)]
        assert max(degrees) <= 5

    def test_batched_shapes(self, env, beauty_kg):
        entities = beauty_kg.item_entity[np.array([1, 2, 3])]
        visited = entities[:, None]
        rels, tails, mask = env.batched_actions(entities, visited)
        assert rels.shape == tails.shape == mask.shape
        assert rels.shape[0] == 3

    def test_padded_rows_masked(self, env, beauty_kg):
        entities = beauty_kg.item_entity[np.array([1, 2])]
        visited = entities[:, None]
        _, tails, mask = env.batched_actions(entities, visited)
        for i, entity in enumerate(entities):
            deg = env.degree(int(entity))
            assert not mask[i, deg:].any()

    def test_visited_entities_excluded(self, env, beauty_kg):
        entity = int(beauty_kg.item_entity[1])
        _, tails = env.actions_of(entity)
        first_neighbor = int(tails[0])
        visited = np.array([[entity, first_neighbor]])
        _, batch_tails, mask = env.batched_actions(
            np.array([entity]), visited)
        forbidden = (batch_tails[0] == first_neighbor) & mask[0]
        assert not forbidden.any()

    def test_self_never_in_actions(self, env, beauty_kg):
        entity = int(beauty_kg.item_entity[3])
        visited = np.array([[entity]])
        _, tails, mask = env.batched_actions(np.array([entity]), visited)
        assert not ((tails[0] == entity) & mask[0]).any()

    def test_serving_batch_dedup_memo_matches_plain_rows(self, env,
                                                         beauty_kg):
        """A duplicate-rich micro-batch (the coalesced-serving shape:
        few distinct popular start entities repeated across 32-256
        rows) must produce row-for-row the same grids as a frontier of
        all-distinct entities would — the memo is a pure optimization."""
        distinct = beauty_kg.item_entity[np.array([1, 2, 3, 4])]
        # 64 rows over 4 distinct entities: far below the 2x-entities
        # pigeonhole bound, so only the micro-batch memo dedups this.
        entities = np.tile(distinct, 16)
        visited = entities[:, None]
        rels, tails, mask = env.batched_actions(entities, visited)
        for row in range(0, len(entities), 7):
            one_rels, one_tails, one_mask = env.batched_actions(
                entities[row:row + 1], visited[row:row + 1])
            got = set(zip(rels[row][mask[row]].tolist(),
                          tails[row][mask[row]].tolist()))
            want = set(zip(one_rels[0][one_mask[0]].tolist(),
                           one_tails[0][one_mask[0]].tolist()))
            assert got == want


class TestStartEntities:
    def _batch(self, sessions):
        return next(iter(SessionBatcher(sessions, batch_size=8,
                                        shuffle=False)))

    def test_last_item_start(self, env, beauty_kg):
        batch = self._batch([Session([1, 2, 3], 0, 0)])
        start = env.start_entities(batch, "last_item")
        assert start[0] == beauty_kg.item_entity[2]

    def test_user_start(self, env, beauty_kg):
        batch = self._batch([Session([1, 2, 3], 4, 0)])
        start = env.start_entities(batch, "user")
        assert start[0] == beauty_kg.user_entity[4]

    def test_user_start_without_users_raises(self, beauty_kg_no_users):
        env = KGEnvironment(beauty_kg_no_users, action_cap=10, seed=0)
        batch = self._batch([Session([1, 2], 0, 0)])
        with pytest.raises(ValueError):
            env.start_entities(batch, "user")

    def test_unknown_start_raises(self, env):
        batch = self._batch([Session([1, 2], 0, 0)])
        with pytest.raises(ValueError):
            env.start_entities(batch, "nowhere")
