"""Failure-injection tests: degenerate KGs, dead ends, edge-case sessions.

The REKS walk must degrade gracefully — never crash, never emit an
invalid path — when the graph or the sessions are pathological.
"""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import REKSConfig, REKSTrainer
from repro.core.environment import KGEnvironment
from repro.core.policy import PolicyNetwork
from repro.core.rewards import RewardComputer, RewardWeights
from repro.core.agent import REKSAgent
from repro.data.loader import SessionBatcher
from repro.data.schema import Session
from repro.kg.builder import BuiltKG
from repro.kg.graph import KnowledgeGraph
from repro.models import create_encoder


def build_sparse_world(n_items=6, dead_end_item=3):
    """A hand-built KG where one item has a single dead-end neighbor.

    Layout: items 1..n connect bidirectionally to brand 0 except
    ``dead_end_item`` which points only at brand 1, and brand 1 has no
    outgoing edges at all (a true dead end after the visited filter).
    """
    kg = KnowledgeGraph()
    kg.add_entity_type("product", n_items)
    kg.add_entity_type("brand", 2)
    produced_by = kg.add_relation("produced_by")
    brand0 = kg.entity_id("brand", 0)
    brand1 = kg.entity_id("brand", 1)
    for item in range(1, n_items + 1):
        product = item - 1
        if item == dead_end_item:
            kg.add_triples([product], produced_by, [brand1])
            # brand1 deliberately has no outgoing edges.
        else:
            kg.add_triples([product], produced_by, [brand0])
            kg.add_triples([brand0], produced_by, [product])
    kg.finalize()

    item_entity = np.full(n_items + 1, -1, dtype=np.int64)
    item_entity[1:] = np.arange(n_items)
    entity_item = np.zeros(kg.num_entities, dtype=np.int64)
    entity_item[:n_items] = np.arange(1, n_items + 1)
    return BuiltKG(kg=kg, item_entity=item_entity, entity_item=entity_item,
                   user_entity=None, include_users=False)


def make_agent(built, n_items, seed=0):
    rng = np.random.default_rng(seed)
    dim = 8
    entity_table = rng.standard_normal(
        (built.kg.num_entities, dim)).astype(np.float32)
    relation_table = rng.standard_normal(
        (built.kg.num_relations, dim)).astype(np.float32)
    encoder = create_encoder("gru4rec", n_items=n_items, dim=dim, rng=rng)
    policy = PolicyNetwork(dim, dim, dim, entity_table, relation_table,
                           rng=rng)
    env = KGEnvironment(built, action_cap=10, seed=seed)
    rewards = RewardComputer(built, entity_table, relation_table,
                             weights=RewardWeights(), mode="full")
    cfg = REKSConfig(dim=dim, state_dim=dim, seed=seed)
    return REKSAgent(encoder, policy, env, rewards, cfg)


class TestDeadEnds:
    def test_dead_end_paths_dropped_not_crashed(self):
        built = build_sparse_world()
        agent = make_agent(built, n_items=6)
        sessions = [Session([3, 1], 0, 0),   # prefix [3] -> dead end
                    Session([1, 2], 1, 0)]   # healthy prefix [1]
        batch = next(iter(SessionBatcher(sessions, batch_size=4,
                                         shuffle=False)))
        with no_grad():
            se = agent.encoder.encode(batch)
            rollout = agent.walk(se, batch)
        # The dead-end session contributes no 2-hop paths; the healthy
        # one does.  No invalid entities anywhere.
        assert 1 in rollout.session_idx
        assert 0 not in rollout.session_idx
        assert (rollout.entities < built.kg.num_entities).all()

    def test_recommend_with_dead_ends(self):
        built = build_sparse_world()
        agent = make_agent(built, n_items=6)
        sessions = [Session([3, 1], 0, 0)]
        batch = next(iter(SessionBatcher(sessions, batch_size=2,
                                         shuffle=False)))
        rec = agent.recommend(batch, k=5)
        # No reachable items -> zero scores, empty-ish ranking, no paths.
        assert (rec.scores[0] == 0).all()
        assert rec.paths == {}

    def test_losses_raise_when_every_path_dies(self):
        # All sessions end at the dead-end item: walk returns nothing,
        # which is a data/KG bug the agent must report loudly.
        built = build_sparse_world()
        agent = make_agent(built, n_items=6)
        sessions = [Session([3, 1], 0, 0), Session([3, 2], 1, 0)]
        batch = next(iter(SessionBatcher(sessions, batch_size=4,
                                         shuffle=False)))
        with pytest.raises(RuntimeError, match="no paths"):
            agent.losses(batch)


class TestDegenerateSessions:
    def test_single_item_prefixes(self, beauty_tiny, beauty_kg,
                                  beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=16,
                         action_cap=40, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg,
                              model_name="gru4rec", config=cfg,
                              transe=beauty_transe)
        sessions = [Session([1, 2], 0, 0), Session([5, 3], 1, 0)]
        metrics = trainer.evaluate(sessions, ks=(5,))
        assert 0.0 <= metrics["HR@5"] <= 100.0

    def test_repeated_item_sessions(self, beauty_tiny, beauty_kg,
                                    beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=16,
                         action_cap=40, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg,
                              model_name="gru4rec", config=cfg,
                              transe=beauty_transe)
        sessions = [Session([4, 4, 4, 4], 0, 0)]
        metrics = trainer.evaluate(sessions, ks=(5,))
        assert np.isfinite(metrics["HR@5"])

    def test_long_session_truncated_not_crashed(self, beauty_tiny,
                                                beauty_kg, beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=16,
                         action_cap=40, max_session_length=5, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg,
                              model_name="gru4rec", config=cfg,
                              transe=beauty_transe)
        long_session = Session(list(range(1, 30)), 0, 0)
        metrics = trainer.evaluate([long_session], ks=(5,))
        assert np.isfinite(metrics["HR@5"])


class TestEnvironmentEdgeCases:
    def test_zero_degree_entity_in_batch(self):
        built = build_sparse_world()
        env = KGEnvironment(built, action_cap=10, seed=0)
        brand1 = built.kg.entity_id("brand", 1)
        rels, tails, mask = env.batched_actions(
            np.array([brand1]), np.array([[brand1]]))
        assert not mask.any()

    def test_action_cap_one(self):
        built = build_sparse_world()
        env = KGEnvironment(built, action_cap=1, seed=0)
        for entity in range(built.kg.num_entities):
            assert env.degree(entity) <= 1
