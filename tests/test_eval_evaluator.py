"""Unit tests for the high-level evaluation entry points."""

import numpy as np
import pytest

from repro.eval.evaluator import evaluate_encoder, rank_full_catalog
from repro.models import StandaloneConfig, create_encoder


class TestEvaluateEncoder:
    def test_trains_and_reports(self, beauty_tiny):
        encoder = create_encoder("gru4rec", n_items=beauty_tiny.n_items,
                                 dim=16, rng=np.random.default_rng(0))
        metrics = evaluate_encoder(
            encoder, beauty_tiny.split.train, beauty_tiny.split.validation,
            beauty_tiny.split.test,
            config=StandaloneConfig(epochs=2, lr=3e-3, seed=0),
            ks=(5, 10))
        assert set(metrics) >= {"HR@5", "HR@10", "NDCG@5", "NDCG@10"}
        assert all(0.0 <= v <= 100.0 for v in metrics.values())


class TestRankFullCatalog:
    def test_ranks_by_score(self):
        scores = np.array([[0.0, 0.1, 0.9, 0.5]])
        ranked = rank_full_catalog(scores, ks=(2,))
        np.testing.assert_array_equal(ranked[0][:2], [2, 3])
