"""Unit tests for the transformer encoder stack."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class TestPositionalEmbedding:
    def test_adds_position_information(self, rng):
        pos = nn.LearnedPositionalEmbedding(10, 4, rng=rng)
        x = Tensor(np.zeros((1, 3, 4), dtype=np.float32))
        out = pos(x).data
        # Different positions must differ (embeddings are random nonzero).
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_length_check(self, rng):
        pos = nn.LearnedPositionalEmbedding(4, 4, rng=rng)
        with pytest.raises(ValueError):
            pos(Tensor(np.zeros((1, 5, 4), dtype=np.float32)))


class TestEncoderLayer:
    def test_shape_preserved(self, rng):
        layer = nn.TransformerEncoderLayer(8, 2, rng=rng)
        layer.eval()
        x = Tensor(rng.standard_normal((2, 5, 8)).astype(np.float32))
        assert layer(x).shape == (2, 5, 8)

    def test_mask_respected(self, rng):
        layer = nn.TransformerEncoderLayer(8, 2, dropout=0.0, rng=rng)
        layer.eval()
        x = Tensor(rng.standard_normal((1, 4, 8)).astype(np.float32))
        out_full = layer(x).data
        out_masked = layer(x, mask=np.array([[1, 1, 1, 0]])).data
        assert not np.allclose(out_full[:, 0], out_masked[:, 0])

    def test_gradients(self, rng):
        layer = nn.TransformerEncoderLayer(4, 1, dropout=0.0, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32),
                   requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.ffn_in.weight.grad is not None


class TestEncoderStack:
    def test_multiple_layers(self, rng):
        enc = nn.TransformerEncoder(8, 2, num_layers=3, dropout=0.0, rng=rng)
        enc.eval()
        x = Tensor(rng.standard_normal((2, 4, 8)).astype(np.float32))
        assert enc(x).shape == (2, 4, 8)
        assert len(enc.layers) == 3

    def test_layers_have_distinct_parameters(self, rng):
        enc = nn.TransformerEncoder(4, 1, num_layers=2, rng=rng)
        w0 = enc.layers[0].ffn_in.weight.data
        w1 = enc.layers[1].ffn_in.weight.data
        assert not np.allclose(w0, w1)
