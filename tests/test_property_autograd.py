"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.autograd.tensor import _unbroadcast

SHAPES = st.tuples(st.integers(1, 4), st.integers(1, 4))
FLOATS = hnp.arrays(np.float64, SHAPES,
                    elements=st.floats(-10, 10, allow_nan=False,
                                       allow_infinity=False))


@st.composite
def tensor_pair_same_shape(draw):
    shape = draw(SHAPES)
    elems = st.floats(-5, 5, allow_nan=False, allow_infinity=False)
    a = draw(hnp.arrays(np.float64, shape, elements=elems))
    b = draw(hnp.arrays(np.float64, shape, elements=elems))
    return a, b


class TestAlgebraicIdentities:
    @given(tensor_pair_same_shape())
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, pair):
        a, b = pair
        ta, tb = Tensor(a, dtype=np.float64), Tensor(b, dtype=np.float64)
        np.testing.assert_allclose((ta + tb).data, (tb + ta).data)

    @given(tensor_pair_same_shape())
    @settings(max_examples=40, deadline=None)
    def test_mul_matches_numpy(self, pair):
        a, b = pair
        out = (Tensor(a, dtype=np.float64) * Tensor(b, dtype=np.float64)).data
        np.testing.assert_allclose(out, a * b)

    @given(FLOATS)
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, a):
        t = Tensor(a, dtype=np.float64)
        np.testing.assert_allclose((-(-t)).data, a)

    @given(FLOATS)
    @settings(max_examples=40, deadline=None)
    def test_sum_then_backward_gives_ones(self, a):
        t = Tensor(a, requires_grad=True, dtype=np.float64)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a))


class TestGradientLinearity:
    @given(FLOATS, st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_scaling_loss_scales_gradient(self, a, c):
        t1 = Tensor(a, requires_grad=True, dtype=np.float64)
        (t1 * t1).sum().backward()
        t2 = Tensor(a, requires_grad=True, dtype=np.float64)
        ((t2 * t2).sum() * c).backward()
        np.testing.assert_allclose(t2.grad, c * t1.grad, atol=1e-9)


class TestSoftmaxProperties:
    @given(FLOATS)
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_distribution(self, a):
        out = F.softmax(Tensor(a, dtype=np.float64), axis=-1).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1),
                                   np.ones(a.shape[0]), rtol=1e-8)

    @given(FLOATS)
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_consistent_with_softmax(self, a):
        t = Tensor(a, dtype=np.float64)
        np.testing.assert_allclose(
            np.exp(F.log_softmax(t, axis=-1).data),
            F.softmax(t, axis=-1).data, rtol=1e-8)

    @given(FLOATS)
    @settings(max_examples=40, deadline=None)
    def test_softmax_argmax_preserved(self, a):
        # Ties (or sub-epsilon gaps, which exp() collapses) make argmax
        # ambiguous, so only rows with a clearly unique max are checked.
        out = F.softmax(Tensor(a, dtype=np.float64), axis=-1).data
        sorted_rows = np.sort(a, axis=-1)
        if a.shape[-1] > 1:
            unique = (sorted_rows[:, -1] - sorted_rows[:, -2]) > 1e-6
        else:
            unique = np.ones(a.shape[0], dtype=bool)
        np.testing.assert_array_equal(out.argmax(axis=-1)[unique],
                                      a.argmax(axis=-1)[unique])


class TestUnbroadcastProperty:
    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_inverts_broadcast_sum(self, rows, cols):
        rng = np.random.default_rng(rows * 7 + cols)
        small = rng.standard_normal((1, cols))
        grad = rng.standard_normal((rows, cols))
        # Broadcasting small to (rows, cols) then backpropagating grad
        # must produce the column sums.
        back = _unbroadcast(grad, small.shape)
        np.testing.assert_allclose(back, grad.sum(axis=0, keepdims=True),
                                   rtol=1e-9)


class TestScatterAddProperty:
    @given(st.integers(2, 20), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_total_mass_preserved(self, n_src, n_buckets):
        rng = np.random.default_rng(n_src * 31 + n_buckets)
        src = Tensor(rng.random(n_src), dtype=np.float64)
        idx = rng.integers(0, n_buckets, size=n_src)
        out = F.scatter_add(src, (idx,), (n_buckets,))
        np.testing.assert_allclose(out.data.sum(), src.data.sum(),
                                   rtol=1e-9)
