"""Differential tests: CSR environment vs the loop-based reference.

The CSR ``KGEnvironment`` and :class:`ReferenceKGEnvironment` consume
the action-cap RNG identically, so with equal seeds the comparison is
exact array equality, not just set equality.  The contract checked on
randomized KGs (varied degree distributions, action-cap hits,
duplicate edges, hub entities, dead ends) is that both return the
same legal-action set per frontier row — identical ``(rel, tail)``
pairs up to within-entity order — and the same mask semantics.
"""

import numpy as np
import pytest

from reference_env import ReferenceKGEnvironment
from repro.autograd import no_grad
from repro.core.environment import KGEnvironment, RolloutWorkspace
from repro.kg.builder import BuiltKG
from repro.kg.graph import KnowledgeGraph


# ----------------------------------------------------------------------
# Randomized KG construction
# ----------------------------------------------------------------------
def random_built_kg(rng, n_items=12, n_other=6, n_relations=3,
                    n_edges=120, hub_degree=0, duplicate_frac=0.0,
                    dead_ends=0):
    """A small random KG wrapped as a BuiltKG (items map to entities)."""
    kg = KnowledgeGraph()
    item_start, _ = kg.add_entity_type("product", n_items)
    kg.add_entity_type("attribute", n_other)
    for i in range(n_relations):
        kg.add_relation(f"r{i}")
    n_entities = kg.num_entities
    # The last `dead_ends` entities never appear as heads.
    head_pool = np.arange(n_entities - dead_ends)
    heads = rng.choice(head_pool, size=n_edges)
    tails = rng.integers(0, n_entities, size=n_edges)
    rel_of = rng.integers(0, n_relations, size=n_edges)
    for rel in range(n_relations):
        sel = rel_of == rel
        kg.add_triples(heads[sel], rel, tails[sel])
        if duplicate_frac > 0 and sel.any():
            n_dup = max(1, int(sel.sum() * duplicate_frac))
            kg.add_triples(heads[sel][:n_dup], rel, tails[sel][:n_dup])
    if hub_degree > 0:
        hub_tails = rng.integers(0, n_entities, size=hub_degree)
        kg.add_triples(np.zeros(hub_degree, dtype=np.int64), 0, hub_tails)
    kg.finalize()
    item_entity = np.full(n_items + 1, -1, dtype=np.int64)
    item_entity[1:] = item_start + np.arange(n_items)
    entity_item = np.zeros(kg.num_entities, dtype=np.int64)
    entity_item[item_entity[1:]] = np.arange(1, n_items + 1)
    return BuiltKG(kg=kg, item_entity=item_entity, entity_item=entity_item,
                   user_entity=None, include_users=False)


def random_frontier(rng, built, size, visited_width):
    """Random entities (with repeats) plus a visited history per row."""
    n_entities = built.kg.num_entities
    entities = rng.integers(0, n_entities, size=size)
    visited = rng.integers(0, n_entities, size=(size, visited_width))
    visited[:, 0] = entities  # the current entity is always visited
    return entities, visited


def legal_action_sets(rels, tails, mask):
    """Canonical per-row action sets: sorted (rel, tail) legal pairs."""
    return [sorted(zip(r[m].tolist(), t[m].tolist()))
            for r, t, m in zip(rels, tails, mask)]


def assert_envs_agree(csr_env, ref_env, entities, visited,
                      workspace=None, exact=True):
    got = csr_env.batched_actions(entities, visited, workspace=workspace)
    want = ref_env.batched_actions(entities, visited)
    assert got[0].shape == want[0].shape
    assert legal_action_sets(*got) == legal_action_sets(*want)
    if exact:  # same seed => same subsample order => identical arrays
        for g, w in zip(got, want):
            np.testing.assert_array_equal(np.asarray(g), w)


# ----------------------------------------------------------------------
# Differential cases
# ----------------------------------------------------------------------
KG_VARIANTS = [
    dict(),                                           # plain random
    dict(n_edges=400, n_items=20, n_other=10),        # denser
    dict(hub_degree=300),                             # one mega-hub
    dict(duplicate_frac=0.3),                         # duplicate edges
    dict(dead_ends=4),                                # zero-degree tail
    dict(hub_degree=150, duplicate_frac=0.2, dead_ends=3),
]


@pytest.mark.parametrize("variant", range(len(KG_VARIANTS)))
@pytest.mark.parametrize("cap", [3, 10, 10_000])
def test_randomized_kgs_identical(variant, cap):
    rng = np.random.default_rng(1000 * variant + cap)
    built = random_built_kg(rng, **KG_VARIANTS[variant])
    csr_env = KGEnvironment(built, action_cap=cap, seed=variant)
    ref_env = ReferenceKGEnvironment(built, action_cap=cap, seed=variant)
    for trial in range(3):
        entities, visited = random_frontier(
            rng, built, size=rng.integers(1, 64),
            visited_width=rng.integers(1, 4))
        assert_envs_agree(csr_env, ref_env, entities, visited)


@pytest.mark.parametrize("cap", [1, 5])
def test_degrees_and_actions_of_match(cap):
    rng = np.random.default_rng(7)
    built = random_built_kg(rng, hub_degree=80, dead_ends=3)
    csr_env = KGEnvironment(built, action_cap=cap, seed=2)
    ref_env = ReferenceKGEnvironment(built, action_cap=cap, seed=2)
    for entity in range(built.kg.num_entities):
        assert csr_env.degree(entity) == ref_env.degree(entity) <= cap
        got_r, got_t = csr_env.actions_of(entity)
        want_r, want_t = ref_env.actions_of(entity)
        np.testing.assert_array_equal(np.asarray(got_r), want_r)
        np.testing.assert_array_equal(np.asarray(got_t), want_t)


def test_workspace_reuse_matches_fresh_allocation():
    """Recycled buffers across growing/shrinking frontiers stay correct."""
    rng = np.random.default_rng(11)
    built = random_built_kg(rng, n_edges=300, hub_degree=60)
    csr_env = KGEnvironment(built, action_cap=40, seed=0)
    ref_env = ReferenceKGEnvironment(built, action_cap=40, seed=0)
    workspace = RolloutWorkspace()
    for size in (64, 8, 128, 1, 32):
        entities, visited = random_frontier(rng, built, size, 2)
        assert_envs_agree(csr_env, ref_env, entities, visited,
                          workspace=workspace)
    assert workspace.nbytes > 0


def test_workspace_reuse_is_tape_safe():
    """Buffer recycling must not corrupt a pending autograd tape.

    The contract (see RolloutWorkspace) is that embedding lookups
    copy the int32 rels/tails views (dtype-preserving) before any
    backward closure retains them.  Pin it: look an action grid
    up through an Embedding, clobber the workspace with a second
    frontier, then backward — the gradient must land at the
    *original* indices, bit-identical to an unshared-buffer run.
    """
    from repro.autograd.tensor import Tensor
    from repro.nn.embedding import Embedding

    rng = np.random.default_rng(13)
    built = random_built_kg(rng, n_edges=200)
    env = KGEnvironment(built, action_cap=30, seed=0)
    workspace = RolloutWorkspace()
    entities, visited = random_frontier(rng, built, 16, 2)
    rels, tails, mask = env.batched_actions(entities, visited,
                                            workspace=workspace)
    tails_frozen = tails.copy()

    table = rng.standard_normal(
        (built.kg.num_entities, 4)).astype(np.float32)
    upstream = rng.standard_normal(
        tails.shape + (4,)).astype(np.float32)

    emb = Embedding.from_pretrained(table, trainable=True)
    looked_up = emb(tails)  # closure must retain a *copy* of tails
    # Clobber the workspace: a different frontier overwrites the
    # tails view that the lookup above was given.
    entities2, visited2 = random_frontier(rng, built, 16, 2)
    env.batched_actions(entities2, visited2, workspace=workspace)
    assert not np.array_equal(tails, tails_frozen)  # really clobbered
    (looked_up * Tensor(upstream)).sum().backward()

    control = Embedding.from_pretrained(table, trainable=True)
    (control(tails_frozen) * Tensor(upstream)).sum().backward()
    np.testing.assert_array_equal(emb.weight.grad, control.weight.grad)


def test_bucketed_frontier_covers_all_rows_identically():
    """Bucketed rectangles reassemble to the flat frontier's actions."""
    rng = np.random.default_rng(17)
    built = random_built_kg(rng, n_edges=300, hub_degree=200, dead_ends=3)
    env = KGEnvironment(built, action_cap=150, seed=0)
    entities, visited = random_frontier(rng, built, 48, 2)
    flat = legal_action_sets(*env.batched_actions(entities, visited))
    seen = np.zeros(len(entities), dtype=int)
    hub_width = max(env.degree(int(e)) for e in entities)
    widths = []
    for bucket in env.iter_frontier_buckets(entities, visited,
                                            num_buckets=4):
        widths.append(bucket.rels.shape[1])
        got = legal_action_sets(bucket.rels, bucket.tails, bucket.mask)
        for local, row in enumerate(bucket.rows):
            assert got[local] == flat[row]
            seen[row] += 1
    assert (seen == 1).all()
    # The hub only widens its own bucket: at least one bucket must be
    # narrower than the global max degree.
    assert min(widths) < hub_width


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(25))
def test_differential_sweep(seed):
    """Broad randomized sweep (slow tier): many shapes, caps, widths."""
    rng = np.random.default_rng(seed)
    built = random_built_kg(
        rng,
        n_items=int(rng.integers(3, 40)),
        n_other=int(rng.integers(1, 20)),
        n_relations=int(rng.integers(1, 6)),
        n_edges=int(rng.integers(10, 1500)),
        hub_degree=int(rng.integers(0, 400)),
        duplicate_frac=float(rng.random() * 0.5),
        dead_ends=int(rng.integers(0, 3)),
    )
    cap = int(rng.integers(1, 300))
    csr_env = KGEnvironment(built, action_cap=cap, seed=seed)
    ref_env = ReferenceKGEnvironment(built, action_cap=cap, seed=seed)
    workspace = RolloutWorkspace()
    with no_grad():
        for trial in range(5):
            entities, visited = random_frontier(
                rng, built, size=int(rng.integers(1, 256)),
                visited_width=int(rng.integers(1, 5)))
            assert_envs_agree(csr_env, ref_env, entities, visited,
                              workspace=workspace)
