"""Unit tests for checkpoint serialization."""

import numpy as np
import pytest

from repro import create_encoder
from repro.io import load_module, load_state_dict, save_module, save_state_dict


class TestStateDictRoundTrip:
    def test_round_trip(self, tmp_path):
        state = {"a.weight": np.arange(6.0).reshape(2, 3),
                 "b": np.ones(4, dtype=np.float32)}
        path = save_state_dict(tmp_path / "ckpt.npz", state,
                               meta={"model": "toy"})
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_allclose(loaded[key], state[key])

    def test_meta_validation(self, tmp_path):
        path = save_state_dict(tmp_path / "c.npz", {"w": np.ones(2)},
                               meta={"model": "narm", "dim": 16})
        load_state_dict(path, expected_meta={"model": "narm"})  # fine
        with pytest.raises(ValueError):
            load_state_dict(path, expected_meta={"model": "gru4rec"})

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "raw.npz"
        np.savez(path, w=np.ones(2))
        with pytest.raises(ValueError):
            load_state_dict(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_state_dict(tmp_path / "deep" / "nested" / "c.npz",
                               {"w": np.ones(1)})
        assert path.exists()


class TestModuleCheckpoints:
    def test_encoder_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        a = create_encoder("gru4rec", n_items=10, dim=8, rng=rng)
        b = create_encoder("gru4rec", n_items=10, dim=8,
                           rng=np.random.default_rng(1))
        assert not np.allclose(a.item_embedding.weight.data,
                               b.item_embedding.weight.data)
        path = save_module(tmp_path / "enc.npz", a, model="gru4rec")
        load_module(path, b, model="gru4rec")
        np.testing.assert_allclose(a.item_embedding.weight.data,
                                   b.item_embedding.weight.data)

    def test_wrong_architecture_fails_cleanly(self, tmp_path):
        rng = np.random.default_rng(0)
        gru = create_encoder("gru4rec", n_items=10, dim=8, rng=rng)
        narm = create_encoder("narm", n_items=10, dim=8, rng=rng)
        path = save_module(tmp_path / "enc.npz", gru, model="gru4rec")
        with pytest.raises(ValueError):
            load_module(path, narm, model="narm")  # meta mismatch
        with pytest.raises(KeyError):
            load_module(path, narm)  # structural mismatch
