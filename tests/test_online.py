"""Continual-learning subsystem: registry, ingest, updater, hot swap.

Everything here is tier-1 (fast): the stack under test is an untrained
agent over the shared tiny fixtures — checkpoint round-trips, overlay
semantics, and swap atomicity do not depend on training quality.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import REKSConfig, REKSTrainer
from repro.core.agent import clone_agent
from repro.data.schema import Session
from repro.online import (
    CheckpointNotFound,
    CheckpointRegistry,
    DeltaIngestor,
    OnlineUpdater,
)


@pytest.fixture()
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    """Untrained (but inference-ready) REKS stack.

    Function-scoped: ingestion mutates the environment's adjacency, so
    sharing one stack across tests would leak staged edges between
    them.
    """
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        online_min_sessions=4, online_max_steps=2,
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture()
def sessions(beauty_tiny):
    return [s for s in beauty_tiny.split.test if len(s.items) >= 2]


@pytest.fixture()
def registry(tmp_path):
    return CheckpointRegistry(tmp_path / "registry", keep_last=3)


# ----------------------------------------------------------------------
# CheckpointRegistry
# ----------------------------------------------------------------------
class TestCheckpointRegistry:
    def test_publish_load_round_trip(self, trainer, registry):
        state = trainer.agent.state_dict()
        version = registry.publish(state, meta={"model": "narm"})
        assert version == 1
        loaded, meta = registry.load(version)
        assert meta["model"] == "narm"
        assert meta["version"] == 1
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_versions_are_monotonic_across_restarts(self, trainer,
                                                    tmp_path):
        state = trainer.agent.state_dict()
        first = CheckpointRegistry(tmp_path / "reg", keep_last=2)
        assert [first.publish(state) for _ in range(3)] == [1, 2, 3]
        # Reopen: the counter continues past pruned versions.
        second = CheckpointRegistry(tmp_path / "reg", keep_last=2)
        assert second.publish(state) == 4
        assert second.versions() == [3, 4]

    def test_retention_prunes_files_not_history(self, trainer, registry):
        state = trainer.agent.state_dict()
        for _ in range(5):
            registry.publish(state)
        assert registry.versions() == [3, 4, 5]  # keep_last=3
        assert registry.latest() == 5
        files = sorted(p.name for p in registry.root.glob("ckpt-*.npz"))
        assert files == ["ckpt-000003.npz", "ckpt-000004.npz",
                         "ckpt-000005.npz"]
        with pytest.raises(CheckpointNotFound):
            registry.load(1)

    def test_load_latest_by_default(self, trainer, registry):
        state = trainer.agent.state_dict()
        registry.publish(state, meta={"tag": "a"})
        registry.publish(state, meta={"tag": "b"})
        _, meta = registry.load()
        assert meta["tag"] == "b"

    def test_empty_registry_raises(self, registry):
        assert registry.latest() is None
        with pytest.raises(CheckpointNotFound):
            registry.load()

    def test_meta_guard_rejects_mismatch(self, trainer, registry):
        registry.publish(trainer.agent.state_dict(),
                         meta={"model": "narm"})
        with pytest.raises(ValueError, match="mismatch"):
            registry.load(expected_meta={"model": "gru4rec"})

    def test_no_tmp_litter_after_publish(self, trainer, registry):
        registry.publish(trainer.agent.state_dict())
        assert not list(registry.root.glob("*.tmp"))


# ----------------------------------------------------------------------
# DeltaIngestor + environment overlay
# ----------------------------------------------------------------------
class TestDeltaIngestor:
    def test_staged_edges_visible_before_compaction(self, trainer):
        env = trainer.env
        ingestor = DeltaIngestor(trainer.built, env, compact_every=10_000)
        # co_occur never touches brand entities offline, so an
        # item -co_occur-> brand triple is guaranteed to be new.
        co_occur = trainer.built.kg.relation_id("co_occur")
        head = int(trainer.built.item_entity[1])
        tail = trainer.built.kg.type_range("brand")[0]
        staged = ingestor.ingest_triples([head], co_occur, [tail])
        assert staged == 1
        assert env.staged_edges == 1
        rels, tails = env.actions_of(head)
        assert ((rels == co_occur) & (tails == tail)).any()
        # batched_actions sees it too (the overlay widen path).
        grid_rels, grid_tails, mask = env.batched_actions(
            np.array([head]), np.array([[head]]))
        hit = (grid_rels == co_occur) & (grid_tails == tail) & mask
        assert hit.any()

    def test_compaction_merges_and_clears_overlay(self, trainer):
        env = trainer.env
        ingestor = DeltaIngestor(trainer.built, env, compact_every=10_000)
        co_occur = trainer.built.kg.relation_id("co_occur")
        head = int(trainer.built.item_entity[1])
        tail = trainer.built.kg.type_range("brand")[0]  # guaranteed new
        degree_before = env.degree(head)
        staged = env.stage_edges([head], [co_occur], [tail])
        assert staged == 1
        compacted = ingestor.compact()
        assert compacted == 1
        assert env.staged_edges == 0
        assert env.compactions == 1
        assert env.degree(head) == degree_before + 1
        rels, tails = env.actions_of(head)
        assert ((rels == co_occur) & (tails == tail)).any()

    def test_compaction_matches_offline_finalize_order_invariants(
            self, trainer):
        """Post-compaction grids equal a per-entity loop over
        actions_of — the same oracle contract the differential suite
        pins for the offline build."""
        env = trainer.env
        co_occur = trainer.built.kg.relation_id("co_occur")
        items = trainer.built.item_entity[1:20]
        heads = [int(e) for e in items[:-1]]
        tails = [int(e) for e in items[1:]]
        env.stage_edges(heads, [co_occur] * len(heads), tails)
        env.compact()
        frontier = np.array(heads[:8], dtype=np.int64)
        visited = frontier[:, None]
        rels, tls, mask = env.batched_actions(frontier, visited)
        for row, entity in enumerate(frontier):
            ref_rels, ref_tails = env.actions_of(int(entity))
            legal = ref_tails != entity
            got = sorted(zip(rels[row][mask[row]].tolist(),
                             tls[row][mask[row]].tolist()))
            want = sorted(zip(ref_rels[legal].tolist(),
                              ref_tails[legal].tolist()))
            assert got == want

    def test_session_ingest_stages_co_occur_and_buffers(self, trainer,
                                                        beauty_tiny):
        ingestor = DeltaIngestor(trainer.built, trainer.env,
                                 compact_every=10_000)
        delta = [s for s in beauty_tiny.split.validation
                 if len(s.items) >= 2][:10]
        ingestor.ingest_sessions(delta)
        assert ingestor.pending_sessions == len(delta)
        assert ingestor.sessions_ingested == len(delta)
        drained = ingestor.drain_sessions()
        assert drained == delta
        assert ingestor.pending_sessions == 0

    def test_duplicate_edges_not_staged_twice(self, trainer):
        env = trainer.env
        co_occur = trainer.built.kg.relation_id("co_occur")
        head = int(trainer.built.item_entity[2])
        tail = int(trainer.built.item_entity[7])
        first = env.stage_edges([head], [co_occur], [tail])
        second = env.stage_edges([head], [co_occur], [tail])
        assert second == 0
        assert env.staged_edges == first

    def test_out_of_catalog_items_rejected(self, trainer, beauty_tiny):
        ingestor = DeltaIngestor(trainer.built, trainer.env)
        bogus = Session([1, beauty_tiny.n_items + 5], user_id=0, day=0)
        with pytest.raises(ValueError, match="outside the trained"):
            ingestor.ingest_sessions([bogus])
        with pytest.raises(ValueError, match=">= 2 items"):
            ingestor.ingest_sessions([Session([3], user_id=0, day=0)])

    def test_stage_edges_rejects_heads_at_action_cap(self, beauty_kg):
        """An edge that could not survive compaction must not be
        staged either — otherwise it would serve until the next
        compaction and then vanish, flipping rankings with no new
        data."""
        from repro.core.environment import KGEnvironment

        env = KGEnvironment(beauty_kg, action_cap=3, seed=0)
        co_occur = beauty_kg.kg.relation_id("co_occur")
        capped = next(e for e in range(beauty_kg.kg.num_entities)
                      if env.degree(e) == 3)
        tail = beauty_kg.kg.type_range("brand")[0]
        assert env.stage_edges([capped], [co_occur], [tail]) == 0
        assert env.staged_edges == 0
        # Compaction therefore never truncates: merged == staged.
        under = next(e for e in range(beauty_kg.kg.num_entities)
                     if env.degree(e) < 3)
        staged = env.stage_edges([under], [co_occur], [tail])
        assert env.compact() == staged

    def test_stage_edges_validates_ids(self, trainer):
        env = trainer.env
        with pytest.raises(IndexError, match="entity id"):
            env.stage_edges([env.kg.num_entities + 1], [0], [0])
        with pytest.raises(IndexError, match="relation id"):
            env.stage_edges([0], [env.kg.num_relations + 3], [1])

    def test_auto_compaction_threshold(self, trainer, beauty_tiny):
        ingestor = DeltaIngestor(trainer.built, trainer.env,
                                 compact_every=5)
        delta = [s for s in beauty_tiny.split.validation
                 if len(s.items) >= 2][:20]
        ingestor.ingest_sessions(delta)
        assert trainer.env.compactions >= 1
        assert trainer.env.staged_edges < 5


# ----------------------------------------------------------------------
# Walk correctness across ingestion
# ----------------------------------------------------------------------
class TestWalkAcrossIngestion:
    def test_rankings_stable_when_delta_is_redundant(self, trainer,
                                                     sessions):
        """Ingesting transitions the KG already has must not change a
        single ranking (the dedupe guarantees the action space is
        untouched)."""
        before = [rec.ranked_items
                  for rec in trainer.recommend_sessions(sessions[:8], k=5)]
        ingestor = DeltaIngestor(trainer.built, trainer.env,
                                 compact_every=10_000)
        # Training-split sessions: their co_occur edges are already in
        # the graph, so nothing new should be staged (purchase edges
        # too, when users are in the KG).
        import copy

        train_replay = copy.deepcopy(
            [s for s in trainer.dataset.split.train
             if len(s.items) >= 2][:10])
        staged = ingestor.ingest_sessions(train_replay)
        assert staged == 0
        after = [rec.ranked_items
                 for rec in trainer.recommend_sessions(sessions[:8], k=5)]
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a, b)

    def test_walk_survives_mid_stream_compaction(self, trainer, sessions,
                                                 beauty_tiny):
        """Interleave recommend calls with staging and compaction; the
        walk must never crash and always produce full rankings."""
        ingestor = DeltaIngestor(trainer.built, trainer.env,
                                 compact_every=10_000)
        delta = [s for s in beauty_tiny.split.validation
                 if len(s.items) >= 2]
        for chunk_start in range(0, 15, 5):
            ingestor.ingest_sessions(delta[chunk_start:chunk_start + 5])
            recs = trainer.recommend_sessions(sessions[:4], k=5)
            assert all(r.ranked_items.shape == (len(sessions[:4]), 5)
                       or r.ranked_items.shape[1] == 5 for r in recs)
            ingestor.compact()
            recs = trainer.recommend_sessions(sessions[:4], k=5)
            assert all(r.ranked_items.shape[1] == 5 for r in recs)


# ----------------------------------------------------------------------
# OnlineUpdater
# ----------------------------------------------------------------------
class TestOnlineUpdater:
    def test_round_skipped_below_min_sessions(self, trainer, registry):
        ingestor = DeltaIngestor(trainer.built, trainer.env)
        updater = OnlineUpdater(trainer, ingestor, registry,
                                min_sessions=100)
        assert updater.run_once() is None
        assert registry.latest() is None

    def test_forced_round_publishes_warm_start(self, trainer, registry):
        ingestor = DeltaIngestor(trainer.built, trainer.env)
        updater = OnlineUpdater(trainer, ingestor, registry)
        version = updater.run_once(force=True)
        assert version == 1
        meta = registry.manifest(version)["meta"]
        assert meta["model"] == "narm"
        assert meta["sessions"] == 0
        assert meta["kg_fingerprint"] == trainer.env.fingerprint()

    def test_round_finetunes_drains_and_publishes(self, trainer,
                                                  registry, beauty_tiny):
        ingestor = DeltaIngestor(trainer.built, trainer.env,
                                 compact_every=10_000)
        published = []
        updater = OnlineUpdater(trainer, ingestor, registry,
                                min_sessions=4, max_steps=2,
                                on_publish=published.append)
        delta = [s for s in beauty_tiny.split.validation
                 if len(s.items) >= 2][:8]
        ingestor.ingest_sessions(delta)
        version = updater.run_once()
        assert version == 1
        assert published == [1]
        assert ingestor.pending_sessions == 0
        assert trainer.env.staged_edges == 0  # round compacts first
        meta = registry.manifest(version)["meta"]
        assert meta["sessions"] == len(delta)
        assert meta["steps"] >= 1
        assert np.isfinite(meta["loss"])

    def test_on_publish_errors_do_not_kill_round(self, trainer, registry,
                                                 beauty_tiny):
        ingestor = DeltaIngestor(trainer.built, trainer.env)

        def explode(version):
            raise RuntimeError("swap target gone")

        updater = OnlineUpdater(trainer, ingestor, registry,
                                on_publish=explode)
        version = updater.run_once(force=True)
        assert version == 1
        assert isinstance(updater.last_error, RuntimeError)

    def test_background_loop_start_stop(self, trainer, registry,
                                        beauty_tiny):
        ingestor = DeltaIngestor(trainer.built, trainer.env,
                                 compact_every=10_000)
        delta = [s for s in beauty_tiny.split.validation
                 if len(s.items) >= 2][:6]
        updater = OnlineUpdater(trainer, ingestor, registry,
                                min_sessions=4, max_steps=1,
                                interval_s=0.01)
        with updater:
            assert updater.running
            ingestor.ingest_sessions(delta)
            deadline = threading.Event()
            for _ in range(500):
                if registry.latest() is not None:
                    break
                deadline.wait(0.01)
        assert not updater.running
        assert registry.latest() >= 1
        with pytest.raises(RuntimeError, match="already started"):
            updater.start()
            updater.start()
        updater.stop()


# ----------------------------------------------------------------------
# Checkpoint round-trip through the registry (satellite: bit-identical)
# ----------------------------------------------------------------------
class TestCheckpointRoundTrip:
    def test_registry_round_trip_bit_identical_rankings(
            self, trainer, registry, sessions, beauty_tiny, beauty_kg,
            beauty_transe):
        version = registry.publish(trainer.agent.state_dict(),
                                   meta={"model": "narm"})
        expected = [rec.ranked_items for rec
                    in trainer.recommend_sessions(sessions, k=10)]

        other_cfg = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                               seed=999)  # different init seed
        other = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                            config=other_cfg, transe=beauty_transe)
        state, _ = registry.load(version)
        other.agent.load_state_dict(state)
        got = [rec.ranked_items for rec
               in other.recommend_sessions(sessions, k=10)]
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            np.testing.assert_array_equal(a, b)

    def test_clone_agent_is_isolated(self, trainer, sessions):
        """Trainable params are private copies; frozen TransE tables
        are aliased read-only (cheap swap clones — see clone_agent)."""
        clone = clone_agent(trainer.agent)
        state = trainer.agent.state_dict()
        clone_params = dict(clone.named_parameters())
        frozen = {"policy.entity_emb.weight", "policy.relation_emb.weight"}
        for name, param in trainer.agent.named_parameters():
            if name in frozen:
                # Shared payload (same object id) and write-protected.
                assert clone_params[name].data is param.data
                assert not clone_params[name].data.flags.writeable
            else:
                assert clone_params[name].data is not param.data
            np.testing.assert_array_equal(clone_params[name].data,
                                          param.data)
        # Perturbing the clone's trainable state must not leak back.
        clone_params["encoder.item_embedding.weight"].data += 1.0
        for name, value in trainer.agent.state_dict().items():
            np.testing.assert_array_equal(value, state[name])
        # Loading a checkpoint into the clone keeps the frozen tables
        # shared (identical payload -> copy-on-write skip).
        clone.load_state_dict(state)
        for name in frozen:
            assert clone_params[name].data \
                is dict(trainer.agent.named_parameters())[name].data


# ----------------------------------------------------------------------
# Live hot swap (satellite: under concurrent traffic)
# ----------------------------------------------------------------------
class TestHotSwap:
    def test_swap_is_bit_identical_to_fresh_server(self, trainer,
                                                   registry, sessions):
        v1 = registry.publish(trainer.agent.state_dict())
        with trainer.serve(workers=1, registry=registry) as server:
            server.swap_model(v1)
            assert server.model_version == v1
            swapped = [np.asarray(r.items, dtype=np.int64) for r in
                       server.recommend_many(sessions[:12], k=5)]
        with trainer.serve(workers=1, registry=registry) as fresh:
            fresh.swap_model(v1)
            baseline = [np.asarray(r.items, dtype=np.int64) for r in
                        fresh.recommend_many(sessions[:12], k=5)]
        for a, b in zip(swapped, baseline):
            np.testing.assert_array_equal(a, b)

    def test_swap_does_not_flush_cache(self, trainer, registry,
                                       sessions):
        v1 = registry.publish(trainer.agent.state_dict())
        v2 = registry.publish(trainer.agent.state_dict())
        with trainer.serve(workers=1, registry=registry) as server:
            server.swap_model(v1)
            server.recommend_one(sessions[0], k=5)
            entries_before = len(server.cache)
            assert entries_before >= 1
            server.swap_model(v2)
            assert len(server.cache) == entries_before  # kept, not hit
            # Same request now misses (new version tag) and re-caches.
            result = server.recommend_one(sessions[0], k=5)
            assert not result.cached
            assert len(server.cache) == entries_before + 1
            snapshot = server.stats()
        assert snapshot.cache_by_version[v1]["misses"] == 1
        assert snapshot.cache_by_version[v2]["misses"] == 1
        assert snapshot.swaps == 2
        assert len(snapshot.swap_latency_ms) == 2

    def test_same_version_traffic_still_hits_after_swap(self, trainer,
                                                        registry,
                                                        sessions):
        v1 = registry.publish(trainer.agent.state_dict())
        with trainer.serve(workers=1, registry=registry) as server:
            server.swap_model(v1)
            first = server.recommend_one(sessions[0], k=5)
            second = server.recommend_one(sessions[0], k=5)
            assert second.cached
            assert second.items == first.items

    def test_swap_under_concurrent_traffic(self, trainer, registry,
                                           sessions, beauty_tiny):
        """Clients hammer recommend_one while checkpoints publish and
        swap; no request may fail, and post-swap answers must match a
        fresh server on the final checkpoint."""
        v1 = registry.publish(trainer.agent.state_dict())
        errors = []
        stop = threading.Event()

        with trainer.serve(max_batch=8, max_wait_ms=1.0, workers=2,
                           registry=registry) as server:
            server.swap_model(v1)

            def client(shard):
                try:
                    while not stop.is_set():
                        for session in shard:
                            server.recommend_one(session, k=5)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=client,
                                        args=(sessions[i::4],))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            # Publish + swap repeatedly while traffic flows.
            ingestor = DeltaIngestor(trainer.built, trainer.env,
                                     compact_every=10_000)
            updater = OnlineUpdater(trainer, ingestor, registry,
                                    min_sessions=1, max_steps=1,
                                    on_publish=server.swap_model)
            delta = [s for s in beauty_tiny.split.validation
                     if len(s.items) >= 2]
            for round_id in range(2):
                ingestor.ingest_sessions(
                    delta[round_id * 4:(round_id + 1) * 4])
                updater.run_once(force=True)
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors
            final_version = registry.latest()
            assert server.model_version == final_version
            swapped = [np.asarray(r.items, dtype=np.int64) for r in
                       server.recommend_many(sessions[:8], k=5)]

        with trainer.serve(workers=1, registry=registry) as fresh:
            fresh.swap_model(final_version)
            baseline = [np.asarray(r.items, dtype=np.int64) for r in
                        fresh.recommend_many(sessions[:8], k=5)]
        for a, b in zip(swapped, baseline):
            np.testing.assert_array_equal(a, b)

    def test_swap_without_registry_raises(self, trainer):
        with trainer.serve(workers=1) as server:
            with pytest.raises(ValueError, match="CheckpointRegistry"):
                server.swap_model(1)

    def test_swap_with_explicit_state(self, trainer, sessions):
        state = trainer.agent.state_dict()
        with trainer.serve(workers=1) as server:
            latency = server.swap_model(state=state, version=7)
            assert latency >= 0.0
            assert server.model_version == 7
            result = server.recommend_one(sessions[0], k=5)
            assert len(result.items) == 5
            with pytest.raises(ValueError, match="version tag"):
                server.swap_model(state=state)


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------
class TestOnlineConfig:
    def test_online_knob_validation(self):
        with pytest.raises(ValueError, match="online_min_sessions"):
            REKSConfig(online_min_sessions=0)
        with pytest.raises(ValueError, match="online_max_steps"):
            REKSConfig(online_max_steps=0)
        with pytest.raises(ValueError, match="online_interval_s"):
            REKSConfig(online_interval_s=0)
        with pytest.raises(ValueError, match="online_keep_checkpoints"):
            REKSConfig(online_keep_checkpoints=-1)
        with pytest.raises(ValueError, match="online_compact_every"):
            REKSConfig(online_compact_every=0)

    def test_updater_defaults_from_config(self, trainer, registry):
        ingestor = DeltaIngestor(trainer.built, trainer.env)
        updater = OnlineUpdater(trainer, ingestor, registry)
        assert updater.min_sessions == trainer.config.online_min_sessions
        assert updater.max_steps == trainer.config.online_max_steps
        assert updater.interval_s == trainer.config.online_interval_s
