"""Tests for extension features: diversity report, prefix evaluation,
encoder fallback, KG-embedding finetuning, and bucketed frontiers."""

import numpy as np
import pytest

from repro.core import Explainer, REKSConfig, REKSTrainer
from repro.data.schema import Session


@pytest.fixture(scope="module")
def fitted(beauty_tiny, beauty_kg, beauty_transe):
    cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                     action_cap=60, sample_sizes=(100, 4), seed=5)
    trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                          config=cfg, transe=beauty_transe)
    trainer.fit()
    return trainer


class TestDiversityReport:
    def test_report_structure(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        cases = explainer.explain_sessions(beauty_tiny.split.test[:10], k=5)
        report = explainer.diversity_report(cases)
        assert report["cases"] == 10
        assert report["recommendations"] > 0
        assert 0.0 < report["path_coverage"] <= 1.0
        assert 0.0 <= report["mean_relevance"] <= 1.0
        assert report["distinct_patterns"] >= 1
        assert sum(report["pattern_counts"].values()) <= report[
            "recommendations"]

    def test_patterns_are_two_hop(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        cases = explainer.explain_sessions(beauty_tiny.split.test[:5], k=3)
        report = explainer.diversity_report(cases)
        for pattern in report["pattern_counts"]:
            assert pattern.count("->") == 1  # two relations per path

    def test_empty_cases(self, fitted):
        report = Explainer(fitted).diversity_report([])
        assert report["cases"] == 0
        assert report["path_coverage"] == 0.0


class TestPrefixEvaluation:
    def test_expands_sessions(self, fitted, beauty_tiny):
        sessions = beauty_tiny.split.test[:10]
        metrics = fitted.evaluate_prefixes(sessions, ks=(10,))
        assert 0.0 <= metrics["HR@10"] <= 100.0

    def test_prefix_harder_or_equal(self, fitted, beauty_tiny):
        """Short prefixes are harder; prefix-HR is typically <= last-item
        HR on this generator (weak check with slack for noise)."""
        sessions = beauty_tiny.split.test[:40]
        last = fitted.evaluate(sessions, ks=(10,))["HR@10"]
        prefix = fitted.evaluate_prefixes(sessions, ks=(10,))["HR@10"]
        assert prefix <= last + 15.0


class TestEncoderFallback:
    def test_fallback_fills_ranking(self, beauty_tiny, beauty_kg,
                                    beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=64,
                         action_cap=60, fallback_to_encoder=True, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                              config=cfg, transe=beauty_transe)
        trainer.fit()
        rec = trainer.recommend_sessions(beauty_tiny.split.test[:8],
                                         k=20)[0]
        # With fallback every non-padding item gets some score, so the
        # full top-20 is populated.
        assert (rec.scores[:, 1:] > 0).all()

    def test_fallback_preserves_path_ranking(self, beauty_tiny, beauty_kg,
                                             beauty_transe):
        """Fallback scores must never outrank genuine path scores."""
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=64,
                         action_cap=60, fallback_to_encoder=True, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                              config=cfg, transe=beauty_transe)
        trainer.fit()
        recs = trainer.recommend_sessions(beauty_tiny.split.test[:8], k=20)
        rec = recs[0]
        for (row, item), path in rec.paths.items():
            fallback_scores = [
                rec.scores[row, j] for j in range(1, rec.scores.shape[1])
                if (row, j) not in rec.paths and rec.scores[row, j] > 0]
            if fallback_scores:
                assert rec.scores[row, item] > max(fallback_scores)


class TestFinetuneKGEmbeddings:
    def test_kg_embeddings_update_when_enabled(self, beauty_tiny,
                                               beauty_kg, beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=64,
                         action_cap=40, finetune_kg_embeddings=True, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                              config=cfg, transe=beauty_transe)
        before = trainer.policy.entity_emb.weight.data.copy()
        trainer.fit()
        after = trainer.policy.entity_emb.weight.data
        assert not np.allclose(before, after)

    def test_kg_embeddings_frozen_by_default(self, beauty_tiny, beauty_kg,
                                             beauty_transe):
        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=64,
                         action_cap=40, seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                              config=cfg, transe=beauty_transe)
        before = trainer.policy.entity_emb.weight.data.copy()
        trainer.fit()
        np.testing.assert_allclose(trainer.policy.entity_emb.weight.data,
                                   before)


class TestBucketedFrontiers:
    def test_training_step_with_buckets_backprops(self, beauty_tiny,
                                                  beauty_kg, beauty_transe):
        """Bucketed walks keep the tape intact: loss is finite and
        gradients reach the policy through the concatenated buckets."""
        from repro.data.loader import SessionBatcher

        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=32,
                         action_cap=60, sample_sizes=(100, 4),
                         frontier_buckets=3, seed=5)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                              config=cfg, transe=beauty_transe)
        batch = next(iter(SessionBatcher(beauty_tiny.split.train,
                                         batch_size=32, shuffle=False)))
        trainer.agent.train()
        loss, stats = trainer.agent.losses(batch)
        loss.backward()
        assert np.isfinite(stats.loss)
        assert stats.num_paths > 0
        grads = [p.grad for p in trainer.policy.parameters()
                 if p.requires_grad and p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)

    def test_bucketed_inference_matches_flat_candidates(self, beauty_tiny,
                                                        beauty_kg,
                                                        beauty_transe):
        """Same model, bucketed vs flat frontier: identical candidate
        item sets (ordering of paths may differ, legality may not)."""
        from repro.autograd import no_grad
        from repro.data.loader import SessionBatcher

        cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=32,
                         action_cap=60, sample_sizes=(100, 4), seed=5)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                              config=cfg, transe=beauty_transe)
        batch = next(iter(SessionBatcher(beauty_tiny.split.test,
                                         batch_size=32, shuffle=False)))
        trainer.agent.eval()
        with no_grad():
            se = trainer.encoder.encode(batch)
            flat = trainer.agent.walk(se, batch)
            trainer.agent.config.frontier_buckets = 4
            try:
                bucketed = trainer.agent.walk(se, batch)
            finally:
                trainer.agent.config.frontier_buckets = 1
        def key_set(rollout):
            return {(int(s), int(t)) for s, t in
                    zip(rollout.session_idx, rollout.terminals)}
        assert key_set(flat) == key_set(bucketed)
