"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], param: Tensor,
                       eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param``."""
    grad = np.zeros_like(param.data, dtype=np.float64)
    flat = param.data.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = float(fn().data)
        flat[i] = original - eps
        low = float(fn().data)
        flat[i] = original
        out[i] = (high - low) / (2.0 * eps)
    return grad


def assert_grad_close(fn: Callable[[], Tensor], params: Sequence[Tensor],
                      rtol: float = 1e-2, atol: float = 1e-3) -> None:
    """Check autograd gradients of scalar ``fn()`` against finite diffs.

    ``fn`` must rebuild the graph on every call (so the numerical probe
    sees perturbed parameters).
    """
    for p in params:
        p.grad = None
    loss = fn()
    loss.backward()
    for i, p in enumerate(params):
        assert p.grad is not None, f"param {i} received no gradient"
        numeric = numerical_gradient(fn, p)
        np.testing.assert_allclose(
            p.grad.astype(np.float64), numeric, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for parameter {i}")


def make_tensor(rng: np.random.Generator, *shape: int,
                requires_grad: bool = True, scale: float = 1.0) -> Tensor:
    """Random float64 tensor (float64 keeps finite differences accurate)."""
    data = rng.standard_normal(shape) * scale
    return Tensor(data, requires_grad=requires_grad, dtype=np.float64)
