"""Unit tests for the real-format loaders, using tiny files on disk."""

import json

import numpy as np
import pytest

from repro.data.real import load_amazon, load_movielens
from repro.data.schema import validate_dataset
from repro.kg import build_kg

DAY = 86_400


@pytest.fixture()
def amazon_files(tmp_path):
    """Write a miniature Amazon-format dump: 3 users, 4 products."""
    reviews = []
    # Give every product >= 5 interactions by cycling users over days.
    for day in range(6):
        for user, items in (("u1", ["A1", "A2"]), ("u2", ["A2", "A3"]),
                            ("u3", ["A3", "A1", "A4"])):
            for i, asin in enumerate(items):
                reviews.append({
                    "reviewerID": user,
                    "asin": asin,
                    "unixReviewTime": day * DAY + i * 60,
                })
    meta = [
        {"asin": "A1", "title": "Shampoo", "brand": "Dove",
         "categories": [["Beauty", "Hair"]],
         "related": {"also_bought": ["R1", "R2"],
                     "bought_together": ["R1"]}},
        {"asin": "A2", "title": "Conditioner", "brand": "Dove",
         "categories": [["Beauty", "Hair"]],
         "related": {"also_bought": ["R1"], "also_viewed": ["R3"]}},
        {"asin": "A3", "title": "Hair Gel", "brand": "Gels Inc",
         "categories": [["Beauty", "Styling"]]},
        {"asin": "A4", "title": "Comb", "categories": [["Beauty"]],
         "related": {}},
    ]
    reviews_path = tmp_path / "reviews.json"
    meta_path = tmp_path / "meta.json"
    reviews_path.write_text("\n".join(json.dumps(r) for r in reviews))
    meta_path.write_text("\n".join(json.dumps(m) for m in meta))
    return reviews_path, meta_path


class TestAmazonLoader:
    def test_loads_valid_dataset(self, amazon_files):
        ds = load_amazon(*amazon_files, name="mini")
        assert validate_dataset(ds) == []
        assert ds.domain == "amazon"
        assert ds.n_items >= 3

    def test_metadata_mapped(self, amazon_files):
        ds = load_amazon(*amazon_files)
        names = set(ds.item_names.values())
        assert "Shampoo" in names
        shampoo = next(m for m in ds.products.values()
                       if m.name == "Shampoo")
        conditioner = next(m for m in ds.products.values()
                           if m.name == "Conditioner")
        # Shared brand (Dove) must map to the same brand id.
        assert shampoo.brand_id == conditioner.brand_id
        # Shared related ASIN R1 must map to the same related id.
        assert set(shampoo.also_bought) & set(conditioner.also_bought)

    def test_leaf_category_used(self, amazon_files):
        ds = load_amazon(*amazon_files)
        shampoo = next(m for m in ds.products.values()
                       if m.name == "Shampoo")
        assert ds.category_names[shampoo.category_id] == "Hair"

    def test_sessions_by_user_day(self, amazon_files):
        ds = load_amazon(*amazon_files)
        assert all(len(s) >= 2 for s in ds.sessions)

    def test_feeds_kg_builder(self, amazon_files):
        ds = load_amazon(*amazon_files)
        built = build_kg(ds)
        assert built.kg.num_triples > 0
        assert "co_occur" in built.kg.relation_names

    def test_reviews_without_meta_skipped(self, amazon_files, tmp_path):
        reviews_path, meta_path = amazon_files
        extra = {"reviewerID": "u9", "asin": "GHOST",
                 "unixReviewTime": 0}
        reviews_path.write_text(reviews_path.read_text() + "\n"
                                + json.dumps(extra))
        ds = load_amazon(reviews_path, meta_path)
        assert all("GHOST" not in n for n in ds.item_names.values())


@pytest.fixture()
def movielens_files(tmp_path):
    """Write a miniature MovieLens-1M-format dump."""
    movies = ["1::Toy Story (1995)::Animation|Comedy",
              "2::Jumanji (1995)::Adventure|Fantasy",
              "3::Heat (1995)::Action|Crime",
              "4::Casino (1995)::Drama"]
    ratings = []
    for day in range(6):
        for user, picks in ((1, [1, 2]), (2, [2, 3]), (3, [3, 1, 4])):
            for i, movie in enumerate(picks):
                ratings.append(f"{user}::{movie}::4::{day * DAY + i * 60}")
    movies_path = tmp_path / "movies.dat"
    ratings_path = tmp_path / "ratings.dat"
    movies_path.write_text("\n".join(movies), encoding="latin-1")
    ratings_path.write_text("\n".join(ratings), encoding="latin-1")
    satori = [
        {"movie_id": 1, "director": "John Lasseter",
         "actors": ["Tom Hanks", "Tim Allen"], "writer": "Joss Whedon",
         "language": "English", "country": "USA"},
        {"movie_id": 2, "director": "Joe Johnston",
         "actors": ["Robin Williams"], "language": "English",
         "country": "USA"},
    ]
    satori_path = tmp_path / "satori.json"
    satori_path.write_text("\n".join(json.dumps(s) for s in satori))
    return ratings_path, movies_path, satori_path


class TestMovieLensLoader:
    def test_loads_valid_dataset(self, movielens_files):
        ratings, movies, _ = movielens_files
        ds = load_movielens(ratings, movies)
        assert validate_dataset(ds) == []
        assert ds.domain == "movielens"

    def test_genres_parsed(self, movielens_files):
        ratings, movies, _ = movielens_files
        ds = load_movielens(ratings, movies)
        toy_story = next(m for m in ds.movies.values()
                         if m.name.startswith("Toy Story"))
        assert len(toy_story.genre_ids) == 2

    def test_satori_side_table(self, movielens_files):
        ratings, movies, satori = movielens_files
        ds = load_movielens(ratings, movies, satori_path=satori)
        toy_story = next(m for m in ds.movies.values()
                         if m.name.startswith("Toy Story"))
        assert toy_story.director_id is not None
        assert len(toy_story.actor_ids) == 2

    def test_without_satori_attributes_absent(self, movielens_files):
        ratings, movies, _ = movielens_files
        ds = load_movielens(ratings, movies)
        assert all(m.director_id is None for m in ds.movies.values())

    def test_rating_bucket_from_mean(self, movielens_files):
        ratings, movies, _ = movielens_files
        ds = load_movielens(ratings, movies)
        # All ratings are 4 -> bucket index 3 (0-based 1..5 scale).
        assert all(m.rating_id == 3 for m in ds.movies.values())

    def test_feeds_kg_builder(self, movielens_files):
        ratings, movies, satori = movielens_files
        ds = load_movielens(ratings, movies, satori_path=satori)
        built = build_kg(ds)
        assert "directed_by" in built.kg.relation_names
        assert built.kg.num_triples > 0
