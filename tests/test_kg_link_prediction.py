"""Unit tests for TransE link-prediction diagnostics."""

import numpy as np
import pytest

from repro.kg import TransE, TransEConfig


class TestLinkPrediction:
    def test_metric_ranges(self, beauty_kg, beauty_transe):
        metrics = beauty_transe.link_prediction_metrics(beauty_kg.kg,
                                                        sample_size=100)
        assert 0.0 <= metrics["hits@1"] <= metrics["hits@10"] <= 1.0
        assert 0.0 < metrics["mrr"] <= 1.0
        assert metrics["mean_rank"] >= 1.0

    def test_training_improves_over_random(self, beauty_kg, beauty_transe):
        untrained = TransE(beauty_kg.kg.num_entities,
                           beauty_kg.kg.num_relations,
                           TransEConfig(dim=16, epochs=0, seed=5))
        random_metrics = untrained.link_prediction_metrics(
            beauty_kg.kg, sample_size=150)
        trained_metrics = beauty_transe.link_prediction_metrics(
            beauty_kg.kg, sample_size=150)
        assert trained_metrics["mrr"] > random_metrics["mrr"]
        assert trained_metrics["mean_rank"] < random_metrics["mean_rank"]

    def test_deterministic_under_seed(self, beauty_kg, beauty_transe):
        a = beauty_transe.link_prediction_metrics(beauty_kg.kg, seed=3)
        b = beauty_transe.link_prediction_metrics(beauty_kg.kg, seed=3)
        assert a == b

    def test_empty_kg(self):
        from repro.kg.graph import KnowledgeGraph

        kg = KnowledgeGraph()
        kg.add_entity_type("n", 3)
        kg.finalize()
        model = TransE(3, 1, TransEConfig(dim=4, epochs=0))
        metrics = model.link_prediction_metrics(kg)
        assert metrics["mrr"] == 0.0
