"""Session-scoped fixtures: tiny datasets, KGs, and TransE embeddings.

Everything here is deterministic and small so the full suite stays fast;
fixtures are shared across test modules to avoid regenerating data.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.data import AmazonLikeGenerator, MovieLensLikeGenerator
from repro.kg import TransE, TransEConfig, build_kg


@pytest.fixture(scope="session")
def beauty_tiny():
    """Tiny synthetic Amazon-Beauty dataset."""
    return AmazonLikeGenerator("beauty", scale="tiny", seed=7).generate()


@pytest.fixture(scope="session")
def baby_tiny():
    """Tiny synthetic Amazon-Baby dataset (single category quirk)."""
    return AmazonLikeGenerator("baby", scale="tiny", seed=7).generate()


@pytest.fixture(scope="session")
def movielens_tiny():
    """Tiny synthetic MovieLens dataset (no user entities in its KG)."""
    return MovieLensLikeGenerator(scale="tiny", seed=3).generate()


@pytest.fixture(scope="session")
def beauty_kg(beauty_tiny):
    """Finalized Beauty KG bundle with users."""
    return build_kg(beauty_tiny)


@pytest.fixture(scope="session")
def beauty_kg_no_users(beauty_tiny):
    """Beauty KG without user entities (Table IX ablation)."""
    return build_kg(beauty_tiny, include_users=False)


@pytest.fixture(scope="session")
def movielens_kg(movielens_tiny):
    return build_kg(movielens_tiny)


@pytest.fixture(scope="session")
def beauty_transe(beauty_kg):
    """Pre-trained TransE on the Beauty KG (dim 16, shared for speed)."""
    model = TransE(beauty_kg.kg.num_entities, beauty_kg.kg.num_relations,
                   TransEConfig(dim=16, epochs=5, seed=5))
    model.fit(beauty_kg.kg)
    return model


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
