"""Unit tests for shared utilities."""

import time

import numpy as np
import pytest

from repro.utils import Stopwatch, batched, make_rng, spawn_rngs


class TestRngs:
    def test_make_rng_deterministic(self):
        a = make_rng(5).random(3)
        b = make_rng(5).random(3)
        np.testing.assert_allclose(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [r.random(4) for r in rngs]
        assert not np.allclose(draws[0], draws[1])

    def test_spawn_reproducible(self):
        a = [r.random(2) for r in spawn_rngs(1, 2)]
        b = [r.random(2) for r in spawn_rngs(1, 2)]
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009


class TestBatched:
    def test_chunks(self):
        chunks = list(batched(np.arange(7), 3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        np.testing.assert_array_equal(np.concatenate(chunks), np.arange(7))

    def test_empty(self):
        assert list(batched(np.arange(0), 4)) == []
