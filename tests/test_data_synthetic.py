"""Unit tests for the synthetic Amazon and MovieLens generators."""

import numpy as np
import pytest

from repro.data import AmazonLikeGenerator, MovieLensLikeGenerator
from repro.data.schema import validate_dataset
from repro.data.synthetic import _scaled


class TestPresets:
    def test_flavor_ratios_follow_paper(self):
        beauty = _scaled("beauty", "small")
        baby = _scaled("baby", "small")
        # Beauty has ~238 categories, Baby famously has exactly 1.
        assert baby.n_categories == 1
        assert beauty.n_categories > 5
        assert beauty.n_brands > baby.n_brands

    def test_unknown_flavor_raises(self):
        with pytest.raises(ValueError):
            _scaled("garden", "small")

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            _scaled("beauty", "huge")

    def test_scales_are_monotone(self):
        tiny = _scaled("beauty", "tiny")
        small = _scaled("beauty", "small")
        assert small.n_products > tiny.n_products
        assert small.n_sessions > tiny.n_sessions


class TestAmazonGeneration:
    def test_dataset_is_valid(self, beauty_tiny):
        assert validate_dataset(beauty_tiny) == []

    def test_deterministic_under_seed(self):
        a = AmazonLikeGenerator("beauty", scale="tiny", seed=9).generate()
        b = AmazonLikeGenerator("beauty", scale="tiny", seed=9).generate()
        assert [s.items for s in a.sessions] == [s.items for s in b.sessions]
        assert a.n_items == b.n_items

    def test_different_seeds_differ(self):
        a = AmazonLikeGenerator("beauty", scale="tiny", seed=1).generate()
        b = AmazonLikeGenerator("beauty", scale="tiny", seed=2).generate()
        assert [s.items for s in a.sessions] != [s.items for s in b.sessions]

    def test_metadata_covers_all_items(self, beauty_tiny):
        assert set(beauty_tiny.products.keys()) == set(
            range(1, beauty_tiny.n_items + 1))
        for meta in beauty_tiny.products.values():
            assert 0 <= meta.brand_id < beauty_tiny.n_brands
            assert 0 <= meta.category_id < beauty_tiny.n_categories
            for rel in meta.also_bought + meta.also_viewed + meta.bought_together:
                assert 0 <= rel < beauty_tiny.n_related

    def test_min_session_length_two(self, beauty_tiny):
        assert all(len(s) >= 2 for s in beauty_tiny.sessions)

    def test_item_support_at_least_five(self, beauty_tiny):
        from collections import Counter
        support = Counter(i for s in beauty_tiny.sessions for i in s.items)
        assert min(support.values()) >= 5

    def test_item_names_populated(self, beauty_tiny):
        assert len(beauty_tiny.item_names) == beauty_tiny.n_items
        assert all(name.startswith("beauty-product-")
                   for name in beauty_tiny.item_names.values())

    def test_sessions_have_predictive_structure(self, beauty_tiny):
        """The next item should repeat the previous item's cluster far
        more often than chance — this is the signal REKS exploits."""
        products = beauty_tiny.products
        same_cat = 0
        total = 0
        for s in beauty_tiny.sessions:
            for a, b in zip(s.items[:-1], s.items[1:]):
                total += 1
                shared = (set(products[a].also_bought)
                          & set(products[b].also_bought))
                if shared or products[a].category_id == products[b].category_id:
                    same_cat += 1
        assert same_cat / total > 0.5

    def test_baby_single_category(self, baby_tiny):
        cats = {m.category_id for m in baby_tiny.products.values()}
        assert cats == {0}


class TestMovieLensGeneration:
    def test_dataset_is_valid(self, movielens_tiny):
        assert validate_dataset(movielens_tiny) == []

    def test_metadata_ranges(self, movielens_tiny):
        ds = movielens_tiny
        for meta in ds.movies.values():
            assert meta.genre_ids and all(0 <= g < ds.n_genres
                                          for g in meta.genre_ids)
            assert 0 <= meta.director_id < ds.n_directors
            assert meta.actor_ids and all(0 <= a < ds.n_actors
                                          for a in meta.actor_ids)
            assert 0 <= meta.rating_id < ds.n_ratings

    def test_deterministic(self):
        a = MovieLensLikeGenerator(scale="tiny", seed=5).generate()
        b = MovieLensLikeGenerator(scale="tiny", seed=5).generate()
        assert [s.items for s in a.sessions] == [s.items for s in b.sessions]

    def test_domain_marker(self, movielens_tiny, beauty_tiny):
        assert movielens_tiny.domain == "movielens"
        assert beauty_tiny.domain == "amazon"
