"""Unit tests for semantic path utilities."""

import numpy as np
import pytest

from repro.kg.paths import (
    SemanticPath,
    mean_path_embedding,
    path_diversity,
    render_path,
)
from repro.kg.graph import KnowledgeGraph


@pytest.fixture()
def named_kg():
    kg = KnowledgeGraph()
    kg.add_entity_type("product", 3)
    kg.add_entity_type("category", 1)
    kg.add_relation("belong_to")
    kg.add_triples([0, 1], 0, [3, 3])
    kg.add_triples([3, 3], 0, [0, 1])
    kg.finalize()
    kg.entity_names[0] = "Shampoo"
    kg.entity_names[1] = "Conditioner"
    kg.entity_names[3] = "HairCare"
    return kg


class TestSemanticPath:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            SemanticPath(entities=[1, 2, 3], relations=[0])

    def test_properties(self):
        p = SemanticPath(entities=[0, 3, 1], relations=[0, 0], prob=0.5)
        assert p.terminal == 1
        assert p.hops == 2
        assert p.is_simple()

    def test_non_simple_detected(self):
        p = SemanticPath(entities=[0, 3, 0], relations=[0, 0])
        assert not p.is_simple()

    def test_pattern(self, named_kg):
        p = SemanticPath(entities=[0, 3, 1], relations=[0, 0])
        assert p.pattern(named_kg) == ("belong_to", "belong_to")


class TestRendering:
    def test_render_uses_names(self, named_kg):
        p = SemanticPath(entities=[0, 3, 1], relations=[0, 0])
        text = render_path(p, named_kg)
        assert text == ("Shampoo --belong_to--> HairCare "
                        "--belong_to--> Conditioner")

    def test_render_falls_back_to_type_local(self, named_kg):
        p = SemanticPath(entities=[2, 3, 1], relations=[0, 0])
        assert render_path(p, named_kg).startswith("product:2 ")


class TestEmbeddingsAndDiversity:
    def test_mean_path_embedding(self):
        entities = np.arange(12, dtype=np.float64).reshape(4, 3)
        relations = np.ones((2, 3), dtype=np.float64)
        p = SemanticPath(entities=[0, 1, 2], relations=[0, 0])
        emb = mean_path_embedding(entities, relations, p)
        manual = (entities[0] + relations[0] + entities[1]
                  + relations[0] + entities[2]) / 5.0
        np.testing.assert_allclose(emb, manual)

    def test_path_diversity(self, named_kg):
        a = SemanticPath(entities=[0, 3, 1], relations=[0, 0])
        b = SemanticPath(entities=[1, 3, 0], relations=[0, 0])
        assert path_diversity([a, b], named_kg) == pytest.approx(0.5)
        assert path_diversity([], named_kg) == 0.0
