"""Unit tests for the simulated user study (Fig. 9 substitute)."""

import numpy as np
import pytest

from repro.core.explain import Explanation, RecommendedItem
from repro.eval.user_study import (
    PERSPECTIVES,
    UserStudyConfig,
    case_quality_features,
    simulate_user_study,
)
from repro.kg.paths import SemanticPath


def good_case():
    path = SemanticPath(entities=[1, 2, 3], relations=[0, 1], prob=0.4)
    recs = [RecommendedItem(item=5, score=0.4, path=path, relevance=0.9),
            RecommendedItem(item=6, score=0.3, path=path, relevance=0.85)]
    return Explanation(session_items=[1, 2], user_id=0, target=5,
                       recommendations=recs)


def bad_case():
    recs = [RecommendedItem(item=5, score=0.1, path=None, relevance=0.0)]
    return Explanation(session_items=[1], user_id=0, target=9,
                       recommendations=recs)


class TestFeatures:
    def test_good_case_features(self):
        f = case_quality_features(good_case())
        assert f["validity"] == 1.0
        assert f["hit"] == 1.0
        assert f["relevance"] > 0.8
        assert f["readability"] == 1.0

    def test_bad_case_features(self):
        f = case_quality_features(bad_case())
        assert f["validity"] == 0.0
        assert f["hit"] == 0.0

    def test_empty_recommendations(self):
        e = Explanation(session_items=[1], user_id=0, target=2,
                        recommendations=[])
        f = case_quality_features(e)
        assert all(v == 0.0 for v in f.values())

    def test_long_paths_hurt_readability(self):
        long_path = SemanticPath(entities=[1, 2, 3, 4, 5],
                                 relations=[0, 0, 0, 0])
        e = Explanation(session_items=[1], user_id=0, target=9,
                        recommendations=[RecommendedItem(
                            item=5, score=0.1, path=long_path,
                            relevance=0.5)])
        assert case_quality_features(e)["readability"] == pytest.approx(0.5)


class TestSimulation:
    def test_all_perspectives_reported(self):
        out = simulate_user_study([good_case()] * 5,
                                  UserStudyConfig(n_subjects=10, seed=1))
        assert set(out) == set(PERSPECTIVES)
        for stats in out.values():
            assert 1.0 <= stats["mean"] <= 5.0
            assert stats["std"] >= 0.0

    def test_good_cases_score_well(self):
        out = simulate_user_study([good_case()] * 10,
                                  UserStudyConfig(n_subjects=20, seed=2))
        assert out["Satisfaction"]["mean"] > 3.5
        assert out["Transparency"]["mean"] > 3.5
        assert out["Unusability"]["mean"] < 2.5
        assert out["Difficult to understand"]["mean"] < 2.5

    def test_bad_cases_score_poorly(self):
        good = simulate_user_study([good_case()] * 10,
                                   UserStudyConfig(n_subjects=20, seed=3))
        bad = simulate_user_study([bad_case()] * 10,
                                  UserStudyConfig(n_subjects=20, seed=3))
        assert bad["Satisfaction"]["mean"] < good["Satisfaction"]["mean"]
        assert bad["Unusability"]["mean"] > good["Unusability"]["mean"]

    def test_deterministic_under_seed(self):
        a = simulate_user_study([good_case()] * 3,
                                UserStudyConfig(n_subjects=5, seed=9))
        b = simulate_user_study([good_case()] * 3,
                                UserStudyConfig(n_subjects=5, seed=9))
        assert a == b

    def test_empty_cases_raise(self):
        with pytest.raises(ValueError):
            simulate_user_study([])
