"""Unit tests shared across the five session encoders."""

import numpy as np
import pytest

from repro.data.loader import SessionBatcher
from repro.data.schema import Session
from repro.models import MODEL_NAMES, create_encoder
from repro.models.bert4rec import BERT4REC

N_ITEMS = 20
DIM = 8


@pytest.fixture()
def batch():
    sessions = [Session([1, 2, 3, 4], 0, 0), Session([5, 6], 1, 0),
                Session([7, 8, 9], 2, 0)]
    batcher = SessionBatcher(sessions, batch_size=8, shuffle=False)
    return next(iter(batcher))


def build(name, rng=None, **kw):
    rng = rng or np.random.default_rng(0)
    return create_encoder(name, n_items=N_ITEMS, dim=DIM, rng=rng, **kw)


class TestAllEncoders:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_session_repr_shape(self, name, batch):
        enc = build(name)
        enc.eval()
        se = enc.encode(batch)
        assert se.shape == (3, DIM)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_logits_shape_and_padding_mask(self, name, batch):
        enc = build(name)
        enc.eval()
        _, logits = enc(batch)
        assert logits.shape == (3, N_ITEMS + 1)
        assert (logits.data[:, 0] <= -1e8).all()

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_gradients_reach_item_embeddings(self, name, batch):
        enc = build(name)
        enc.train()
        _, logits = enc(batch)
        logits.sum().backward()
        assert enc.item_embedding.weight.grad is not None
        assert np.abs(enc.item_embedding.weight.grad).sum() > 0

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_deterministic_in_eval_mode(self, name, batch):
        enc = build(name)
        enc.eval()
        a = enc.encode(batch).data.copy()
        b = enc.encode(batch).data.copy()
        np.testing.assert_allclose(a, b)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_item_init_respected(self, name):
        init = np.random.default_rng(1).standard_normal(
            (N_ITEMS + 1, DIM)).astype(np.float32)
        init[0] = 0.0
        enc = build(name, item_init=init)
        np.testing.assert_allclose(
            enc.item_embedding.weight.data[1], init[1], rtol=1e-6)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_item_init_shape_check(self, name):
        bad = np.zeros((N_ITEMS + 5, DIM), dtype=np.float32)
        with pytest.raises(ValueError):
            build(name, item_init=bad)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_padding_invariance(self, name):
        """Adding a second (longer) session to the batch must not change
        the first session's representation in eval mode."""
        enc = build(name)
        enc.eval()
        s1 = Session([1, 2, 3], 0, 0)
        s2 = Session([4, 5, 6, 7, 8], 1, 0)
        solo = next(iter(SessionBatcher([s1], batch_size=2, shuffle=False)))
        both = next(iter(SessionBatcher([s1, s2], batch_size=2,
                                        shuffle=False)))
        se_solo = enc.encode(solo).data[0]
        se_both = enc.encode(both).data[0]
        np.testing.assert_allclose(se_solo, se_both, rtol=1e-4, atol=1e-5)


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            create_encoder("mystery", n_items=5, dim=4)

    def test_alias_sr_gnn(self):
        enc = create_encoder("sr-gnn", n_items=5, dim=4,
                             rng=np.random.default_rng(0))
        assert enc.name == "srgnn"

    def test_extra_kwargs_filtered(self):
        # srgnn does not accept dropout; registry must not crash.
        enc = create_encoder("srgnn", n_items=5, dim=4,
                             rng=np.random.default_rng(0), dropout=0.7)
        assert enc.name == "srgnn"


class TestBert4RecSpecifics:
    def test_mask_token_reserved(self):
        enc = build("bert4rec")
        assert enc.mask_token == N_ITEMS + 1
        assert enc.item_embedding.num_embeddings == N_ITEMS + 2

    def test_cloze_forward(self, batch):
        enc = build("bert4rec")
        enc.train()
        rng = np.random.default_rng(0)
        logits, targets, rows = enc.cloze_forward(batch, 0.3, rng)
        assert logits.shape[0] == len(targets) == len(rows)
        assert logits.shape[1] == N_ITEMS + 1
        assert len(targets) >= batch.batch_size  # >= 1 mask per session
        assert (targets >= 1).all()

    def test_score_items_excludes_mask_token(self, batch):
        enc = build("bert4rec")
        enc.eval()
        _, logits = enc(batch)
        assert logits.shape == (3, N_ITEMS + 1)
