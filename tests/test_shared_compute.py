"""Shared-computation serving: in-flush dedup + walk memoization.

Tier-1.  Pins the hard invariant of the shared-computation layer:
**rankings, scores, and explanations are bit-identical with dedup and
the walk memo on versus off**, across thread mode, the pickle pipe,
and the ring transport — through repeat-heavy flushes, mixed ks,
mid-traffic hot swaps, and staged-edge compaction (both of which must
*invalidate* the memo, never serve stale rows).  Plus unit coverage
for :func:`dedup_plan` / :class:`WalkMemo`, the reachability
prewarmer, and the per-version entry-count introspection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import REKSConfig, REKSTrainer
from repro.cascade import provider_from_trainer
from repro.cascade import reachability as reach_mod
from repro.cascade.reachability import ReachabilityPrewarmer
from repro.online import CheckpointRegistry
from repro.serving import WalkMemo, dedup_plan


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture()
def sessions(beauty_tiny):
    return [s for s in beauty_tiny.split.test if len(s.items) >= 2]


def _private_trainer(beauty_tiny, beauty_kg, beauty_transe):
    """A trainer whose environment the test may mutate."""
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                      config=config, transe=beauty_transe)


def _fresh_edges(env, kg_bundle, count):
    """(heads, rels, tails) between products not currently adjacent."""
    co_occur = kg_bundle.kg.relation_id("co_occur")
    entities = kg_bundle.entities_of_items(
        np.arange(1, min(40, kg_bundle.n_items + 1)))
    heads, tails = [], []
    for head in entities:
        _, existing = env.actions_of(int(head))
        for tail in entities[::-1]:
            if int(tail) != int(head) and int(tail) not in existing:
                heads.append(int(head))
                tails.append(int(tail))
                break
        if len(heads) >= count:
            break
    assert heads, "fixture KG unexpectedly complete"
    return heads, [co_occur] * len(heads), tails


def _payload(result):
    return (result.items, result.scores, result.explanations)


# ----------------------------------------------------------------------
# Units: dedup plan + walk memo
# ----------------------------------------------------------------------
class TestDedupPlan:
    def test_collapses_to_first_occurrence(self):
        keys = ["a", "b", "a", "c", "b", "a"]
        uniq, row_map = dedup_plan(keys)
        assert uniq == [0, 1, 3]
        assert row_map == [0, 1, 0, 2, 1, 0]

    def test_all_distinct_is_identity(self):
        uniq, row_map = dedup_plan(["x", "y", "z"])
        assert uniq == [0, 1, 2]
        assert row_map == [0, 1, 2]

    def test_empty(self):
        assert dedup_plan([]) == ([], [])


class TestWalkMemo:
    def test_capacity_zero_disables(self):
        memo = WalkMemo(0)
        key = WalkMemo.key([1, 2], 3, None, 0, "tok")
        memo.put(key, ("row", {}))
        assert memo.get(key) is None
        assert len(memo) == 0
        assert memo.misses == 1 and memo.hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WalkMemo(-1)

    def test_hit_miss_and_lru_eviction(self):
        memo = WalkMemo(2)
        keys = [WalkMemo.key([i], None, None, 0, "tok")
                for i in range(3)]
        memo.put(keys[0], ("a", {}))
        memo.put(keys[1], ("b", {}))
        assert memo.get(keys[0]) == ("a", {})  # refresh 0: 1 is now LRU
        memo.put(keys[2], ("c", {}))           # evicts 1
        assert memo.evictions == 1
        assert memo.get(keys[1]) is None
        assert memo.get(keys[0]) == ("a", {})
        assert memo.get(keys[2]) == ("c", {})
        assert memo.hits == 3 and memo.misses == 1
        assert memo.hit_rate == 0.75

    def test_key_carries_version_and_store_token(self):
        base = WalkMemo.key([1, 2], 3, (4, 5), 7, "tok")
        assert WalkMemo.key([1, 2], 3, (4, 5), 8, "tok") != base
        assert WalkMemo.key([1, 2], 3, (4, 5), 7, "tok2") != base
        assert WalkMemo.key([1, 2], 3, (4, 6), 7, "tok") != base
        assert WalkMemo.key([1, 2], 3, None, 7, "tok") != base
        assert WalkMemo.key((1, 2), 3, (4, 5), 7, "tok") == base

    def test_seconds_saved_banks_ewma_per_hit(self):
        memo = WalkMemo(4)
        key = WalkMemo.key([1], None, None, 0, "tok")
        memo.put(key, ("row", {}))
        memo.get(key)
        assert memo.seconds_saved == 0.0  # no walk cost observed yet
        memo.note_walk_cost(rows=4, seconds=2.0)  # 0.5 s/row
        memo.get(key)
        assert memo.seconds_saved == pytest.approx(0.5)

    def test_entries_by_version(self):
        memo = WalkMemo(8)
        for version, n in ((3, 2), (4, 1)):
            for i in range(n):
                memo.put(WalkMemo.key([i], None, None, version, "tok"),
                         ("row", {}))
        assert memo.entries_by_version() == {3: 2, 4: 1}

    def test_clear_drops_entries_keeps_counters(self):
        memo = WalkMemo(4)
        key = WalkMemo.key([1], None, None, 0, "tok")
        memo.put(key, ("row", {}))
        memo.get(key)
        memo.clear()
        assert len(memo) == 0
        assert memo.hits == 1


# ----------------------------------------------------------------------
# Differential: dedup/memo on == off, bit for bit, on every transport
# ----------------------------------------------------------------------
class TestSharedBitIdentity:
    def _mixed_duplicates(self, sessions):
        """A flush-shaped request list: 4 distinct sessions, each asked
        3 times at different ks, interleaved."""
        subset = sessions[:4]
        requests = [(s, k) for k in (5, 10, 3) for s in subset]
        return requests

    def _baseline(self, trainer, requests):
        with trainer.serve(worker_mode="thread", workers=2,
                           cache_size=0, dedup=False, walk_memo_size=0,
                           metrics=False, max_wait_ms=25.0) as server:
            futures = [server.submit(s, k=k) for s, k in requests]
            return [_payload(f.result()) for f in futures]

    def _sequential_baseline(self, trainer, requests):
        """Legacy server driven one request at a time — the comparator
        for sequentially-driven treatments.  (Numeric outputs depend on
        the padded flush width, so exactness claims are per *stream of
        flushes*: a sequential treatment must be compared against a
        sequential legacy run, not a coalesced one.)"""
        with trainer.serve(worker_mode="thread", workers=1,
                           cache_size=0, dedup=False, walk_memo_size=0,
                           metrics=False) as server:
            return [_payload(server.recommend_one(s, k=k))
                    for s, k in requests]

    @pytest.mark.parametrize("mode,transport",
                             [("thread", None), ("process", "pipe"),
                              ("process", "ring")])
    def test_duplicate_flush_bit_identical(self, trainer, sessions,
                                           mode, transport):
        requests = self._mixed_duplicates(sessions)
        expected = self._baseline(trainer, requests)
        kwargs = dict(worker_mode=mode, workers=2, cache_size=0,
                      metrics=False, max_wait_ms=25.0)
        if transport is not None:
            kwargs["transport"] = transport
        with trainer.serve(**kwargs) as server:  # dedup + memo defaults
            futures = [server.submit(s, k=k) for s, k in requests]
            got = [_payload(f.result()) for f in futures]
        assert got == expected

    def test_repeat_traffic_hits_memo_bit_identical(self, trainer,
                                                    sessions):
        """The same suffix re-asked at a *different* k must be a memo
        hit (no walk) with a bit-identical result: the stored full
        score row re-selects any k exactly."""
        requests = [(s, k) for k in (5, 10, 20)
                    for s in sessions[:3]]
        expected = self._sequential_baseline(trainer, requests)
        with trainer.serve(worker_mode="thread", workers=1,
                           cache_size=0, metrics=False) as server:
            got = [_payload(server.recommend_one(s, k=k))
                   for s, k in requests]
            memo = server.walk_memo
            assert memo.hits >= 2 * 3  # rounds 2 and 3 hit per session
            assert len(memo) == 3      # one entry per distinct suffix
        assert got == expected

    def test_process_mode_worker_memo_hits(self, trainer, sessions):
        """Process workers own their memos; repeats across flushes are
        hits counted in the fleet metrics, results bit-identical."""
        requests = [(s, k) for k in (5, 10) for s in sessions[:3]]
        expected = self._sequential_baseline(trainer, requests)
        with trainer.serve(worker_mode="process", workers=1,
                           cache_size=0) as server:
            got = [_payload(server.recommend_one(s, k=k))
                   for s, k in requests]
            snap = server.fleet_snapshot()
        assert got == expected
        assert snap.counter("walk_memo_hits_total") >= 3
        assert snap.counter("walk_memo_misses_total") >= 3

    def test_dedup_counter_and_stats(self, trainer, sessions):
        """In-flush duplicates collapse: dedup_rows_total counts the
        rows *not* walked, mirrored in ServerStats."""
        session = sessions[0]
        with trainer.serve(worker_mode="thread", workers=1,
                           cache_size=0, walk_memo_size=0,
                           max_wait_ms=50.0, max_batch=32) as server:
            futures = [server.submit(session, k=5) for _ in range(8)]
            results = [_payload(f.result()) for f in futures]
            snap = server.stats()
            fleet = server.fleet_snapshot()
        assert len(set(results)) == 1  # every duplicate gets one answer
        assert snap.dedup_rows >= 1
        assert fleet.counter("dedup_rows_total") == snap.dedup_rows
        assert snap.to_dict()["dedup_rows"] == snap.dedup_rows

    def test_hot_swap_invalidates_memo(self, trainer, sessions,
                                       tmp_path):
        """Memo keys carry the model version: after a mid-traffic hot
        swap, the hot suffix re-walks under the new weights — identical
        to a memo-off server driven through the same swap."""
        subset = sessions[:6]
        registry = CheckpointRegistry(tmp_path)
        state = trainer.agent.state_dict()
        v0 = registry.publish(state)
        perturbed = {k: (v + 0.03 if k.startswith("encoder.") else v)
                     for k, v in state.items()}
        v1 = registry.publish(perturbed)
        phases = {}
        for label, overrides in (
                ("off", dict(dedup=False, walk_memo_size=0)),
                ("on", {})):
            with trainer.serve(worker_mode="thread", workers=2,
                               cache_size=0, registry=registry,
                               metrics=False, **overrides) as server:
                server.swap_model(v0)
                before = [_payload(r) for r
                          in server.recommend_many(subset, k=5)]
                # Warm the memo hard on v0, then swap mid-traffic.
                server.recommend_many(subset, k=10)
                server.swap_model(v1)
                after = [_payload(r) for r
                         in server.recommend_many(subset, k=5)]
                phases[label] = (before, after)
                if label == "on":
                    by_version = server.walk_memo.entries_by_version()
                    assert by_version.get(v1)  # post-swap entries exist
        assert phases["on"] == phases["off"]
        assert phases["on"][0] != phases["on"][1]  # swap did something

    def test_graph_change_invalidates_memo(self, beauty_tiny, beauty_kg,
                                           beauty_transe):
        """The store token (environment fingerprint) keys the memo:
        staged edges AND compaction both force a re-walk — identical to
        a memo-off server over the same mutation sequence."""
        trainer = _private_trainer(beauty_tiny, beauty_kg, beauty_transe)
        sessions = [s for s in beauty_tiny.split.test
                    if len(s.items) >= 2][:6]
        heads, rels, tails = _fresh_edges(trainer.env, beauty_kg, 6)

        with trainer.serve(worker_mode="thread", workers=1,
                           cache_size=0, metrics=False,
                           dedup=False, walk_memo_size=0) as legacy, \
                trainer.serve(worker_mode="thread", workers=1,
                              cache_size=0,
                              metrics=False) as shared:
            def both(k):
                return ([_payload(r) for r
                         in legacy.recommend_many(sessions, k=k)],
                        [_payload(r) for r
                         in shared.recommend_many(sessions, k=k)])

            base_l, base_s = both(5)
            assert base_s == base_l
            assert len(shared.walk_memo) > 0

            # Stage: both servers read the shared env; the fingerprint
            # moved, so the memo must re-walk, not serve pre-edge rows.
            assert trainer.env.stage_edges(heads, rels, tails) > 0
            staged_l, staged_s = both(5)
            assert staged_s == staged_l

            # Compact: overlay folds into fresh CSR, fingerprint moves
            # again.
            trainer.env.compact()
            legacy.refresh_tables(), shared.refresh_tables()
            compact_l, compact_s = both(5)
            assert compact_s == compact_l
            assert compact_s == staged_s  # compaction preserves actions


# ----------------------------------------------------------------------
# Reachability prewarm (cascade)
# ----------------------------------------------------------------------
class TestReachabilityPrewarm:
    def test_poll_once_builds_on_digest_change_only(self, beauty_tiny,
                                                    beauty_kg,
                                                    beauty_transe):
        trainer = _private_trainer(beauty_tiny, beauty_kg, beauty_transe)
        env = trainer.env
        with reach_mod._CACHE_LOCK:
            reach_mod._CACHE.clear()
        warmer = ReachabilityPrewarmer(env, hops=2)
        assert warmer.poll_once() is True    # cold: builds
        assert warmer.poll_once() is False   # same digest: no-op
        heads, rels, tails = _fresh_edges(env, beauty_kg, 2)
        env.stage_edges(heads, rels, tails)
        env.compact()
        assert warmer.poll_once() is True    # digest moved: rebuilds
        key = (env.csr_tables().digest(), 2)
        with reach_mod._CACHE_LOCK:
            assert key in reach_mod._CACHE

    def test_first_request_after_compact_skips_build(self, beauty_tiny,
                                                     beauty_kg,
                                                     beauty_transe):
        """Satellite contract: after ``compact()`` +
        ``refresh_tables()``, the index for the new store generation is
        already cached (built by the prewarmer, counted in
        ``reachability_rebuilds_total``) — the first request finds a
        cache hit instead of paying the O(hops * items * E) build."""
        trainer = _private_trainer(beauty_tiny, beauty_kg, beauty_transe)
        env = trainer.env
        sessions = [s for s in beauty_tiny.split.test
                    if len(s.items) >= 2][:4]
        provider = provider_from_trainer(trainer, "neighbors")
        hops = trainer.config.path_length
        with trainer.serve(worker_mode="thread", workers=1,
                           cache_size=0, cascade=provider,
                           cascade_m=10) as server:
            server.recommend_many(sessions, k=5)  # current-gen traffic
            heads, rels, tails = _fresh_edges(env, beauty_kg, 3)
            env.stage_edges(heads, rels, tails)
            env.compact()
            server.refresh_tables()  # deterministic prewarm poll
            built = server.fleet_snapshot().counter(
                "reachability_rebuilds_total")
            assert built >= 1
            key = (env.csr_tables().digest(), hops)
            with reach_mod._CACHE_LOCK:
                assert key in reach_mod._CACHE  # request path will hit
            results = server.recommend_many(sessions, k=5)
            assert all(len(r.items) == 5 for r in results)
            # The request built nothing new.
            assert server.fleet_snapshot().counter(
                "reachability_rebuilds_total") == built


# ----------------------------------------------------------------------
# Introspection: per-version entry counts (post-swap drain)
# ----------------------------------------------------------------------
class TestServingState:
    def test_serving_state_and_snapshot_fields(self, trainer, sessions,
                                               tmp_path):
        subset = sessions[:4]
        registry = CheckpointRegistry(tmp_path)
        state = trainer.agent.state_dict()
        v0 = registry.publish(state)
        v1 = registry.publish({k: v + 0.01 for k, v in state.items()})
        with trainer.serve(worker_mode="thread", workers=1,
                           registry=registry, metrics=False) as server:
            server.swap_model(v0)
            server.recommend_many(subset, k=5)
            server.swap_model(v1)
            server.recommend_many(subset[:2], k=5)
            serving = server.serving_state()
            snap = server.stats()
        assert serving["dedup"] is True
        # Both caches carry entries from both versions until the LRU
        # drains the stale ones — exactly what cli top watches.
        assert serving["cache_entries_by_version"] == {
            str(v0): 4, str(v1): 2}
        memo_state = serving["walk_memo"]
        assert memo_state["entries_by_version"] == {
            str(v0): 4, str(v1): 2}
        assert memo_state["misses"] >= 6
        assert snap.cache_entries_by_version == {v0: 4, v1: 2}
        assert snap.memo_entries_by_version == {v0: 4, v1: 2}
        blob = snap.to_dict()
        assert blob["cache_entries_by_version"] == {
            str(v0): 4, str(v1): 2}
        assert blob["walk_memo"]["entries_by_version"] == {
            str(v0): 4, str(v1): 2}

    def test_memo_counters_reach_fleet_metrics_thread_mode(
            self, trainer, sessions):
        subset = sessions[:3]
        with trainer.serve(worker_mode="thread", workers=1,
                           cache_size=0) as server:
            server.recommend_many(subset, k=5)
            server.recommend_many(subset, k=10)  # memo hits, cache miss
            snap = server.fleet_snapshot()
        assert snap.counter("walk_memo_misses_total") == len(subset)
        assert snap.counter("walk_memo_hits_total") == len(subset)
        # exec_rows_total counts rows actually *walked* — the memo-hit
        # rows are not walk work.
        assert snap.counter("exec_rows_total") == len(subset)
