"""Cascade serving: providers, reachability pruning, and the
differential guarantees.

The two contracts that matter:

* **cascade off == before**: a server without a cascade takes exactly
  the pre-cascade code path — rankings bit-identical to the trainer
  oracle on every transport (thread, pipe, ring);
* **cascade on is score-preserving**: pruning only removes
  zero-contribution paths, so with saturating beam widths any row
  whose unconstrained top-k (at strictly positive scores) survives
  the candidate set ranks identically.
"""

import numpy as np
import pytest

from repro import REKSConfig, REKSTrainer
from repro.cascade import (
    CandidateCache,
    CascadePlanner,
    NeighborsProvider,
    build_constraint,
    get_index,
    provider_from_trainer,
)
from repro.cascade.providers import EncoderProvider, _ranked_top_m
from repro.serving import ExplanationCache


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    """Untrained (inference-ready) REKS stack, shared per module."""
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture(scope="module")
def saturated_trainer(beauty_tiny, beauty_kg, beauty_transe):
    """Beam widths that keep every valid action at every hop, so the
    constrained walk's kept paths are a strict superset argument."""
    config = REKSConfig(dim=16, state_dim=16,
                        sample_sizes=(4096, 4096), seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture(scope="module")
def sessions(beauty_tiny):
    return [s for s in beauty_tiny.split.test if len(s.items) >= 2]


def _truncated_prefix(trainer, session):
    return list(session.items[:-1])[-trainer.config.max_session_length:]


# ----------------------------------------------------------------------
# Providers
# ----------------------------------------------------------------------
class TestProviders:
    def test_ranked_top_m_breaks_ties_by_item_id(self):
        scores = np.array([0.0, 1.0, 2.0, 2.0, 2.0, 0.5])
        got = _ranked_top_m(scores, 2)
        # three-way tie at the boundary: smaller ids win, best first
        assert got.tolist() == [2, 3]
        assert _ranked_top_m(scores, 4).tolist() == [2, 3, 4, 1]

    def test_neighbors_provider_deterministic_and_full(self, trainer):
        provider = provider_from_trainer(trainer, "neighbors")
        prefix = _truncated_prefix(trainer, trainer.dataset.split.test[0])
        a = provider.top_m(prefix, 25)
        b = provider.top_m(prefix, 25)
        assert (a == b).all()
        assert len(a) == 25          # popularity backfill always fills M
        assert len(set(a.tolist())) == 25
        assert 0 not in a            # padding item never a candidate
        assert provider.provider_id.startswith("neighbors:")

    def test_encoder_provider_matches_bruteforce(self, trainer):
        provider = provider_from_trainer(trainer, "encoder")
        assert provider.provider_id == "encoder:narm"
        from repro.autograd import no_grad
        from repro.data.loader import collate_examples

        session = trainer.dataset.split.test[0]
        prefix = _truncated_prefix(trainer, session)
        got = provider.top_m(prefix, 10, user_id=session.user_id)
        batch = collate_examples([(prefix, 0, session.user_id)],
                                 trainer.config.max_session_length)
        with no_grad():
            logits = trainer.agent.encoder.score_items(
                trainer.agent.encoder.encode(batch)).data[0]
        assert (got == _ranked_top_m(logits.astype(np.float64),
                                     10)).all()

    def test_unknown_provider_raises(self, trainer):
        with pytest.raises(KeyError, match="unknown cascade provider"):
            provider_from_trainer(trainer, "bogus")

    def test_candidate_cache_lru_and_disable(self):
        cache = CandidateCache(2)
        cache.put(("a",), np.array([1]))
        cache.put(("b",), np.array([2]))
        assert cache.get(("a",)) is not None   # refresh "a"
        cache.put(("c",), np.array([3]))       # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.hits == 2 and cache.misses == 1
        off = CandidateCache(0)
        off.put(("a",), np.array([1]))
        assert off.get(("a",)) is None and len(off) == 0

    def test_planner_memoizes_and_reports_identity(self, trainer):
        provider = provider_from_trainer(trainer, "neighbors")
        planner = CascadePlanner(provider, m=12, cache_size=8)
        assert planner.identity == (provider.provider_id, 12)
        prefix = _truncated_prefix(trainer, trainer.dataset.split.test[0])
        first = planner.plan(prefix, None)
        again = planner.plan(prefix, None)
        assert (first == again).all() and len(first) == 12
        assert planner.cache.hits == 1


# ----------------------------------------------------------------------
# Reverse reachability
# ----------------------------------------------------------------------
class TestReachability:
    def test_level0_is_the_items_own_entity(self, trainer):
        agent = trainer.agent
        index = get_index(agent.env, agent.config.path_length)
        built = agent.env.built
        cand = np.array([5], dtype=np.int64)
        mask = index.entity_mask([cand], 0)[0]
        assert mask.sum() == 1
        assert mask[int(built.item_entity[5])]

    def test_level1_matches_bruteforce_adjacency(self, trainer):
        agent = trainer.agent
        index = get_index(agent.env, agent.config.path_length)
        store = agent.env.csr_tables()
        built = agent.env.built
        flat = store.to_flat()
        tails = flat.tails[1:]
        starts = flat.indptr[:-1] - 1
        degrees = flat.degrees
        cand = np.array([3, 7, 11], dtype=np.int64)
        got = index.entity_mask([cand], 1)[0]
        targets = {int(built.item_entity[c]) for c in cand}
        brute = np.array(
            [any(int(t) in targets
                 for t in tails[int(starts[e]):
                                int(starts[e] + degrees[e])])
             for e in range(store.num_entities)])
        assert (got == brute).all()

    def test_empty_candidate_row_allows_nothing(self, trainer):
        agent = trainer.agent
        index = get_index(agent.env, agent.config.path_length)
        masks = index.entity_mask(
            [np.array([], dtype=np.int64),
             np.array([4], dtype=np.int64)], 1)
        assert not masks[0].any()

    def test_index_cached_per_store_digest(self, trainer):
        env = trainer.agent.env
        hops = trainer.config.path_length
        assert get_index(env, hops) is get_index(env, hops)


# ----------------------------------------------------------------------
# Constrained walk semantics
# ----------------------------------------------------------------------
class TestConstrainedWalk:
    def _batch(self, trainer, sessions):
        from repro.data.loader import collate_examples

        examples = [(list(s.items[:-1]), s.items[-1], s.user_id)
                    for s in sessions]
        return collate_examples(examples,
                                trainer.config.max_session_length)

    def test_full_catalog_candidates_are_bit_identical(
            self, saturated_trainer, sessions):
        """When the candidate set is the whole catalog, nothing can be
        pruned and the cascade walk must reproduce the plain walk
        ranking exactly."""
        agent = saturated_trainer.agent
        subset = sessions[:12]
        batch = self._batch(saturated_trainer, subset)
        n_items = saturated_trainer.dataset.n_items
        everything = [np.arange(1, n_items + 1)] * len(subset)
        constraint = build_constraint(
            agent, everything, saturated_trainer.config.path_length)
        rec_off = agent.recommend(batch, k=10)
        rec_on = agent.recommend(batch, k=10, candidates=constraint)
        assert (rec_off.ranked_items == rec_on.ranked_items).all()

    def test_survivor_rows_rank_identically(self, saturated_trainer,
                                            sessions):
        """Rows whose unconstrained top-k is inside the candidate set
        (at strictly positive scores — zero-score argpartition ties
        are not rank-stable under masking) must rank identically, with
        candidate scores preserved to the bit."""
        agent = saturated_trainer.agent
        provider = provider_from_trainer(saturated_trainer, "neighbors")
        subset = sessions[:24]
        batch = self._batch(saturated_trainer, subset)
        cand_rows = [provider.top_m(
            _truncated_prefix(saturated_trainer, s), 60)
            for s in subset]
        constraint = build_constraint(
            agent, cand_rows, saturated_trainer.config.path_length)
        rec_off = agent.recommend(batch, k=10)
        rec_on = agent.recommend(batch, k=10, candidates=constraint)
        checked = 0
        for row in range(len(subset)):
            off = rec_off.ranked_items[row]
            allowed = set(int(i) for i in cand_rows[row])
            if rec_off.scores[row, off[-1]] <= 0:
                continue
            if not all(int(i) in allowed for i in off):
                continue
            checked += 1
            assert (off == rec_on.ranked_items[row]).all()
            for item in off:
                assert rec_on.scores[row, item] == \
                    rec_off.scores[row, item]
        assert checked > 0          # the guarantee was actually exercised

    def test_non_candidates_never_surface(self, trainer, sessions):
        agent = trainer.agent
        provider = provider_from_trainer(trainer, "neighbors")
        subset = sessions[:16]
        batch = self._batch(trainer, subset)
        cand_rows = [provider.top_m(_truncated_prefix(trainer, s), 15)
                     for s in subset]
        constraint = build_constraint(agent, cand_rows,
                                      trainer.config.path_length)
        rec = agent.recommend(batch, k=10, candidates=constraint)
        for row in range(len(subset)):
            allowed = set(int(i) for i in cand_rows[row])
            for item in rec.ranked_items[row]:
                if rec.scores[row, item] > 0:
                    assert int(item) in allowed
        # non-candidate columns carry the sentinel, below every prob
        masked = ~constraint.item_allowed
        assert (rec.scores[masked] == -1.0).all()

    def test_pruning_reduces_frontier_mass(self, trainer, sessions):
        """The point of the exercise: a narrow candidate set must
        shrink the per-hop surviving-path census."""
        agent = trainer.agent
        provider = provider_from_trainer(trainer, "neighbors")
        subset = sessions[:16]
        batch = self._batch(trainer, subset)
        cand_rows = [provider.top_m(_truncated_prefix(trainer, s), 5)
                     for s in subset]
        constraint = build_constraint(agent, cand_rows,
                                      trainer.config.path_length)

        def frontier_mass(candidates):
            ws = agent.workspace
            ws.row_frontier = []
            try:
                agent.recommend(batch, k=10, candidates=candidates)
                return sum(int(c.sum()) for c in ws.row_frontier)
            finally:
                ws.row_frontier = None

        assert frontier_mass(constraint) < frontier_mass(None)


# ----------------------------------------------------------------------
# Cache keying (satellite: cascade identity in explanation-cache keys)
# ----------------------------------------------------------------------
class TestCacheKeying:
    def test_key_separates_cascade_configurations(self):
        base = ((1, 2, 3), 10, None)
        off = ExplanationCache.key(*base, version=3)
        on = ExplanationCache.key(*base, cascade=("neighbors:r20", 50),
                                  version=3)
        retuned = ExplanationCache.key(*base,
                                       cascade=("neighbors:r20", 100),
                                       version=3)
        other = ExplanationCache.key(*base, cascade=("encoder:narm", 50),
                                     version=3)
        assert len({off, on, retuned, other}) == 4

    def test_server_keys_carry_cascade_identity(self, trainer, sessions):
        provider = provider_from_trainer(trainer, "neighbors")
        with trainer.serve(workers=1, metrics=False, cascade=provider,
                           cascade_m=20) as server:
            result = server.recommend_one(sessions[0], k=5)
            assert not result.cached
            assert server.recommend_one(sessions[0], k=5).cached
            key = ExplanationCache.key(
                *server._base_key(sessions[0], 5),
                cascade=(provider.provider_id, 20),
                version=server.model_version)
            assert server._cache.get(key) is not None


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------
class TestConfig:
    def test_cascade_knob_validation(self):
        with pytest.raises(ValueError, match="serve_cascade_provider"):
            REKSConfig(serve_cascade_provider="bogus")
        with pytest.raises(ValueError, match="serve_cascade_m"):
            REKSConfig(serve_cascade_m=0)
        with pytest.raises(ValueError, match="serve_cascade_cache_size"):
            REKSConfig(serve_cascade_cache_size=-1)

    def test_from_trainer_builds_planner(self, beauty_tiny, beauty_kg,
                                         beauty_transe):
        config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                            seed=0, serve_cascade_provider="neighbors",
                            serve_cascade_m=25)
        tr = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                         config=config, transe=beauty_transe)
        with tr.serve(workers=1, metrics=False) as server:
            assert server._cascade is not None
            assert server._cascade_id[1] == 25
            assert server._cascade_id[0].startswith("neighbors:")


# ----------------------------------------------------------------------
# Serving differential: every transport, on and off
# ----------------------------------------------------------------------
class TestServingDifferential:
    def test_cascade_off_matches_trainer_oracle_thread(self, trainer,
                                                       sessions):
        subset = sessions[:12]
        oracle = [r.ranked_items[0]
                  for s in subset
                  for r in trainer.recommend_sessions([s], k=10)]
        with trainer.serve(workers=2, metrics=False) as server:
            got = server.recommend_many(subset, k=10)
        for expect, result in zip(oracle, got):
            assert tuple(int(i) for i in expect[:len(result.items)]) \
                == result.items

    @pytest.mark.parametrize("transport", ["pipe", "ring"])
    def test_cascade_off_matches_thread_per_transport(self, trainer,
                                                      sessions,
                                                      transport):
        subset = sessions[:8]
        with trainer.serve(workers=1, metrics=False) as server:
            expected = [r.items for r in
                        server.recommend_many(subset, k=8)]
        with trainer.serve(workers=1, metrics=False,
                           worker_mode="process",
                           transport=transport) as server:
            got = [r.items for r in server.recommend_many(subset, k=8)]
        assert got == expected

    @pytest.mark.parametrize("transport", ["pipe", "ring"])
    def test_cascade_on_identical_across_transports(self, trainer,
                                                    sessions, transport):
        """The candidate section must be transport-invariant: thread
        mode, the pickle pipe, and the ring codec all serve the same
        constrained rankings."""
        subset = sessions[:8]
        provider = provider_from_trainer(trainer, "neighbors")
        with trainer.serve(workers=1, metrics=False, cache_size=0,
                           cascade=provider, cascade_m=20) as server:
            expected = [r.items for r in
                        server.recommend_many(subset, k=8)]
        with trainer.serve(workers=1, metrics=False, cache_size=0,
                           cascade=provider, cascade_m=20,
                           worker_mode="process",
                           transport=transport) as server:
            got = [r.items for r in server.recommend_many(subset, k=8)]
        assert got == expected

    def test_cascade_counters_and_span(self, trainer, sessions):
        subset = sessions[:6]
        provider = provider_from_trainer(trainer, "neighbors")
        with trainer.serve(workers=1, cache_size=0, cascade=provider,
                           cascade_m=10, trace_sample=1.0) as server:
            server.recommend_many(subset, k=5)
            snap = server.fleet_snapshot()
            spans = server.tracer.drain()
        assert snap.counter("cascade_candidates_total") \
            == 10 * len(subset)
        assert snap.counter("cascade_pruned_frontier_rows_total") > 0
        assert any(s.name == "cascade" for s in spans)
