"""Unit tests for session-graph construction and gated graph conv."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.nn.graph import build_session_graph


class TestBuildSessionGraph:
    def test_simple_chain(self):
        nodes, adj_in, adj_out, alias = build_session_graph(
            np.array([3, 5, 7]))
        np.testing.assert_array_equal(nodes, [3, 5, 7])
        np.testing.assert_array_equal(alias, [0, 1, 2])
        # Edge 3->5: out adjacency row 0 has 1 at col 1.
        assert adj_out[0, 1] == 1.0
        assert adj_out[1, 2] == 1.0
        # In adjacency is the transpose view (normalized).
        assert adj_in[1, 0] == 1.0
        assert adj_in[2, 1] == 1.0

    def test_repeated_item_deduplicated(self):
        nodes, adj_in, adj_out, alias = build_session_graph(
            np.array([2, 4, 2, 6]))
        np.testing.assert_array_equal(nodes, [2, 4, 6])
        np.testing.assert_array_equal(alias, [0, 1, 0, 2])
        assert adj_out[0, 1] == pytest.approx(0.5)  # 2->4 and 2->6 share mass
        assert adj_out[0, 2] == pytest.approx(0.5)
        assert adj_out[1, 0] == 1.0  # 4->2

    def test_padding_ignored(self):
        nodes, _, _, alias = build_session_graph(np.array([5, 9, 0, 0]))
        np.testing.assert_array_equal(nodes, [5, 9])
        assert len(alias) == 2

    def test_first_appearance_order(self):
        nodes, _, _, _ = build_session_graph(np.array([9, 3, 7]))
        np.testing.assert_array_equal(nodes, [9, 3, 7])

    def test_in_degree_normalization(self):
        # Both 1 and 2 point at 3: in-degree of 3 is 2, each weight 0.5.
        _, adj_in, _, _ = build_session_graph(np.array([1, 3, 2, 3]))
        row_three = adj_in[1]  # node index of item 3 is 1
        assert row_three.sum() == pytest.approx(1.0)


class TestGatedGraphConv:
    def test_output_shape(self, rng):
        conv = nn.GatedGraphConv(6, num_steps=2, rng=rng)
        hidden = Tensor(rng.standard_normal((3, 4, 6)).astype(np.float32))
        adj = np.zeros((3, 4, 4), dtype=np.float32)
        out = conv(hidden, adj, adj)
        assert out.shape == (3, 4, 6)

    def test_no_edges_still_updates(self, rng):
        conv = nn.GatedGraphConv(4, rng=rng)
        hidden = Tensor(rng.standard_normal((1, 2, 4)).astype(np.float32))
        adj = np.zeros((1, 2, 2), dtype=np.float32)
        out = conv(hidden, adj, adj)
        assert out.shape == (1, 2, 4)

    def test_messages_propagate_along_edges(self, rng):
        conv = nn.GatedGraphConv(4, rng=rng)
        h = np.zeros((1, 2, 4), dtype=np.float32)
        h[0, 0] = 5.0  # only node 0 carries signal
        adj_edge = np.zeros((1, 2, 2), dtype=np.float32)
        adj_edge[0, 1, 0] = 1.0  # node 1 receives from node 0
        no_edge = np.zeros_like(adj_edge)
        out_with = conv(Tensor(h), adj_edge, no_edge).data
        out_without = conv(Tensor(h), no_edge, no_edge).data
        assert not np.allclose(out_with[0, 1], out_without[0, 1])

    def test_gradients(self, rng):
        conv = nn.GatedGraphConv(3, rng=rng)
        hidden = Tensor(rng.standard_normal((2, 3, 3)).astype(np.float32),
                        requires_grad=True)
        adj = np.full((2, 3, 3), 1 / 3, dtype=np.float32)
        conv(hidden, adj, adj).sum().backward()
        assert hidden.grad is not None
        assert conv.weight_ih.grad is not None
