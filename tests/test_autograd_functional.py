"""Unit tests for fused functional ops (softmax family, losses, dropout)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F

from helpers import assert_grad_close, make_tensor


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = make_tensor(rng, 4, 7, requires_grad=False)
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_shift_invariance(self, rng):
        x = make_tensor(rng, 3, 5, requires_grad=False)
        shifted = Tensor(x.data + 1000.0, dtype=np.float64)
        np.testing.assert_allclose(F.softmax(x).data, F.softmax(shifted).data,
                                   rtol=1e-6)

    def test_gradient(self, rng):
        x = make_tensor(rng, 3, 4)
        w = Tensor(rng.standard_normal((3, 4)), dtype=np.float64)
        assert_grad_close(lambda: (F.softmax(x, axis=-1) * w).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = make_tensor(rng, 2, 6, requires_grad=False)
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), rtol=1e-5)

    def test_log_softmax_gradient(self, rng):
        x = make_tensor(rng, 3, 4)
        w = Tensor(rng.standard_normal((3, 4)), dtype=np.float64)
        assert_grad_close(lambda: (F.log_softmax(x, axis=-1) * w).sum(), [x])

    def test_extreme_values_stay_finite(self):
        x = Tensor([[1e4, -1e4, 0.0]], dtype=np.float64)
        assert np.isfinite(F.log_softmax(x).data).all()


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = make_tensor(rng, 4, 6, requires_grad=False)
        targets = np.array([0, 3, 5, 2])
        loss = F.cross_entropy(logits, targets)
        logp = F.log_softmax(logits).data
        manual = -logp[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(manual, rel=1e-6)

    def test_gradient(self, rng):
        logits = make_tensor(rng, 3, 5)
        targets = np.array([1, 4, 0])
        assert_grad_close(lambda: F.cross_entropy(logits, targets), [logits])

    def test_reductions(self, rng):
        logits = make_tensor(rng, 4, 3, requires_grad=False)
        targets = np.array([0, 1, 2, 0])
        total = F.cross_entropy(logits, targets, reduction="sum").item()
        mean = F.cross_entropy(logits, targets, reduction="mean").item()
        assert total == pytest.approx(mean * 4, rel=1e-6)
        none = F.cross_entropy(logits, targets, reduction="none")
        assert none.shape == (4,)


class TestBinaryCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        probs = Tensor([1.0, 0.0], dtype=np.float64)
        loss = F.binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert loss.item() < 1e-5

    def test_matches_manual(self):
        p = np.array([0.3, 0.8])
        y = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy(Tensor(p, dtype=np.float64), y).item()
        manual = -(np.log(0.3) + np.log(0.2))
        assert loss == pytest.approx(manual, rel=1e-5)

    def test_gradient(self, rng):
        raw = make_tensor(rng, 6)
        y = (rng.random(6) > 0.5).astype(np.float64)
        assert_grad_close(
            lambda: F.binary_cross_entropy(raw.sigmoid(), y), [raw])

    def test_out_of_range_is_clipped(self):
        probs = Tensor([1.5, -0.5], dtype=np.float64)
        loss = F.binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestClip:
    def test_values(self):
        x = Tensor([-2.0, 0.5, 3.0], dtype=np.float64)
        np.testing.assert_allclose(F.clip(x, 0.0, 1.0).data, [0.0, 0.5, 1.0])

    def test_gradient_zero_outside(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True, dtype=np.float64)
        F.clip(x, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = make_tensor(rng, 10, requires_grad=False)
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_p_is_identity(self, rng):
        x = make_tensor(rng, 10, requires_grad=False)
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones(20000), dtype=np.float64)
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.03)

    def test_invalid_p_raises(self, rng):
        x = make_tensor(rng, 3, requires_grad=False)
        with pytest.raises(ValueError):
            F.dropout(x, 1.0, training=True)


class TestScatterAdd:
    def test_values_match_np_add_at(self, rng):
        src = make_tensor(rng, 8, requires_grad=False)
        idx = (np.array([0, 1, 1, 2, 0, 2, 2, 1]),
               np.array([0, 0, 1, 1, 1, 0, 0, 1]))
        out = F.scatter_add(src, idx, (3, 2))
        manual = np.zeros((3, 2))
        np.add.at(manual, idx, src.data)
        np.testing.assert_allclose(out.data, manual, rtol=1e-6)

    def test_gradient(self, rng):
        src = make_tensor(rng, 6)
        idx = (np.array([0, 0, 1, 1, 2, 2]), np.array([0, 1, 0, 1, 0, 1]))
        w = Tensor(rng.standard_normal((3, 2)), dtype=np.float64)
        assert_grad_close(
            lambda: (F.scatter_add(src, idx, (3, 2)) * w).sum(), [src])


class TestGelu:
    def test_values_reasonable(self):
        x = Tensor([-3.0, 0.0, 3.0], dtype=np.float64)
        out = F.gelu(x).data
        assert out[1] == pytest.approx(0.0, abs=1e-6)
        assert out[2] == pytest.approx(3.0, abs=0.01)
        assert abs(out[0]) < 0.01

    def test_gradient(self, rng):
        x = make_tensor(rng, 5)
        assert_grad_close(lambda: F.gelu(x).sum(), [x])


class TestEmbeddingLookup:
    def test_gather_and_scatter_grad(self, rng):
        w = make_tensor(rng, 6, 3)
        idx = np.array([[0, 2], [2, 5]])
        out = F.embedding_lookup(w, idx)
        assert out.shape == (2, 2, 3)
        assert_grad_close(lambda: F.embedding_lookup(w, idx).sum(), [w])
