"""Semantic (architecture-specific) behavior tests per encoder.

Beyond shapes: each model must exhibit the behavior its paper claims —
order sensitivity for sequential models, graph dedup for SR-GNN, the
ω blend for GCSAN, bidirectional context for BERT4REC.
"""

import numpy as np
import pytest

from repro.data.loader import SessionBatcher
from repro.data.schema import Session
from repro.models import GCSAN, create_encoder

N_ITEMS = 30
DIM = 16


def encode_one(encoder, items):
    batch = next(iter(SessionBatcher([Session(list(items) + [1], 0, 0)],
                                     batch_size=1, shuffle=False)))
    encoder.eval()
    return encoder.encode(batch).data[0].copy()


@pytest.mark.parametrize("name", ["gru4rec", "narm", "bert4rec"])
class TestOrderSensitivity:
    def test_permutation_changes_representation(self, name):
        enc = create_encoder(name, n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        forward = encode_one(enc, [2, 3, 4, 5])
        reversed_ = encode_one(enc, [5, 4, 3, 2])
        assert not np.allclose(forward, reversed_, atol=1e-4)

    def test_content_changes_representation(self, name):
        enc = create_encoder(name, n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        a = encode_one(enc, [2, 3, 4])
        b = encode_one(enc, [2, 3, 9])
        assert not np.allclose(a, b, atol=1e-4)


class TestNARMSpecifics:
    def test_attention_mixes_history(self):
        """NARM's local component makes early items matter even when the
        suffix is identical — unlike a pure last-item model."""
        enc = create_encoder("narm", n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        same_suffix_a = encode_one(enc, [2, 7, 8])
        same_suffix_b = encode_one(enc, [9, 7, 8])
        assert not np.allclose(same_suffix_a, same_suffix_b, atol=1e-5)


class TestSRGNNSpecifics:
    def test_repeated_items_share_node(self):
        """[2,3,2] has two distinct nodes; the repeat flows through the
        same node state, so it differs from a 3-distinct-item session."""
        enc = create_encoder("srgnn", n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        with_repeat = encode_one(enc, [2, 3, 2])
        without = encode_one(enc, [2, 3, 4])
        assert not np.allclose(with_repeat, without, atol=1e-5)

    def test_graph_structure_matters(self):
        """Same item multiset, different transition edges."""
        enc = create_encoder("srgnn", n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        a = encode_one(enc, [2, 3, 4, 2])
        b = encode_one(enc, [3, 2, 4, 2])
        assert not np.allclose(a, b, atol=1e-5)


class TestGCSANSpecifics:
    def test_omega_zero_is_pure_ggnn(self):
        rng = np.random.default_rng(0)
        enc = GCSAN(n_items=N_ITEMS, dim=DIM, omega=0.0, rng=rng)
        enc.eval()
        batch = next(iter(SessionBatcher([Session([2, 3, 4], 0, 0)],
                                         batch_size=1, shuffle=False)))
        se = enc.encode(batch).data[0]
        # With omega=0 the SAN output is ignored: changing SAN weights
        # must not change the representation.
        for p in enc.san.parameters():
            p.data += 1.0
        se_after = enc.encode(batch).data[0]
        np.testing.assert_allclose(se, se_after, rtol=1e-5)

    def test_omega_one_is_pure_san(self):
        rng = np.random.default_rng(0)
        enc = GCSAN(n_items=N_ITEMS, dim=DIM, omega=1.0, rng=rng)
        enc.eval()
        batch = next(iter(SessionBatcher([Session([2, 3, 4], 0, 0)],
                                         batch_size=1, shuffle=False)))
        base = enc.encode(batch).data[0].copy()
        for p in enc.san.parameters():
            p.data += 0.5
        changed = enc.encode(batch).data[0]
        assert not np.allclose(base, changed, atol=1e-5)

    def test_invalid_omega(self):
        with pytest.raises(ValueError):
            GCSAN(n_items=5, dim=4, omega=1.5)


class TestBERT4RECSpecifics:
    def test_bidirectional_context(self):
        """Changing the FIRST item must change the representation read at
        the LAST position (bidirectional attention sees the whole
        session, unlike a causal model's first-step state)."""
        enc = create_encoder("bert4rec", n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        a = encode_one(enc, [2, 7, 8, 9])
        b = encode_one(enc, [3, 7, 8, 9])
        assert not np.allclose(a, b, atol=1e-5)

    def test_position_embeddings_break_bag_equivalence(self):
        enc = create_encoder("bert4rec", n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        a = encode_one(enc, [2, 3])
        b = encode_one(enc, [3, 2])
        assert not np.allclose(a, b, atol=1e-5)


class TestGRU4RECSpecifics:
    def test_longer_history_changes_state(self):
        enc = create_encoder("gru4rec", n_items=N_ITEMS, dim=DIM,
                             rng=np.random.default_rng(0))
        short = encode_one(enc, [4])
        longer = encode_one(enc, [2, 3, 4])
        assert not np.allclose(short, longer, atol=1e-5)
