"""Unit tests for the paired t-test helpers."""

import numpy as np
import pytest

from repro.eval.significance import (
    improvement_percent,
    paired_t_test,
    significance_marker,
)


class TestPairedTTest:
    def test_clear_improvement_is_significant(self):
        base = [10.0, 10.1, 9.9, 10.05, 9.95]
        treat = [12.0, 12.2, 11.9, 12.1, 11.95]
        t, p = paired_t_test(base, treat)
        assert t > 0
        assert p < 0.01

    def test_no_difference_not_significant(self):
        base = [10.0, 11.0, 9.0, 10.5, 9.5]
        t, p = paired_t_test(base, base)
        assert p == pytest.approx(1.0)

    def test_constant_positive_shift(self):
        base = [1.0, 2.0, 3.0]
        treat = [2.0, 3.0, 4.0]
        t, p = paired_t_test(base, treat)
        assert np.isinf(t) and t > 0
        assert p == 0.0

    def test_single_run_returns_nan(self):
        t, p = paired_t_test([1.0], [2.0])
        assert np.isnan(t)
        assert p == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])

    def test_symmetry_sign(self):
        base = [10.0, 10.2, 9.8, 10.1, 9.9]
        treat = [9.0, 9.2, 8.8, 9.1, 8.9]
        t, _ = paired_t_test(base, treat)
        assert t < 0


class TestMarkers:
    @pytest.mark.parametrize("p,marker", [
        (0.005, "**"), (0.01, "**"), (0.03, "*"), (0.05, "*"),
        (0.2, ""), (float("nan"), ""),
    ])
    def test_star_convention(self, p, marker):
        assert significance_marker(p) == marker


class TestImprovement:
    def test_basic(self):
        assert improvement_percent(8.70, 9.91) == pytest.approx(13.91, abs=0.01)

    def test_zero_baseline(self):
        assert improvement_percent(0.0, 1.0) == float("inf")
        assert improvement_percent(0.0, 0.0) == 0.0

    def test_negative(self):
        assert improvement_percent(10.0, 9.0) == pytest.approx(-10.0)
