"""Unit tests for dataset schema objects and validation."""

import pytest

from repro.data.schema import (
    AmazonDataset,
    Interaction,
    ProductMeta,
    Session,
    SessionDataset,
    SessionSplit,
    validate_dataset,
)


def make_dataset(sessions, n_items=5, split=None):
    split = split or SessionSplit(train=sessions, validation=[], test=[])
    return SessionDataset(
        name="t", domain="amazon", n_users=3, n_items=n_items,
        interactions=[], sessions=sessions, split=split)


class TestSession:
    def test_prefix_and_target(self):
        s = Session([3, 1, 4], user_id=0, day=0)
        assert s.prefix == [3, 1]
        assert s.target == 4
        assert len(s) == 3


class TestSessionSplit:
    def test_iterable(self):
        split = SessionSplit(train=[1], validation=[2], test=[3])
        train, val, test = split
        assert (train, val, test) == ([1], [2], [3])


class TestDatasetProperties:
    def test_average_session_length(self):
        ds = make_dataset([Session([1, 2], 0, 0), Session([1, 2, 3, 4], 1, 0)])
        assert ds.average_session_length == 3.0

    def test_average_empty(self):
        ds = make_dataset([])
        assert ds.average_session_length == 0.0


class TestValidation:
    def test_clean_dataset_passes(self):
        ds = make_dataset([Session([1, 2], 0, 0)])
        assert validate_dataset(ds) == []

    def test_short_session_flagged(self):
        ds = make_dataset([Session([1], 0, 0)])
        problems = validate_dataset(ds)
        assert any("shorter" in p for p in problems)

    def test_out_of_range_item_flagged(self):
        ds = make_dataset([Session([1, 99], 0, 0)])
        problems = validate_dataset(ds)
        assert any("out of range" in p for p in problems)

    def test_zero_item_flagged(self):
        ds = make_dataset([Session([0, 1], 0, 0)])
        assert validate_dataset(ds)

    def test_split_mismatch_flagged(self):
        sessions = [Session([1, 2], 0, 0), Session([2, 3], 1, 0)]
        split = SessionSplit(train=sessions[:1], validation=[], test=[])
        ds = make_dataset(sessions, split=split)
        problems = validate_dataset(ds)
        assert any("split sizes" in p for p in problems)


class TestMetaDataclasses:
    def test_product_meta_defaults(self):
        meta = ProductMeta(item_id=1, name="x", brand_id=0, category_id=0)
        assert meta.also_bought == []
        assert meta.bought_together == []

    def test_interaction_frozen(self):
        inter = Interaction(0, 1, 2.0)
        with pytest.raises(Exception):
            inter.item_id = 5
