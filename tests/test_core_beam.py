"""Unit tests for beam diagnostics and the exhaustive-path oracle."""

import numpy as np
import pytest

from repro.core import REKSConfig, REKSTrainer
from repro.core.beam import beam_diagnostics, enumerate_paths, reachable_items
from repro.data.loader import SessionBatcher


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    cfg = REKSConfig(dim=16, state_dim=16, epochs=1, batch_size=32,
                     action_cap=60, seed=0)
    t = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                    config=cfg, transe=beauty_transe)
    t.fit()
    return t


class TestEnumeration:
    def test_paths_have_exact_length(self, beauty_kg):
        start = int(beauty_kg.item_entity[1])
        paths = enumerate_paths(beauty_kg, start, length=2)
        assert paths
        assert all(p.hops == 2 for p in paths)
        assert all(p.entities[0] == start for p in paths)

    def test_paths_are_simple(self, beauty_kg):
        start = int(beauty_kg.item_entity[1])
        for path in enumerate_paths(beauty_kg, start, length=2)[:200]:
            assert path.is_simple()

    def test_paths_use_real_edges(self, beauty_kg):
        start = int(beauty_kg.item_entity[2])
        for path in enumerate_paths(beauty_kg, start, length=2)[:100]:
            for h, r, t in zip(path.entities[:-1], path.relations,
                               path.entities[1:]):
                assert beauty_kg.kg.has_edge(h, r, t)

    def test_fanout_guard(self, beauty_kg):
        start = int(beauty_kg.item_entity[1])
        with pytest.raises(RuntimeError):
            enumerate_paths(beauty_kg, start, length=2, max_paths=3)

    def test_fanout_guard_boundary(self, beauty_kg):
        """The guard fires *before* the list exceeds ``max_paths``."""
        start = int(beauty_kg.item_entity[1])
        total = len(enumerate_paths(beauty_kg, start, length=2))
        # Exactly at the limit: succeeds with exactly `total` paths.
        assert len(enumerate_paths(beauty_kg, start, length=2,
                                   max_paths=total)) == total
        # One below: raises rather than accumulating total paths first.
        with pytest.raises(RuntimeError):
            enumerate_paths(beauty_kg, start, length=2,
                            max_paths=total - 1)

    def test_reachable_items_are_items(self, beauty_kg, beauty_tiny):
        start = int(beauty_kg.item_entity[1])
        items = reachable_items(beauty_kg, start, length=2)
        assert items
        assert all(1 <= i <= beauty_tiny.n_items for i in items)


class TestBeamVsOracle:
    def test_beam_terminals_subset_of_oracle(self, trainer, beauty_tiny,
                                             beauty_kg):
        """Every item the beam reaches must be oracle-reachable."""
        batcher = SessionBatcher(beauty_tiny.split.test[:8], batch_size=8,
                                 shuffle=False)
        batch = next(iter(batcher))
        rec = trainer.agent.recommend(batch, k=10)
        for row in range(batch.batch_size):
            start = int(beauty_kg.item_entity[batch.last_items[row]])
            oracle = reachable_items(beauty_kg, start, length=2)
            for item in rec.ranked_items[row]:
                item = int(item)
                if item != 0 and rec.scores[row, item] > 0:
                    assert item in oracle


class TestDiagnostics:
    def test_fields_populated(self, trainer, beauty_tiny):
        batcher = SessionBatcher(beauty_tiny.split.test, batch_size=32,
                                 shuffle=False)
        diag = beam_diagnostics(trainer.agent, next(iter(batcher)))
        assert diag.paths_per_session > 0
        assert diag.candidates_per_session > 0
        assert 0.0 <= diag.target_reached_rate <= 1.0
        assert 0.0 <= diag.dead_end_rate < 0.5
        assert 0.0 < diag.mass_kept <= 1.0 + 1e-6

    def test_wider_final_beam_covers_more(self, trainer, beauty_tiny):
        batcher = SessionBatcher(beauty_tiny.split.test, batch_size=32,
                                 shuffle=False)
        batch = next(iter(batcher))
        from repro.autograd import no_grad
        with no_grad():
            se = trainer.encoder.encode(batch)
            narrow = trainer.agent.walk(se, batch, sizes=(100, 1))
            wide = trainer.agent.walk(se, batch, sizes=(100, 4))
        assert wide.num_paths > narrow.num_paths
