"""Behavioral tests of the RL machinery on a minimal two-armed KG.

A hand-built world where the last session item has exactly two 2-hop
paths: one reaching the ground-truth target, one reaching a decoy.
Training must shift policy probability toward the rewarded arm — the
most direct check that REINFORCE-with-baseline, the ŷ aggregation, and
the loss wiring are all pulling in the same direction.
"""

import numpy as np
import pytest

from repro.autograd import Adam, no_grad
from repro.core import REKSConfig
from repro.core.agent import REKSAgent
from repro.core.environment import KGEnvironment
from repro.core.policy import PolicyNetwork
from repro.core.rewards import RewardComputer, RewardWeights
from repro.data.loader import SessionBatcher
from repro.data.schema import Session
from repro.kg.builder import BuiltKG
from repro.kg.graph import KnowledgeGraph
from repro.models import create_encoder


def two_armed_world():
    """Items 1..3; item 1 reaches item 2 via hub A and item 3 via hub B.

    Path arms:  item1 -> hubA -> item2   (the target arm)
                item1 -> hubB -> item3   (the decoy arm)
    """
    kg = KnowledgeGraph()
    kg.add_entity_type("product", 3)
    kg.add_entity_type("category", 2)
    rel = kg.add_relation("belong_to")
    p1, p2, p3 = 0, 1, 2
    hub_a = kg.entity_id("category", 0)
    hub_b = kg.entity_id("category", 1)
    kg.add_triples([p1, hub_a, p2, hub_a], rel, [hub_a, p1, hub_a, p2])
    kg.add_triples([p1, hub_b, p3, hub_b], rel, [hub_b, p1, hub_b, p3])
    kg.finalize()

    item_entity = np.array([-1, p1, p2, p3], dtype=np.int64)
    entity_item = np.zeros(kg.num_entities, dtype=np.int64)
    entity_item[[p1, p2, p3]] = [1, 2, 3]
    return BuiltKG(kg=kg, item_entity=item_entity, entity_item=entity_item,
                   user_entity=None, include_users=False)


@pytest.fixture()
def world():
    built = two_armed_world()
    rng = np.random.default_rng(0)
    dim = 8
    entity_table = rng.standard_normal(
        (built.kg.num_entities, dim)).astype(np.float32)
    relation_table = rng.standard_normal(
        (built.kg.num_relations, dim)).astype(np.float32)
    encoder = create_encoder("gru4rec", n_items=3, dim=dim, rng=rng)
    policy = PolicyNetwork(dim, dim, dim, entity_table, relation_table,
                           rng=rng)
    env = KGEnvironment(built, action_cap=10, seed=0)
    rewards = RewardComputer(built, entity_table, relation_table,
                             weights=RewardWeights(), mode="full",
                             gamma=1.0)
    cfg = REKSConfig(dim=dim, state_dim=dim, sample_sizes=(2, 1),
                     gamma=1.0, beta=0.5, seed=0)
    agent = REKSAgent(encoder, policy, env, rewards, cfg)
    return built, agent


def target_probability(agent, batch, target_item):
    with no_grad():
        se = agent.encoder.encode(batch)
        rollout = agent.walk(se, batch)
        scores = agent.aggregate_scores_numpy(rollout, batch.batch_size)
    total = scores[0].sum()
    return scores[0, target_item] / total if total > 0 else 0.0


class TestPolicyLearnsRewardedArm:
    def test_probability_of_target_arm_increases(self, world):
        built, agent = world
        # Session [1] with target 2: only the hubA arm is rewarded.
        sessions = [Session([1, 2], 0, 0)]
        batch = next(iter(SessionBatcher(sessions, batch_size=1,
                                         shuffle=False)))
        before = target_probability(agent, batch, target_item=2)

        optimizer = Adam(agent.parameters(), lr=5e-3)
        agent.train()
        for _ in range(60):
            optimizer.zero_grad()
            loss, _ = agent.losses(batch)
            loss.backward()
            optimizer.step()

        after = target_probability(agent, batch, target_item=2)
        assert after > before
        assert after > 0.8, f"target arm only reached p={after:.3f}"

    def test_decoy_arm_suppressed(self, world):
        built, agent = world
        sessions = [Session([1, 2], 0, 0)]
        batch = next(iter(SessionBatcher(sessions, batch_size=1,
                                         shuffle=False)))
        optimizer = Adam(agent.parameters(), lr=5e-3)
        agent.train()
        for _ in range(60):
            optimizer.zero_grad()
            loss, _ = agent.losses(batch)
            loss.backward()
            optimizer.step()
        decoy = target_probability(agent, batch, target_item=3)
        assert decoy < 0.2

    def test_item_reward_prefers_target_path(self, world):
        """The *item-level* reward (Eq. 6) must strictly prefer the arm
        ending at the target.  (The composite reward need not, at
        initialization: the rank term can transiently favor whichever
        arm the untrained policy happens to rank first.)"""
        built, agent = world
        sessions = [Session([1, 2], 0, 0)]
        batch = next(iter(SessionBatcher(sessions, batch_size=1,
                                         shuffle=False)))
        with no_grad():
            se = agent.encoder.encode(batch)
            rollout = agent.walk(se, batch)
        yhat = agent.aggregate_scores_numpy(rollout, 1)
        _, components = agent.rewards.compute(rollout, batch.targets,
                                              se.data, yhat)
        items = built.items_of_entities(rollout.terminals)
        target_item_reward = components["item"][items == 2]
        decoy_item_reward = components["item"][items == 3]
        assert len(target_item_reward) and len(decoy_item_reward)
        assert target_item_reward.max() == pytest.approx(1.0)
        assert decoy_item_reward.max() < 1.0


class TestSelectionMechanics:
    def test_top_k_selects_highest(self, world):
        _, agent = world
        logp = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.3, 0.6]]))
        mask = np.ones((2, 3), dtype=bool)
        rows, cols = agent._select(logp, mask, k=1, stochastic=False)
        np.testing.assert_array_equal(sorted(zip(rows, cols)),
                                      [(0, 0), (1, 2)])

    def test_invalid_never_selected(self, world):
        _, agent = world
        logp = np.zeros((1, 4))
        mask = np.array([[False, True, False, True]])
        rows, cols = agent._select(logp, mask, k=4, stochastic=False)
        assert set(cols.tolist()) <= {1, 3}

    def test_gumbel_sampling_varies(self, world):
        _, agent = world
        logp = np.log(np.full((1, 5), 0.2))
        mask = np.ones((1, 5), dtype=bool)
        picks = set()
        for _ in range(20):
            _, cols = agent._select(logp, mask, k=1, stochastic=True)
            picks.add(int(cols[0]))
        assert len(picks) > 1  # uniform logits + gumbel -> variety

    def test_empty_mask_returns_nothing(self, world):
        _, agent = world
        logp = np.zeros((1, 3))
        mask = np.zeros((1, 3), dtype=bool)
        rows, cols = agent._select(logp, mask, k=2, stochastic=False)
        assert len(rows) == 0
