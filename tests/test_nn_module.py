"""Unit tests for Module/Parameter containers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class Toy(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = nn.Parameter(np.ones(2))

    def forward(self, x):
        return self.fc(x) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        m = Toy()
        names = dict(m.named_parameters())
        assert set(names) == {"fc.weight", "fc.bias", "scale"}

    def test_num_parameters(self):
        m = Toy()
        assert m.num_parameters() == 3 * 2 + 2 + 2

    def test_plain_attributes_not_registered(self):
        m = Toy()
        m.not_a_param = Tensor(np.zeros(5))
        assert "not_a_param" not in dict(m.named_parameters())


class TestTrainEval:
    def test_mode_propagates(self):
        m = Toy()
        assert m.training and m.fc.training
        m.eval()
        assert not m.training and not m.fc.training
        m.train()
        assert m.training and m.fc.training


class TestStateDict:
    def test_round_trip(self):
        a, b = Toy(), Toy()
        b.fc.weight.data[...] = 7.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.fc.weight.data, a.fc.weight.data)

    def test_state_dict_is_a_copy(self):
        m = Toy()
        state = m.state_dict()
        state["scale"][...] = 99.0
        assert not np.allclose(m.scale.data, 99.0)

    def test_missing_key_raises(self):
        m = Toy()
        state = m.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self):
        m = Toy()
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = Toy()
        state = m.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestContainers:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.Linear(8, 2, rng=rng))
        out = seq(Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.shape == (3, 2)
        assert len(seq) == 2
        assert isinstance(seq[0], nn.Linear)

    def test_sequential_registers_children(self):
        rng = np.random.default_rng(0)
        seq = nn.Sequential(nn.Linear(2, 2, rng=rng))
        assert len(seq.parameters()) == 2

    def test_module_list(self):
        rng = np.random.default_rng(0)
        ml = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(ml) == 3
        assert len(list(iter(ml))) == 3
        ml.append(nn.Linear(2, 2, rng=rng))
        assert len(ml) == 4
        assert len(ml.parameters()) == 8

    def test_zero_grad(self):
        m = Toy()
        out = m(Tensor(np.ones((1, 3), dtype=np.float32)))
        out.sum().backward()
        assert m.fc.weight.grad is not None
        m.zero_grad()
        assert m.fc.weight.grad is None
