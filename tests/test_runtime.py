"""Runtime execution plane: plane, COW, lease, pool, differentials.

Everything here is tier-1.  The REKS stack under test is an untrained
agent over the shared tiny fixtures (process workers are rebuilt from
a spec + shared-memory plane, which does not depend on training), and
the differential suites pin the headline contract: process-mode
rankings, explanations, and cache stats are bit-identical to thread
mode across mixed-k batches, mid-traffic hot swaps, and a staged-edge
compaction.
"""

from __future__ import annotations

import json
import os
import pickle
import time

import numpy as np
import pytest

from repro import REKSConfig, REKSTrainer
from repro.autograd.tensor import Tensor
from repro.core.agent import clone_agent
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.online import CheckpointRegistry
from repro.runtime import (
    FileLease,
    LeaseTimeout,
    ProcessWorkerPool,
    TablePlane,
)


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    """Untrained (but inference-ready) REKS stack, shared per module."""
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture()
def sessions(beauty_tiny):
    return [s for s in beauty_tiny.split.test if len(s.items) >= 2]


def _examples(sessions):
    return [(list(s.items[:-1]), s.items[-1], s.user_id)
            for s in sessions]


def _sync_rankings(trainer, sessions, k):
    ranked = []
    for rec in trainer.recommend_sessions(sessions, k=k):
        ranked.extend([[int(i) for i in row] for row in rec.ranked_items])
    return ranked


# ----------------------------------------------------------------------
# TablePlane
# ----------------------------------------------------------------------
class TestTablePlane:
    def _arrays(self):
        return {"a/ints": np.arange(7, dtype=np.int32),
                "b/floats": np.linspace(0, 1, 12,
                                        dtype=np.float32).reshape(3, 4)}

    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_publish_attach_round_trip(self, backend, tmp_path):
        arrays = self._arrays()
        plane = TablePlane.publish(arrays, key="gen-1", backend=backend,
                                   directory=tmp_path / "plane")
        try:
            assert plane.key == "gen-1"
            attached = TablePlane.attach(plane.manifest)
            for name, source in arrays.items():
                view = attached[name]
                np.testing.assert_array_equal(view, source)
                assert not view.flags.writeable
                assert view.dtype == source.dtype
            attached.close()
        finally:
            plane.unlink()

    def test_views_are_read_only_even_for_owner(self):
        plane = TablePlane.publish(self._arrays(), key="ro")
        try:
            with pytest.raises((ValueError, TypeError)):
                plane["a/ints"][0] = 99
        finally:
            plane.unlink()

    def test_manifest_is_picklable(self):
        plane = TablePlane.publish(self._arrays(), key="pickle-me")
        try:
            manifest = pickle.loads(pickle.dumps(plane.manifest))
            assert manifest.key == "pickle-me"
            assert set(manifest.entries) == set(self._arrays())
        finally:
            plane.unlink()

    def test_unlink_retires_shm_segment(self):
        plane = TablePlane.publish(self._arrays(), key="gone",
                                   backend="shm")
        manifest = plane.manifest
        plane.unlink()
        with pytest.raises(FileNotFoundError):
            TablePlane.attach(manifest)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            TablePlane.publish(self._arrays(), key="x", backend="nfs")


# ----------------------------------------------------------------------
# Copy-on-write over foreign buffers
# ----------------------------------------------------------------------
class TestCopyOnWrite:
    def test_frozen_from_pretrained_is_read_only(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        emb = Embedding.from_pretrained(table, trainable=False)
        assert not emb.weight.data.flags.writeable
        trainable = Embedding.from_pretrained(table, trainable=True)
        assert trainable.weight.data.flags.writeable

    def test_zero_copy_from_pretrained_aliases_buffer(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        table.flags.writeable = False
        emb = Embedding.from_pretrained(table, trainable=False,
                                        copy=False)
        assert emb.weight.data is table
        with pytest.raises(ValueError, match="copy=False"):
            Embedding.from_pretrained(table, trainable=True, copy=False)

    def test_load_identical_payload_keeps_sharing(self):
        table = np.ones((4, 3), dtype=np.float32)
        emb = Embedding.from_pretrained(table, trainable=False)
        shared = emb.weight.data
        emb.load_state_dict({"weight": np.ones((4, 3), dtype=np.float32)})
        assert emb.weight.data is shared

    def test_load_differing_payload_copies_privately(self):
        table = np.ones((4, 3), dtype=np.float32)
        emb = Embedding.from_pretrained(table, trainable=False)
        original = emb.weight.data
        emb.load_state_dict({"weight": np.full((4, 3), 2.0,
                                               dtype=np.float32)})
        assert emb.weight.data is not original
        assert emb.weight.data.flags.writeable
        np.testing.assert_array_equal(emb.weight.data, 2.0)
        np.testing.assert_array_equal(original, 1.0)  # untouched

    def test_partial_load_skips_missing_keys(self, rng):
        layer = Linear(3, 2, rng=rng)
        weight_before = layer.weight.data.copy()
        layer.load_state_dict({"bias": np.zeros(2, dtype=np.float32)},
                              partial=True)
        np.testing.assert_array_equal(layer.weight.data, weight_before)
        np.testing.assert_array_equal(layer.bias.data, 0.0)
        with pytest.raises(KeyError):
            layer.load_state_dict({"bias": np.zeros(2, dtype=np.float32)})

    def test_ensure_writable_copy_on_write(self):
        buffer = np.arange(4, dtype=np.float32)
        buffer.flags.writeable = False
        tensor = Tensor(buffer)
        assert tensor.data is buffer
        data = tensor.ensure_writable()
        assert data is tensor.data and data is not buffer
        data[0] = 9.0
        assert buffer[0] == 0.0
        assert tensor.ensure_writable() is data  # idempotent


# ----------------------------------------------------------------------
# FileLease
# ----------------------------------------------------------------------
class TestFileLease:
    def test_exclusive_while_held(self, tmp_path):
        path = tmp_path / "resource.lock"
        with FileLease(path, ttl_s=30.0):
            contender = FileLease(path, ttl_s=30.0, timeout_s=0.05)
            with pytest.raises(LeaseTimeout):
                contender.acquire()
        # Released: immediately acquirable again.
        with FileLease(path, timeout_s=1.0) as lease:
            assert lease.held

    def test_dead_holder_taken_over(self, tmp_path):
        path = tmp_path / "resource.lock"
        # A pid that cannot be alive (kernel pid space starts at 1 and
        # pid 1 is init; spawn+reap a child for a provably dead pid).
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        path.write_text(json.dumps({"pid": pid,
                                    "acquired_at": time.time()}))
        with FileLease(path, ttl_s=60.0, timeout_s=2.0) as lease:
            assert lease.held

    def test_expired_ttl_taken_over_when_liveness_unknowable(
            self, tmp_path):
        # A foreign-host holder (non-numeric pid) can only be broken
        # by the TTL.
        path = tmp_path / "resource.lock"
        path.write_text(json.dumps({"pid": "remote-host-4242",
                                    "acquired_at": time.time() - 100}))
        stale = time.time() - 100
        os.utime(path, (stale, stale))
        with FileLease(path, ttl_s=5.0, timeout_s=2.0) as lease:
            assert lease.held

    def test_live_holder_survives_ttl_expiry(self, tmp_path):
        """A slow-but-alive holder (think: paper-dims checkpoint write)
        must not have its lease broken by age — liveness outranks TTL."""
        path = tmp_path / "resource.lock"
        path.write_text(json.dumps({"pid": os.getppid(),  # alive for sure
                                    "acquired_at": time.time() - 100}))
        stale = time.time() - 100
        os.utime(path, (stale, stale))
        contender = FileLease(path, ttl_s=5.0, timeout_s=0.1)
        with pytest.raises(LeaseTimeout):
            contender.acquire()

    def test_unreadable_lease_respects_ttl_only(self, tmp_path):
        path = tmp_path / "resource.lock"
        path.write_text("not json")
        contender = FileLease(path, ttl_s=60.0, timeout_s=0.05)
        with pytest.raises(LeaseTimeout):
            contender.acquire()


# ----------------------------------------------------------------------
# Registry multi-writer safety
# ----------------------------------------------------------------------
def _publisher_proc(root, count, barrier):
    registry = CheckpointRegistry(root, keep_last=0)
    barrier.wait()
    for index in range(count):
        registry.publish({"w": np.full(4, index, dtype=np.float32)},
                         meta={"writer_pid": os.getpid()})


class TestRegistryMultiWriter:
    def test_two_process_publishers_race_safely(self, tmp_path):
        import multiprocessing as mp

        context = mp.get_context("fork")
        barrier = context.Barrier(2)
        count = 4
        procs = [context.Process(target=_publisher_proc,
                                 args=(tmp_path, count, barrier))
                 for _ in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(30)
            assert proc.exitcode == 0
        registry = CheckpointRegistry(tmp_path, keep_last=0)
        # No version reused, none lost, every checkpoint loadable.
        assert registry.versions() == list(range(1, 2 * count + 1))
        for version in registry.versions():
            state, meta = registry.load(version)
            assert meta["version"] == version

    def test_cross_handle_visibility(self, tmp_path, trainer):
        writer = CheckpointRegistry(tmp_path, keep_last=3)
        reader = CheckpointRegistry(tmp_path, keep_last=3)
        assert reader.latest() is None
        version = writer.publish(trainer.agent.state_dict())
        assert reader.latest() == version  # re-read from disk
        state, _ = reader.load(version)
        assert set(state) == set(trainer.agent.state_dict())

    def test_no_lock_litter_after_publish(self, tmp_path, trainer):
        registry = CheckpointRegistry(tmp_path)
        registry.publish(trainer.agent.state_dict())
        assert not (tmp_path / "registry.lock").exists()


# ----------------------------------------------------------------------
# ProcessWorkerPool
# ----------------------------------------------------------------------
class TestProcessWorkerPool:
    def test_exec_bit_identical_and_versioned(self, trainer, sessions):
        subset = sessions[:8]
        expected = _sync_rankings(trainer, subset, 5)
        with ProcessWorkerPool(trainer.agent, workers=2,
                               model_version=3) as pool:
            version, rows = pool.execute(_examples(subset), 5)
            assert version == 3
            assert [row[0] for row in rows] == expected
            assert pool.plane_key == trainer.env.fingerprint()
            assert pool.plane_nbytes > 0

    def test_swap_changes_results_and_version(self, trainer, sessions):
        subset = sessions[:6]
        state = trainer.agent.state_dict()
        perturbed = {k: (v + 0.05 if k.startswith("encoder.") else v)
                     for k, v in state.items()}
        with ProcessWorkerPool(trainer.agent, workers=1) as pool:
            before = pool.execute(_examples(subset), 5)
            pool.swap(9, perturbed)
            version, _ = pool.execute(_examples(subset), 5)
            assert version == 9
            pool.swap(10, state)
            version, rows = pool.execute(_examples(subset), 5)
            assert version == 10
            # Back on the original weights: original rankings.
            assert [r[0] for r in rows] == [r[0] for r in before[1]]

    def test_worker_death_is_invisible_to_callers(self, trainer, sessions):
        """Killing every worker must not fail a single future: execute
        routes around corpses (liveness check + one transparent retry)
        and the pool respawns in place."""
        subset = sessions[:4]
        expected = _sync_rankings(trainer, subset, 5)
        with ProcessWorkerPool(trainer.agent, workers=2) as pool:
            pool.execute(_examples(subset), 5)
            for worker in pool._workers:
                worker.process.kill()
            time.sleep(0.2)
            for _ in range(4):  # no WorkerDied may escape
                _, rows = pool.execute(_examples(subset), 5)
                assert [r[0] for r in rows] == expected
            assert pool.respawns >= 1
            assert len(pool.ping()) == pool.size  # both slots alive

    def test_health_sweep_respawns_without_traffic(self, trainer):
        """The background sweep replaces a corpse with no execute ever
        observing it (eager death detection)."""
        with ProcessWorkerPool(trainer.agent, workers=2,
                               health_interval_s=0.05) as pool:
            pool._workers[0].process.kill()
            deadline = time.time() + 5.0
            while pool.respawns < 1 and time.time() < deadline:
                time.sleep(0.05)
            assert pool.respawns >= 1
            assert all(w.process.exitcode is None for w in pool._workers)

    def test_broadcast_respawn_then_execute_converges(self, trainer,
                                                      sessions):
        """A corpse detected by a broadcast (ping) must not poison the
        idle queue: the execute that later pops the stale object gets
        the already-respawned slot occupant, not a second respawn or a
        ValueError."""
        subset = sessions[:4]
        expected = _sync_rankings(trainer, subset, 5)
        with ProcessWorkerPool(trainer.agent, workers=2) as pool:
            for worker in pool._workers:
                worker.process.kill()
            time.sleep(0.2)
            assert len(pool.ping()) == 2  # broadcast respawns both slots
            assert pool.respawns == 2
            results = []
            for _ in range(6):  # flush the corpses out of the queue
                _, rows = pool.execute(_examples(subset), 5)
                results.append([r[0] for r in rows])
            assert results and all(r == expected for r in results)
            assert pool.respawns == 2  # no double-respawn of one corpse

    def test_respawned_worker_bootstraps_current_state(self, trainer,
                                                       sessions):
        subset = sessions[:4]
        state = trainer.agent.state_dict()
        with ProcessWorkerPool(trainer.agent, workers=1) as pool:
            pool.swap(5, state)
            pool._workers[0].process.kill()
            time.sleep(0.2)
            # Death is invisible: the very next execute lands on a
            # respawn bootstrapped to the current ledger.
            version, _ = pool.execute(_examples(subset), 5)
            assert version == 5  # replayed onto the respawn

    def test_swap_delivered_to_dead_worker_lands_on_respawn(self, trainer,
                                                            sessions):
        """A swap whose broadcast finds a corpse must not leave the
        respawned slot one version behind: the ledger is updated
        before delivery, so the bootstrap replays the NEW state."""
        subset = sessions[:4]
        state = trainer.agent.state_dict()
        with ProcessWorkerPool(trainer.agent, workers=2) as pool:
            pool._workers[0].process.kill()
            time.sleep(0.2)
            pool.swap(7, state)  # delivery hits the corpse mid-broadcast
            assert pool.respawns == 1
            assert pool.ping() == [7, 7]
            versions = {pool.execute(_examples(subset), 5)[0]
                        for _ in range(4)}
            assert versions == {7}

    def test_delta_publish_reuses_spare_arena(self, beauty_tiny,
                                              beauty_kg, beauty_transe,
                                              sessions):
        """Double-buffered shard segments: the first two publishes of a
        shard prime its buffer pair (one arena each); from the third on
        the write lands in the retired spare and steady-state delta
        publish allocates zero new segments."""
        config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                            seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                              config=config, transe=beauty_transe)
        subset = sessions[:4]
        env = trainer.env
        co_occur = beauty_kg.kg.relation_id("co_occur")
        entities = beauty_kg.entities_of_items(
            np.arange(1, min(40, beauty_kg.n_items + 1)))
        head = int(entities[0])
        _, existing = env.actions_of(head)
        tails = [int(t) for t in entities
                 if int(t) != head and int(t) not in existing][:3]
        assert len(tails) == 3, "fixture KG unexpectedly complete"
        with ProcessWorkerPool(trainer.agent, workers=1) as pool:
            allocations = []
            for tail in tails:
                env.stage_edges([head], [co_occur], [tail])
                env.compact()
                pool.publish_tables(env)
                publish = pool.last_publish
                # Only the head's shard went dirty each round.
                assert len(publish["shards"]) == 1
                allocations.append(publish["segments_allocated"])
                # Every generation flip must still serve correctly.
                _, rows = pool.execute(_examples(subset), 5)
                assert [r[0] for r in rows] \
                    == _sync_rankings(trainer, subset, 5)
            assert allocations == [1, 1, 0]


# ----------------------------------------------------------------------
# Thread/process differential suite
# ----------------------------------------------------------------------
class TestModeEquivalence:
    def test_mixed_k_batches_bit_identical(self, trainer, sessions):
        subset = sessions[:12]
        ks = [3, 7, 5, 3, 7, 5, 3, 7, 5, 3, 7, 5]
        outputs = {}
        for mode in ("thread", "process"):
            with trainer.serve(worker_mode=mode, workers=2,
                               cache_size=0, max_wait_ms=5.0) as server:
                futures = [server.submit(s, k=k)
                           for s, k in zip(subset, ks)]
                outputs[mode] = [f.result() for f in futures]
        for got, want, k in zip(outputs["process"], outputs["thread"], ks):
            assert len(got.items) == k
            assert got.items == want.items
            assert got.explanations == want.explanations
            assert got.scores == want.scores  # bitwise, not approximate

    def test_cache_stats_bit_identical(self, trainer, sessions):
        subset = sessions[:6]
        stats = {}
        for mode in ("thread", "process"):
            with trainer.serve(worker_mode=mode, workers=1) as server:
                for _ in range(2):  # second pass hits
                    for session in subset:
                        server.recommend_one(session, k=5)
                snap = server.stats()
                stats[mode] = (snap.cache_hits, snap.cache_misses,
                               snap.to_dict()["cache_by_version"])
        assert stats["process"] == stats["thread"]

    def test_hot_swap_bit_identical_across_modes(self, trainer, sessions,
                                                 tmp_path):
        subset = sessions[:10]
        registry = CheckpointRegistry(tmp_path)
        state = trainer.agent.state_dict()
        v0 = registry.publish(state)
        perturbed = {k: (v + 0.03 if k.startswith("encoder.") else v)
                     for k, v in state.items()}
        v1 = registry.publish(perturbed)
        phases = {}
        for mode in ("thread", "process"):
            with trainer.serve(worker_mode=mode, workers=2,
                               cache_size=0, registry=registry) as server:
                server.swap_model(v0)
                before = [r.items for r
                          in server.recommend_many(subset, k=5)]
                server.swap_model(v1)
                assert server.model_version == v1
                after = [r.items for r
                         in server.recommend_many(subset, k=5)]
                phases[mode] = (before, after)
        assert phases["process"] == phases["thread"]
        # The perturbed checkpoint must actually change something,
        # otherwise the swap comparison proves nothing.
        assert phases["thread"][0] != phases["thread"][1]

    def test_staged_edges_and_compaction_bit_identical(
            self, beauty_tiny, beauty_kg, beauty_transe, sessions):
        # Private trainer: this test mutates the environment.
        config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                            seed=0)
        trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                              config=config, transe=beauty_transe)
        subset = sessions[:10]
        env = trainer.env
        co_occur = beauty_kg.kg.relation_id("co_occur")
        # Derive fresh (head, co_occur, tail) edges between products
        # that are not currently adjacent.
        entities = beauty_kg.entities_of_items(
            np.arange(1, min(40, beauty_kg.n_items + 1)))
        heads, tails = [], []
        for head in entities:
            _, existing = env.actions_of(int(head))
            for tail in entities[::-1]:
                if int(tail) != int(head) and int(tail) not in existing:
                    heads.append(int(head))
                    tails.append(int(tail))
                    break
            if len(heads) >= 6:
                break
        assert heads, "fixture KG unexpectedly complete"
        rels = [co_occur] * len(heads)

        with trainer.serve(worker_mode="process", workers=2,
                           cache_size=0) as proc_server, \
                trainer.serve(worker_mode="thread", workers=2,
                              cache_size=0) as thread_server:
            base_p = [r.items for r
                      in proc_server.recommend_many(subset, k=5)]
            base_t = [r.items for r
                      in thread_server.recommend_many(subset, k=5)]
            assert base_p == base_t

            # Stage: thread mode reads the shared env; process workers
            # get the broadcast.
            staged_parent = thread_server.stage_edges(heads, rels, tails)
            staged_workers = proc_server.stage_edges(heads, rels, tails)
            assert staged_parent == staged_workers > 0
            staged_p = [r.items for r
                        in proc_server.recommend_many(subset, k=5)]
            staged_t = [r.items for r
                        in thread_server.recommend_many(subset, k=5)]
            assert staged_p == staged_t

            # Compact: the parent env folds the overlay into fresh CSR;
            # process workers re-attach the new plane generation.
            merged = env.compact()
            assert merged == staged_parent
            key = proc_server.refresh_tables()
            assert key == env.fingerprint()
            assert proc_server.process_pool.generation == 1
            compact_p = [r.items for r
                         in proc_server.recommend_many(subset, k=5)]
            compact_t = [r.items for r
                         in thread_server.recommend_many(subset, k=5)]
            assert compact_p == compact_t
            assert compact_p == staged_p  # compaction preserves actions

    def test_worker_murder_never_fails_a_future(self, trainer, sessions):
        """Failure injection: kill every process worker under a live
        server — no caller-visible future may fail; the pool routes
        around the corpses and the next responses are already correct."""
        subset = sessions[:4]
        with trainer.serve(worker_mode="process", workers=2,
                           cache_size=0) as server:
            expected = [r.items for r
                        in server.recommend_many(subset, k=5)]
            for worker in server.process_pool._workers:
                worker.process.kill()
            time.sleep(0.2)
            for _ in range(3):  # every future must resolve, no retry loop
                recovered = [r.items for r
                             in server.recommend_many(subset, k=5)]
                assert recovered == expected
            assert server.process_pool.respawns >= 1


# ----------------------------------------------------------------------
# Cheap swap clones (satellite)
# ----------------------------------------------------------------------
class TestCheapClones:
    def test_clone_shares_frozen_tables_by_id(self, trainer):
        clone = clone_agent(trainer.agent)
        assert clone.policy.entity_emb.weight.data \
            is trainer.agent.policy.entity_emb.weight.data
        assert clone.policy.relation_emb.weight.data \
            is trainer.agent.policy.relation_emb.weight.data
        # Trainable modules stay private.
        assert clone.encoder.item_embedding.weight.data \
            is not trainer.agent.encoder.item_embedding.weight.data

    def test_finetuned_tables_are_not_shared(self, beauty_tiny, beauty_kg,
                                             beauty_transe):
        config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                            finetune_kg_embeddings=True, seed=0)
        private = REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                              config=config, transe=beauty_transe)
        clone = clone_agent(private.agent)
        assert clone.policy.entity_emb.weight.data \
            is not private.agent.policy.entity_emb.weight.data

    def test_swap_keeps_sharing_through_checkpoint_load(self, trainer,
                                                        tmp_path):
        registry = CheckpointRegistry(tmp_path)
        version = registry.publish(trainer.agent.state_dict())
        with trainer.serve(workers=1, registry=registry) as server:
            server.swap_model(version)
            live = server._agent
            assert live is not trainer.agent
            assert live.policy.entity_emb.weight.data \
                is trainer.agent.policy.entity_emb.weight.data
