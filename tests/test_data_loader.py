"""Unit tests for the session batcher."""

import numpy as np
import pytest

from repro.data.loader import SessionBatcher
from repro.data.schema import Session


def sessions_of(*item_lists):
    return [Session(list(items), user_id=i, day=i)
            for i, items in enumerate(item_lists)]


class TestCollation:
    def test_prefix_target_split(self):
        batcher = SessionBatcher(sessions_of([1, 2, 3]), batch_size=4,
                                 shuffle=False)
        batch = next(iter(batcher))
        np.testing.assert_array_equal(batch.items, [[1, 2]])
        np.testing.assert_array_equal(batch.targets, [3])
        np.testing.assert_array_equal(batch.last_items, [2])

    def test_padding_and_mask(self):
        batcher = SessionBatcher(sessions_of([1, 2, 3, 4], [5, 6]),
                                 batch_size=4, shuffle=False)
        batch = next(iter(batcher))
        np.testing.assert_array_equal(batch.items, [[1, 2, 3], [5, 0, 0]])
        np.testing.assert_array_equal(batch.mask, [[1, 1, 1], [1, 0, 0]])
        np.testing.assert_array_equal(batch.lengths, [3, 1])

    def test_last_item_respects_truncation(self):
        batcher = SessionBatcher(sessions_of(list(range(1, 30))),
                                 batch_size=1, max_length=5, shuffle=False)
        batch = next(iter(batcher))
        assert batch.items.shape[1] == 5
        # Prefix is items 1..28, truncated to the most recent 5: 24..28.
        np.testing.assert_array_equal(batch.items[0], [24, 25, 26, 27, 28])
        assert batch.targets[0] == 29
        assert batch.last_items[0] == 28

    def test_users_carried(self):
        batcher = SessionBatcher(sessions_of([1, 2], [3, 4]), batch_size=4,
                                 shuffle=False)
        batch = next(iter(batcher))
        np.testing.assert_array_equal(batch.users, [0, 1])


class TestAugmentation:
    def test_augment_generates_all_prefixes(self):
        batcher = SessionBatcher(sessions_of([1, 2, 3, 4]), batch_size=10,
                                 augment=True, shuffle=False)
        assert batcher.num_examples == 3  # [1]->2, [1,2]->3, [1,2,3]->4

    def test_no_augment_single_example(self):
        batcher = SessionBatcher(sessions_of([1, 2, 3, 4]), batch_size=10,
                                 augment=False)
        assert batcher.num_examples == 1

    def test_short_sessions_skipped(self):
        batcher = SessionBatcher(sessions_of([1]), batch_size=4)
        assert batcher.num_examples == 0


class TestIteration:
    def test_len_counts_batches(self):
        batcher = SessionBatcher(sessions_of(*[[1, 2]] * 10), batch_size=3,
                                 shuffle=False)
        assert len(batcher) == 4

    def test_all_examples_served(self):
        batcher = SessionBatcher(sessions_of(*[[i + 1, i + 2] for i in range(7)]),
                                 batch_size=2, shuffle=False)
        served = sum(b.batch_size for b in batcher)
        assert served == 7

    def test_shuffle_changes_order_not_content(self):
        sessions = sessions_of(*[[i + 1, i + 2] for i in range(20)])
        plain = SessionBatcher(sessions, batch_size=20, shuffle=False)
        shuffled = SessionBatcher(sessions, batch_size=20, shuffle=True,
                                  rng=np.random.default_rng(3))
        t_plain = next(iter(plain)).targets
        t_shuf = next(iter(shuffled)).targets
        assert sorted(t_plain.tolist()) == sorted(t_shuf.tolist())
        assert t_plain.tolist() != t_shuf.tolist()

    def test_reshuffles_each_epoch(self):
        sessions = sessions_of(*[[i + 1, i + 2] for i in range(30)])
        batcher = SessionBatcher(sessions, batch_size=30, shuffle=True,
                                 rng=np.random.default_rng(0))
        first = next(iter(batcher)).targets.tolist()
        second = next(iter(batcher)).targets.tolist()
        assert first != second
