"""Unit tests for sessionization, filtering, and splitting."""

import numpy as np
import pytest

from repro.data.schema import Interaction, Session
from repro.data.sessions import (
    build_sessions,
    filter_and_split,
    filter_sessions,
    split_sessions,
)


def interactions_from(spec):
    """spec: list of (user, item, timestamp)."""
    return [Interaction(u, i, t) for u, i, t in spec]


class TestBuildSessions:
    def test_groups_by_user_and_day(self):
        sessions = build_sessions(interactions_from([
            (1, 10, 0.1), (1, 11, 0.2),   # user 1, day 0
            (1, 12, 1.5),                 # user 1, day 1
            (2, 13, 0.3),                 # user 2, day 0
        ]))
        keys = {(s.user_id, s.day): s.items for s in sessions}
        assert keys[(1, 0)] == [10, 11]
        assert keys[(1, 1)] == [12]
        assert keys[(2, 0)] == [13]

    def test_orders_within_session_by_time(self):
        sessions = build_sessions(interactions_from([
            (1, 20, 0.9), (1, 10, 0.1), (1, 15, 0.5),
        ]))
        assert sessions[0].items == [10, 15, 20]

    def test_empty_input(self):
        assert build_sessions([]) == []


class TestFilterSessions:
    def test_drops_rare_items(self):
        sessions = [Session([1, 2], 0, 0)] * 5 + [Session([1, 3], 0, 1)]
        filtered, remap = filter_sessions(sessions, min_item_support=5)
        # Item 3 (support 1) must be gone; the [1, 3] session collapses to
        # length 1 and is dropped.
        assert len(filtered) == 5
        assert set(remap.keys()) == {1, 2}

    def test_iterates_to_fixpoint(self):
        # Item 9 appears 5 times but only in sessions kept alive by item
        # 8, which is rare; after dropping 8 those sessions shorten and 9
        # falls below support -> everything cascades away.
        sessions = ([Session([8, 9], 0, d) for d in range(5)]
                    + [Session([7, 7], 1, 0)])
        filtered, remap = filter_sessions(sessions, min_item_support=6)
        assert filtered == []
        assert remap == {}

    def test_remap_is_contiguous_from_one(self):
        sessions = [Session([10, 30], 0, 0)] * 5 + [Session([30, 50], 1, 0)] * 5
        filtered, remap = filter_sessions(sessions, min_item_support=5)
        assert sorted(remap.values()) == [1, 2, 3]
        for s in filtered:
            assert all(1 <= i <= 3 for i in s.items)

    def test_preserves_order_within_session(self):
        sessions = [Session([5, 6, 5], 0, 0)] * 5
        filtered, remap = filter_sessions(sessions, min_item_support=5)
        expected = [remap[5], remap[6], remap[5]]
        assert filtered[0].items == expected


class TestSplitSessions:
    def test_ratios_respected(self):
        sessions = [Session([1, 2], u, 0) for u in range(100)]
        split = split_sessions(sessions, rng=np.random.default_rng(0))
        assert len(split.train) == 75
        assert len(split.validation) == 10
        assert len(split.test) == 15

    def test_partition_is_exact(self):
        sessions = [Session([1, 2], u, 0) for u in range(37)]
        split = split_sessions(sessions, rng=np.random.default_rng(1))
        total = len(split.train) + len(split.validation) + len(split.test)
        assert total == 37

    def test_no_overlap(self):
        sessions = [Session([1, 2], u, 0) for u in range(50)]
        split = split_sessions(sessions, rng=np.random.default_rng(2))
        ids = lambda part: {id(s) for s in part}
        assert not (ids(split.train) & ids(split.test))
        assert not (ids(split.train) & ids(split.validation))

    def test_bad_ratios_raise(self):
        with pytest.raises(ValueError):
            split_sessions([], ratios=(0.5, 0.2, 0.2))

    def test_deterministic_under_seed(self):
        sessions = [Session([1, 2], u, 0) for u in range(30)]
        a = split_sessions(sessions, rng=np.random.default_rng(7))
        b = split_sessions(sessions, rng=np.random.default_rng(7))
        assert [s.items for s in a.train] == [s.items for s in b.train]


class TestFilterAndSplit:
    def test_pipeline(self):
        sessions = [Session([1, 2, 3], u % 3, u) for u in range(40)]
        split, remap = filter_and_split(sessions, min_item_support=5,
                                        rng=np.random.default_rng(0))
        assert len(remap) == 3
        total = len(split.train) + len(split.validation) + len(split.test)
        assert total == 40
