"""Zero-copy serving dataplane: ring codecs, transport differentials.

Tier-1.  Three layers pinned here:

1. **Ring mechanics** — slot claim / sequence-number publish / poll
   round-trips, ``RingFull`` backpressure at capacity, codec
   round-trips (mixed-k requests, responses with and without paths,
   worker-error slots), and the int32 encode guards.
2. **Pipe vs ring differential** — process pools and servers over
   ``transport="pipe"`` and ``transport="ring"`` must produce
   bit-identical rankings, scores, explanations, and cache stats over
   mixed-k traffic, mid-traffic hot swaps, and worker murder (the
   one-retry contract holds on both roads).
3. **Backpressure injection** — with a worker's request ring
   artificially full, ``execute`` falls back to the control pipe
   (counted, correct, never an error).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import REKSConfig, REKSTrainer
from repro.online import CheckpointRegistry
from repro.runtime import ProcessWorkerPool, RingFull, RingPair
from repro.runtime.rings import (
    RingUnsuitable,
    WorkerExecError,
    decode_request,
    decode_response,
    dedup_pairs,
    encode_error,
    encode_request,
    encode_response,
)


@pytest.fixture(scope="module")
def trainer(beauty_tiny, beauty_kg, beauty_transe):
    config = REKSConfig(dim=16, state_dim=16, sample_sizes=(20, 4),
                        seed=0)
    return REKSTrainer(beauty_tiny, beauty_kg, model_name="narm",
                       config=config, transe=beauty_transe)


@pytest.fixture()
def sessions(beauty_tiny):
    return [s for s in beauty_tiny.split.test if len(s.items) >= 2]


def _examples(sessions):
    return [(list(s.items[:-1]), s.items[-1], s.user_id)
            for s in sessions]


# ----------------------------------------------------------------------
# Ring mechanics
# ----------------------------------------------------------------------
class TestRingPair:
    # Parent and worker each hold their OWN RingPair over the segment
    # (tickets are process-local SPSC state), so every mechanics test
    # attaches a second pair for the consumer side.
    def test_request_response_round_trip(self):
        parent = RingPair.create(slots=2)
        try:
            worker = RingPair.attach(parent.manifest)
            parent.post_request(b"ping-payload")
            assert parent.requests_in_flight == 1
            assert bytes(worker.poll_request(spin=64)) == b"ping-payload"
            worker.post_response(b"pong-payload")
            assert bytes(parent.poll_response(spin=64)) == b"pong-payload"
            parent.note_response_consumed()
            assert parent.requests_in_flight == 0
            worker.close()
        finally:
            parent.unlink()

    def test_slots_recycle_in_order(self):
        parent = RingPair.create(slots=2)
        try:
            worker = RingPair.attach(parent.manifest)
            for round_id in range(7):  # > slots: tickets wrap the ring
                payload = f"msg-{round_id}".encode()
                parent.post_request(payload)
                assert bytes(worker.poll_request(spin=64)) == payload
                worker.post_response(payload[::-1])
                assert bytes(parent.poll_response(spin=64)) \
                    == payload[::-1]
                parent.note_response_consumed()
            assert parent.requests_in_flight == 0
            worker.close()
        finally:
            parent.unlink()

    def test_full_ring_raises_ring_full(self):
        parent = RingPair.create(slots=2)
        try:
            worker = RingPair.attach(parent.manifest)
            parent.post_request(b"a")
            parent.post_request(b"b")
            with pytest.raises(RingFull):
                parent.post_request(b"c")
            # One full round-trip frees the oldest slot again.
            assert bytes(worker.poll_request(spin=64)) == b"a"
            worker.post_response(b"a-done")
            assert bytes(parent.poll_response(spin=64)) == b"a-done"
            parent.note_response_consumed()
            parent.post_request(b"c")
            worker.close()
        finally:
            parent.unlink()

    def test_oversize_payload_raises_ring_unsuitable(self):
        parent = RingPair.create(slots=1, req_slot_bytes=64,
                                 resp_slot_bytes=64)
        try:
            with pytest.raises(RingUnsuitable):
                parent.post_request(b"\x00" * 65)
            parent.post_request(b"\x00" * 64)  # exactly full slot is fine
        finally:
            parent.unlink()

    def test_poll_empty_returns_none(self):
        parent = RingPair.create(slots=1)
        try:
            assert parent.poll_request(spin=8) is None
            assert parent.poll_response(spin=8) is None
        finally:
            parent.unlink()


class TestCodecs:
    def test_request_round_trip_mixed_k(self):
        examples = [([3, 1, 4, 1, 5], 9, 2), ([2, 7], 1, None)]
        payload = encode_request(examples, [5, 10], max_length=10)
        got_examples, got_ks, got_traces, got_cands, got_dedup = (
            decode_request(payload))
        assert got_examples == examples
        assert got_ks == [5, 10]
        assert got_traces == [0, 0]
        assert got_cands is None
        assert got_dedup is None

    def test_request_truncates_prefix_like_collate(self):
        long_prefix = list(range(1, 30))
        payload = encode_request([(long_prefix, 5, None)], [3],
                                 max_length=10)
        examples, _, _, _, _ = decode_request(payload)
        prefix, target, user = examples[0]
        assert prefix == long_prefix[-10:]
        assert target == 5 and user is None

    def test_request_rejects_oversize_ids(self):
        with pytest.raises(RingUnsuitable):
            encode_request([([2 ** 40], 1, None)], [5], max_length=10)

    def test_request_candidate_round_trip(self):
        examples = [([3, 1, 4], 9, 2), ([2, 7], 1, None)]
        cands = [[5, 9, 12], [4]]
        payload = encode_request(examples, [5, 10], max_length=10,
                                 candidates=cands)
        got_examples, got_ks, got_traces, got_cands, got_dedup = (
            decode_request(payload))
        assert got_examples == examples
        assert got_ks == [5, 10]
        assert got_traces == [0, 0]
        assert got_cands == cands
        assert got_dedup is None

    def test_request_candidates_with_traces_round_trip(self):
        examples = [([3, 1], 9, 2), ([2, 7], 1, None)]
        cands = [[5, 9], [4, 6, 8]]
        payload = encode_request(examples, [5, 10], max_length=10,
                                 traces=[101, 0], candidates=cands)
        _, _, got_traces, got_cands, _ = decode_request(payload)
        assert got_traces == [101, 0]
        assert got_cands == cands

    def test_request_candidates_reject_mismatched_rows(self):
        with pytest.raises(RingUnsuitable):
            encode_request([([1], 2, None)], [5], max_length=10,
                           candidates=[[3], [4]])

    def test_request_dedup_round_trip(self):
        # 4 original rows collapsed onto 2 unique examples; traces are
        # per ORIGINAL row, candidates per UNIQUE row.
        uniques = [([3, 1, 4], 9, 2), ([2, 7], 1, None)]
        row_map = [0, 1, 0, 0]
        orig_ks = [5, 10, 3, 5]
        payload = encode_request(uniques, [5, 10], max_length=10,
                                 traces=[7, 0, 0, 9],
                                 dedup=(row_map, orig_ks))
        examples, ks, traces, cands, dedup = decode_request(payload)
        assert examples == uniques
        assert ks == [5, 10]
        assert traces == [7, 0, 0, 9]
        assert cands is None
        assert dedup == (row_map, orig_ks)

    def test_request_dedup_with_candidates_round_trip(self):
        uniques = [([3, 1], 9, 2), ([2, 7], 1, None)]
        cands = [[5, 9], [4, 6, 8]]
        payload = encode_request(uniques, [5, 10], max_length=10,
                                 candidates=cands,
                                 dedup=([1, 0, 1], [10, 5, 7]))
        examples, ks, traces, got_cands, dedup = decode_request(payload)
        assert examples == uniques
        assert ks == [5, 10]
        assert traces == [0, 0, 0]  # forced, per original row
        assert got_cands == cands
        assert dedup == ([1, 0, 1], [10, 5, 7])

    def test_request_dedup_rejects_bad_shapes(self):
        with pytest.raises(RingUnsuitable):
            encode_request([([1], 2, None), ([3], 4, None)], [5, 5],
                           max_length=10, dedup=([0], [5]))
        with pytest.raises(RingUnsuitable):
            encode_request([([1], 2, None)], [5], max_length=10,
                           dedup=([0, 0], [5]))

    def test_dedup_pairs_first_occurrence_order(self):
        pairs, row_pair = dedup_pairs([0, 1, 0, 0, 1],
                                      [5, 10, 3, 5, 10])
        assert pairs == [(0, 5), (1, 10), (0, 3)]
        assert row_pair == [0, 1, 2, 0, 1]

    def test_absent_dedup_byte_identical_to_prior_request_codec(self):
        """With ``dedup=None`` the payload must be byte-identical to
        the PR 9 request layout (frozen here as a reference), across
        all trace/candidate combinations."""

        def reference_request(examples, ks, max_length, traces=None,
                              candidates=None):
            # Frozen PR 9 request layout (candidates, no dedup).
            no_user = -(1 << 31)
            n = len(examples)
            flat = [n]
            items, lengths, targets, users = [], [], [], []
            for prefix, target, user in examples:
                prefix = list(prefix)[-max_length:]
                lengths.append(len(prefix))
                targets.append(int(target))
                users.append(no_user if user is None else int(user))
                items += [int(i) for i in prefix]
            flat += [int(k) for k in ks]
            flat += lengths + targets + users + items
            if candidates is not None:
                flat += ([int(t) for t in traces]
                         if traces is not None else [0] * n)
                flat += [len(row) for row in candidates]
                for row in candidates:
                    flat += [int(i) for i in row]
            elif traces is not None and any(traces):
                flat += [int(t) for t in traces]
            return np.asarray(flat, dtype=np.int32).tobytes()

        examples = [([3, 1, 4, 1, 5], 9, 2), ([2, 7], 1, None)]
        cands = [[5, 9, 12], [4]]
        for kwargs in ({}, {"traces": [7, 0]}, {"candidates": cands},
                       {"traces": [7, 0], "candidates": cands}):
            assert (encode_request(examples, [5, 10], max_length=10,
                                   **kwargs)
                    == reference_request(examples, [5, 10], 10,
                                         **kwargs))

    def test_absent_candidates_byte_identical_to_prior_request_codec(self):
        """The candidate section must be invisible when absent: with
        ``candidates=None`` the payload is byte-identical to the
        pre-cascade request layout (frozen here as a reference), both
        with and without a trace section."""

        def reference_request(examples, ks, max_length, traces=None):
            # Frozen pre-cascade request layout (PR 8).
            no_user = -(1 << 31)
            n = len(examples)
            flat = [n]
            items, lengths, targets, users = [], [], [], []
            for prefix, target, user in examples:
                prefix = list(prefix)[-max_length:]
                lengths.append(len(prefix))
                targets.append(int(target))
                users.append(no_user if user is None else int(user))
                items += [int(i) for i in prefix]
            flat += [int(k) for k in ks]
            flat += lengths + targets + users + items
            if traces is not None and any(traces):
                flat += [int(t) for t in traces]
            return np.asarray(flat, dtype=np.int32).tobytes()

        examples = [([3, 1, 4, 1, 5], 9, 2), ([2, 7], 1, None)]
        assert (encode_request(examples, [5, 10], max_length=10)
                == reference_request(examples, [5, 10], 10))
        assert (encode_request(examples, [5, 10], max_length=10,
                               traces=[7, 0])
                == reference_request(examples, [5, 10], 10,
                                     traces=[7, 0]))

    def test_response_round_trip_with_and_without_paths(self):
        rows = [([4, 2], [1.5, 0.25], [([9, 4], [1], 0.5), None]),
                ([7], [0.125], [None])]
        version, got, spans, traces, rowrecs = decode_response(
            encode_response(11, rows))
        assert version == 11
        assert got == rows
        assert spans == [] and traces == [] and rowrecs == []

    def test_response_preserves_float64_bits(self):
        scores = [0.1 + 0.2, 1e-300, np.nextafter(1.0, 2.0)]
        rows = [([1, 2, 3], scores, [None, None, None])]
        _, got, _, _, _ = decode_response(encode_response(0, rows))
        assert all(a == b and np.float64(a).tobytes()
                   == np.float64(b).tobytes()
                   for a, b in zip(got[0][1], scores))

    def test_response_span_trailer_round_trip(self):
        rows = [([4, 2], [1.5, 0.25], [None, None])]
        spans = [(0, 1.25, 0.5), (1, 1.5, 0.125)]
        traces = [77, 0]
        _, got, got_spans, got_traces, got_rowrecs = decode_response(
            encode_response(3, rows, spans=spans, traces=traces))
        assert got == rows
        assert got_spans == spans
        assert got_traces == traces
        assert got_rowrecs == []

    def test_response_per_row_section_round_trip(self):
        rows = [([4, 2], [1.5, 0.25], [([9, 4], [1], 0.5), None]),
                ([7], [0.125], [None])]
        spans = [(1, 0.5, 0.25), (2, 0.75, 0.0625)]
        traces = [101, 202]
        rowrecs = [(101, (5, 3, 1), 0.1875, 0.03125),
                   (202, (2, 0, 0), 0.0625, 0.03125)]
        got = decode_response(encode_response(
            9, rows, spans=spans, traces=traces, rowrecs=rowrecs))
        version, got_rows, got_spans, got_traces, got_rowrecs = got
        assert version == 9
        assert got_rows == rows
        assert got_spans == spans
        assert got_traces == traces
        assert got_rowrecs == rowrecs

    def test_response_rowrecs_without_spans_round_trip(self):
        rows = [([7], [0.5], [None])]
        rowrecs = [(55, (4,), 0.25, 0.125)]
        _, got_rows, got_spans, _, got_rowrecs = decode_response(
            encode_response(1, rows, rowrecs=rowrecs))
        assert got_rows == rows
        assert got_spans == []
        assert got_rowrecs == rowrecs

    def test_response_rowrecs_reject_mismatched_hop_counts(self):
        rows = [([7], [0.5], [None])]
        with pytest.raises(RingUnsuitable, match="hop widths"):
            encode_response(1, rows,
                            rowrecs=[(1, (3, 2), 0.1, 0.1),
                                     (2, (3,), 0.1, 0.1)])

    def test_absent_telemetry_is_byte_identical_to_prior_codecs(self):
        """The telemetry sections must be invisible when absent: a
        tracing-off payload is byte-identical to the pre-telemetry
        layout, and a rowrecs-off payload is byte-identical to the
        span-only trailer layout (frozen here as references)."""

        def align(value: int) -> int:
            return (value + 7) & ~7

        def reference_base(version, rows):
            # Frozen pre-telemetry response layout.
            n = len(rows)
            ks = [len(r[0]) for r in rows]
            items, scores, path_len, path_nodes, probs = \
                [], [], [], [], []
            for row_items, row_scores, row_paths in rows:
                items += [int(i) for i in row_items]
                scores += [float(s) for s in row_scores]
                for blob in row_paths:
                    if blob is None:
                        path_len.append(-1)
                        continue
                    entities, relations, prob = blob
                    path_len.append(len(relations))
                    path_nodes += [int(e) for e in entities]
                    path_nodes += [int(r) for r in relations]
                    probs.append(float(prob))
            parts = [np.array([0, int(version)],
                              dtype=np.int64).tobytes(),
                     np.asarray([n] + ks + items,
                                dtype=np.int32).tobytes()]
            size = sum(len(p) for p in parts)
            parts.append(b"\x00" * (align(size) - size))
            parts.append(np.asarray(scores, dtype=np.float64).tobytes())
            parts.append(np.asarray(path_len + path_nodes,
                                    dtype=np.int32).tobytes())
            size = sum(len(p) for p in parts)
            parts.append(b"\x00" * (align(size) - size))
            parts.append(np.asarray(probs, dtype=np.float64).tobytes())
            return b"".join(parts)

        def reference_span_trailer(base, spans, traces):
            # Frozen span-only trailer layout.
            parts = [base,
                     np.asarray([len(spans), len(traces)]
                                + [int(t) for t in traces],
                                dtype=np.int32).tobytes()]
            size = sum(len(p) for p in parts)
            parts.append(b"\x00" * (align(size) - size))
            flat = []
            for kind_id, t0, dur in spans:
                flat += [float(kind_id), float(t0), float(dur)]
            parts.append(np.asarray(flat, dtype=np.float64).tobytes())
            return b"".join(parts)

        rows = [([4, 2], [1.5, 0.25], [([9, 4], [1], 0.5), None]),
                ([7], [0.125], [None])]
        assert encode_response(11, rows) == reference_base(11, rows)
        spans = [(0, 1.0, 0.5), (2, 1.5, 0.25), (3, 2.0, 0.125)]
        traces = [42]
        assert encode_response(11, rows, spans=spans, traces=traces) \
            == reference_span_trailer(reference_base(11, rows),
                                      spans, traces)

    def test_error_slot_raises_worker_exec_error(self):
        blob = encode_error("Traceback: kaboom", 4096)
        with pytest.raises(WorkerExecError, match="kaboom"):
            decode_response(blob)

    def test_error_truncated_to_capacity(self):
        blob = encode_error("x" * 10_000, 64)
        assert len(blob) <= 64


# ----------------------------------------------------------------------
# Pipe vs ring differential
# ----------------------------------------------------------------------
class TestTransportEquivalence:
    def test_pool_transport_knob_validated(self, trainer):
        with pytest.raises(ValueError, match="transport"):
            ProcessWorkerPool(trainer.agent, workers=1,
                              transport="carrier-pigeon")

    def test_exec_bit_identical_across_transports(self, trainer,
                                                  sessions):
        subset = _examples(sessions[:8])
        results = {}
        for transport in ("pipe", "ring"):
            with ProcessWorkerPool(trainer.agent, workers=2,
                                   transport=transport) as pool:
                assert pool.transport == transport
                _, rows = pool.execute(subset, 5)
                results[transport] = rows
                if transport == "ring":
                    assert pool.ring_batches >= 1
                    assert pool.pipe_batches == 0
                else:
                    assert pool.pipe_batches >= 1
                    assert pool.ring_batches == 0
        assert results["ring"] == results["pipe"]

    def test_mixed_k_bit_identical_across_transports(self, trainer,
                                                     sessions):
        subset = sessions[:12]
        ks = [3, 7, 5] * 4
        outputs = {}
        for transport in ("pipe", "ring"):
            with trainer.serve(worker_mode="process", workers=2,
                               transport=transport, cache_size=0,
                               max_wait_ms=5.0) as server:
                futures = [server.submit(s, k=k)
                           for s, k in zip(subset, ks)]
                outputs[transport] = [f.result() for f in futures]
        for got, want, k in zip(outputs["ring"], outputs["pipe"], ks):
            assert len(got.items) == k
            assert got.items == want.items
            assert got.scores == want.scores  # bitwise through the codec
            assert got.explanations == want.explanations

    def test_cache_stats_bit_identical_across_transports(self, trainer,
                                                         sessions):
        subset = sessions[:6]
        stats = {}
        for transport in ("pipe", "ring"):
            with trainer.serve(worker_mode="process", workers=1,
                               transport=transport) as server:
                for _ in range(2):  # second pass hits the cache
                    for session in subset:
                        server.recommend_one(session, k=5)
                snap = server.stats()
                stats[transport] = (snap.cache_hits, snap.cache_misses,
                                    snap.to_dict()["cache_by_version"])
        assert stats["ring"] == stats["pipe"]

    def test_hot_swap_bit_identical_across_transports(self, trainer,
                                                      sessions, tmp_path):
        subset = sessions[:10]
        registry = CheckpointRegistry(tmp_path)
        state = trainer.agent.state_dict()
        v0 = registry.publish(state)
        perturbed = {k: (v + 0.03 if k.startswith("encoder.") else v)
                     for k, v in state.items()}
        v1 = registry.publish(perturbed)
        phases = {}
        for transport in ("pipe", "ring"):
            with trainer.serve(worker_mode="process", workers=2,
                               transport=transport, cache_size=0,
                               registry=registry) as server:
                server.swap_model(v0)
                before = [r.items for r
                          in server.recommend_many(subset, k=5)]
                server.swap_model(v1)
                after = [r.items for r
                         in server.recommend_many(subset, k=5)]
                phases[transport] = (before, after)
        assert phases["ring"] == phases["pipe"]
        assert phases["ring"][0] != phases["ring"][1]  # swap did something

    def test_worker_murder_one_retry_contract_on_ring(self, trainer,
                                                      sessions):
        """Killing every worker under ring transport must stay
        invisible: execute routes around the corpses (one transparent
        retry), respawned workers get fresh rings, and results stay
        correct."""
        subset = sessions[:4]
        with trainer.serve(worker_mode="process", workers=2,
                           transport="ring", cache_size=0) as server:
            expected = [r.items for r
                        in server.recommend_many(subset, k=5)]
            for worker in server.process_pool._workers:
                worker.process.kill()
            time.sleep(0.2)
            for _ in range(3):
                recovered = [r.items for r
                             in server.recommend_many(subset, k=5)]
                assert recovered == expected
            assert server.process_pool.respawns >= 1
            # Replacement workers serve over the ring again (their
            # predecessors' rings were retired with the corpses).
            assert all(w.ring is not None
                       for w in server.process_pool._workers)


# ----------------------------------------------------------------------
# Backpressure injection
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_ring_falls_back_to_pipe(self, trainer, sessions):
        subset = _examples(sessions[:4])
        with ProcessWorkerPool(trainer.agent, workers=1,
                               transport="ring") as pool:
            expected = pool.execute(subset, 5)
            worker = pool._workers[0]
            # Jam the request ring: post raw payloads without ringing
            # the doorbell, so the worker never consumes them and every
            # slot stays claimed.
            while True:
                try:
                    worker.ring.post_request(b"\x00" * 8)
                except RingFull:
                    break
            before = pool.ring_fallbacks
            for _ in range(3):
                assert pool.execute(subset, 5) == expected
            assert pool.ring_fallbacks == before + 3
            assert pool.pipe_batches >= 3  # counted as pipe traffic

    def test_oversize_batch_rides_the_pipe(self, trainer, sessions):
        """A micro-batch whose worst-case response exceeds the response
        slot must be routed to the pipe up front (no truncation, no
        error)."""
        subset = _examples(sessions[:4])
        with ProcessWorkerPool(trainer.agent, workers=1,
                               transport="ring") as pool:
            _, expected_rows = pool.execute(subset, 5)
            before_pipe = pool.pipe_batches
            before_ring = pool.ring_batches
            # k large enough that the worst-case response bound blows
            # the slot (the worker clips k to the catalogue, so this
            # still executes — just over the pipe).
            huge_k = (pool._workers[0].ring.manifest.resp_slot_bytes
                      // pool._resp_cell_bytes + 1)
            _, rows = pool.execute(subset, huge_k)
            assert pool.pipe_batches == before_pipe + 1
            assert pool.ring_batches == before_ring
            assert pool.ring_fallbacks >= 1
            assert len(rows) == len(subset)
            for (top_items, *_), (all_items, *_) in zip(expected_rows,
                                                        rows):
                assert len(all_items) > 5
                assert set(top_items) <= set(all_items)
