"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled
from repro.autograd.tensor import _unbroadcast, concat, stack

from helpers import assert_grad_close, make_tensor


class TestBasics:
    def test_construction_defaults_to_float32(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32
        assert t.shape == (2,)
        assert not t.requires_grad

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_breaks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._prev == ()

    def test_backward_requires_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_on_leaf_without_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])


class TestNoGrad:
    def test_no_grad_disables_taping(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 2.0
        assert is_grad_enabled()
        assert not b.requires_grad
        assert b._prev == ()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_sum_leading_axis(self):
        g = np.ones((5, 3))
        np.testing.assert_allclose(_unbroadcast(g, (3,)), np.full(3, 5.0))

    def test_sum_kept_axis(self):
        g = np.ones((4, 3))
        out = _unbroadcast(g, (4, 1))
        np.testing.assert_allclose(out, np.full((4, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 2))
        np.testing.assert_allclose(_unbroadcast(g, ()), 4.0)


class TestElementwiseGrads:
    @pytest.mark.parametrize("op", [
        lambda a, b: a + b,
        lambda a, b: a - b,
        lambda a, b: a * b,
        lambda a, b: a / (b + 3.0),
    ])
    def test_binary_ops(self, rng, op):
        a = make_tensor(rng, 3, 4)
        b = make_tensor(rng, 3, 4)
        assert_grad_close(lambda: op(a, b).sum(), [a, b])

    def test_broadcast_add(self, rng):
        a = make_tensor(rng, 3, 4)
        b = make_tensor(rng, 4)
        assert_grad_close(lambda: (a + b).sum(), [a, b])

    def test_broadcast_mul_keepdims(self, rng):
        a = make_tensor(rng, 3, 4)
        b = make_tensor(rng, 3, 1)
        assert_grad_close(lambda: (a * b).sum(), [a, b])

    def test_scalar_operand(self, rng):
        a = make_tensor(rng, 5)
        assert_grad_close(lambda: (2.5 * a + 1.0).sum(), [a])

    def test_pow(self, rng):
        a = make_tensor(rng, 4)
        a.data = np.abs(a.data) + 0.5
        assert_grad_close(lambda: (a ** 3.0).sum(), [a])

    def test_rsub_rtruediv(self, rng):
        a = make_tensor(rng, 4)
        a.data = np.abs(a.data) + 1.0
        assert_grad_close(lambda: (1.0 - a).sum(), [a])
        assert_grad_close(lambda: (1.0 / a).sum(), [a])


class TestNonlinearityGrads:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu"])
    def test_unary(self, rng, op):
        a = make_tensor(rng, 3, 3)
        if op == "relu":
            a.data += 0.1 * np.sign(a.data)  # keep away from the kink
        assert_grad_close(lambda: getattr(a, op)().sum(), [a])

    def test_log_sqrt(self, rng):
        a = make_tensor(rng, 4)
        a.data = np.abs(a.data) + 0.5
        assert_grad_close(lambda: a.log().sum(), [a])
        assert_grad_close(lambda: a.sqrt().sum(), [a])


class TestMatmulGrads:
    def test_2d(self, rng):
        a = make_tensor(rng, 3, 4)
        b = make_tensor(rng, 4, 2)
        assert_grad_close(lambda: a.matmul(b).sum(), [a, b])

    def test_batched_3d(self, rng):
        a = make_tensor(rng, 2, 3, 4)
        b = make_tensor(rng, 2, 4, 2)
        assert_grad_close(lambda: a.matmul(b).sum(), [a, b])

    def test_broadcast_batched_with_2d(self, rng):
        a = make_tensor(rng, 2, 3, 4)
        b = make_tensor(rng, 4, 5)
        assert_grad_close(lambda: a.matmul(b).sum(), [a, b])

    def test_value_matches_numpy(self, rng):
        a = make_tensor(rng, 3, 4, requires_grad=False)
        b = make_tensor(rng, 4, 2, requires_grad=False)
        np.testing.assert_allclose(a.matmul(b).data, a.data @ b.data)


class TestReductionGrads:
    def test_sum_axis(self, rng):
        a = make_tensor(rng, 3, 4)
        assert_grad_close(lambda: a.sum(axis=1).sum(), [a])

    def test_sum_keepdims(self, rng):
        a = make_tensor(rng, 3, 4)
        assert_grad_close(lambda: (a.sum(axis=0, keepdims=True) * 2.0).sum(), [a])

    def test_mean(self, rng):
        a = make_tensor(rng, 6)
        assert_grad_close(lambda: a.mean(), [a])
        value = a.mean().item()
        assert value == pytest.approx(float(a.data.mean()), rel=1e-6)

    def test_mean_axis(self, rng):
        a = make_tensor(rng, 3, 4)
        assert_grad_close(lambda: a.mean(axis=0).sum(), [a])

    def test_max(self, rng):
        a = make_tensor(rng, 3, 4)
        assert_grad_close(lambda: a.max(axis=1).sum(), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor([[2.0, 2.0]], requires_grad=True, dtype=np.float64)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape_grad(self, rng):
        a = make_tensor(rng, 3, 4)
        assert_grad_close(lambda: (a.reshape(4, 3) * 2.0).sum(), [a])

    def test_transpose_grad(self, rng):
        a = make_tensor(rng, 2, 3, 4)
        assert_grad_close(lambda: a.transpose(2, 0, 1).sum(), [a])

    def test_swapaxes_negative(self, rng):
        a = make_tensor(rng, 2, 3, 4, requires_grad=False)
        assert a.swapaxes(-1, -2).shape == (2, 4, 3)

    def test_getitem_int_array(self, rng):
        a = make_tensor(rng, 5, 3)
        idx = np.array([0, 2, 2, 4])
        assert_grad_close(lambda: a[idx].sum(), [a])

    def test_getitem_duplicate_index_accumulates(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True, dtype=np.float64)
        a[np.array([1, 1, 1])].sum().backward()
        np.testing.assert_allclose(a.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(a.grad[0], [0.0, 0.0])

    def test_getitem_tuple_index(self, rng):
        a = make_tensor(rng, 4, 5)
        rows = np.array([0, 1, 3])
        cols = np.array([4, 2, 0])
        assert_grad_close(lambda: a[rows, cols].sum(), [a])

    def test_masked_fill(self, rng):
        a = make_tensor(rng, 3, 4)
        mask = np.zeros((3, 4), dtype=bool)
        mask[:, 0] = True
        out = a.masked_fill(mask, -5.0)
        np.testing.assert_allclose(out.data[:, 0], -5.0)
        assert_grad_close(lambda: a.masked_fill(mask, -5.0).sum(), [a])


class TestConcatStack:
    def test_concat_values_and_grads(self, rng):
        a = make_tensor(rng, 2, 3)
        b = make_tensor(rng, 2, 2)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        assert_grad_close(lambda: concat([a, b], axis=1).sum(), [a, b])

    def test_stack_grads(self, rng):
        a = make_tensor(rng, 3)
        b = make_tensor(rng, 3)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        assert_grad_close(lambda: (stack([a, b], axis=1) * 2.0).sum(), [a, b])

    def test_concat_mixed_requires_grad(self, rng):
        a = make_tensor(rng, 2, 2)
        b = make_tensor(rng, 2, 2, requires_grad=False)
        out = concat([a, b], axis=0)
        out.sum().backward()
        assert a.grad is not None
        assert b.grad is None


class TestGraphTraversal:
    def test_diamond_graph(self):
        a = Tensor([2.0], requires_grad=True, dtype=np.float64)
        b = a * 3.0
        c = a * 4.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_deep_chain(self):
        a = Tensor([1.0], requires_grad=True, dtype=np.float64)
        x = a
        for _ in range(50):
            x = x * 1.01
        x.sum().backward()
        assert a.grad[0] == pytest.approx(1.01 ** 50, rel=1e-5)

    def test_reuse_same_tensor_twice_in_one_op(self):
        a = Tensor([3.0], requires_grad=True, dtype=np.float64)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])
