"""Unit tests for the composite reward and its ablation modes."""

import numpy as np
import pytest

from repro.core.environment import Rollout
from repro.core.rewards import RewardComputer, RewardWeights


def make_rollout(built, session_idx, path_items):
    """Build a 2-hop rollout whose terminals are the given item ids
    (0 means 'terminate at a non-item entity' — we use a brand)."""
    kg = built.kg
    brand = kg.entity_id("brand", 0)
    entities = []
    for item in path_items:
        start = int(built.item_entity[1])
        mid = brand
        term = int(built.item_entity[item]) if item > 0 else brand
        entities.append([start, mid, term])
    n = len(path_items)
    return Rollout(
        session_idx=np.asarray(session_idx, dtype=np.int64),
        entities=np.asarray(entities, dtype=np.int64),
        relations=np.zeros((n, 2), dtype=np.int64),
        prob=np.full(n, 0.5),
    )


@pytest.fixture(scope="module")
def world(beauty_kg, beauty_transe):
    ent, rel = beauty_transe.embedding_tables()
    return beauty_kg, ent, rel


def make_computer(world, mode="full", gamma=1.0, rank_k=20):
    built, ent, rel = world
    return RewardComputer(built, ent, rel, weights=RewardWeights(),
                          mode=mode, gamma=gamma, rank_k=rank_k)


def dense_scores(built, rows):
    """(B, n+1) score matrix with the listed (row, item, score) triples."""
    n = built.n_items
    out = np.zeros((max(r for r, _, _ in rows) + 1, n + 1))
    for r, item, score in rows:
        out[r, item] = score
    return out


class TestItemReward:
    def test_exact_hit_is_one(self, world):
        built, _, _ = world
        comp = make_computer(world)
        rollout = make_rollout(built, [0], [5])
        targets = np.array([5])
        yhat = dense_scores(built, [(0, 5, 1.0)])
        se = np.zeros((1, 16))
        total, comps = comp.compute(rollout, targets, se, yhat)
        assert comps["item"][0] == pytest.approx(1.0)

    def test_near_miss_uses_similarity(self, world):
        built, ent, _ = world
        comp = make_computer(world)
        rollout = make_rollout(built, [0], [6])
        targets = np.array([5])
        yhat = dense_scores(built, [(0, 6, 1.0)])
        total, comps = comp.compute(rollout, targets, np.zeros((1, 16)), yhat)
        e6 = ent[built.item_entity[6]]
        e5 = ent[built.item_entity[5]]
        expected = 1.0 / (1.0 + np.exp(-(e6 * e5).sum()))
        assert comps["item"][0] == pytest.approx(expected, rel=1e-5)
        assert 0.0 < comps["item"][0] < 1.0

    def test_non_item_terminal_gets_zero(self, world):
        built, _, _ = world
        comp = make_computer(world)
        rollout = make_rollout(built, [0], [0])  # ends at a brand
        total, comps = comp.compute(rollout, np.array([5]),
                                    np.zeros((1, 16)),
                                    dense_scores(built, [(0, 1, 0.1)]))
        assert comps["item"][0] == 0.0
        assert comps["rank"][0] == 0.0


class TestRankReward:
    def test_top_ranked_item_gets_highest(self, world):
        built, _, _ = world
        comp = make_computer(world)
        rollout = make_rollout(built, [0, 0], [5, 6])
        yhat = dense_scores(built, [(0, 5, 0.9), (0, 6, 0.1)])
        _, comps = comp.compute(rollout, np.array([5]),
                                np.zeros((1, 16)), yhat)
        # Item 5 is rank 0 -> 1/log2(2) = 1; item 6 rank 1 -> 1/log2(3).
        assert comps["rank"][0] == pytest.approx(1.0)
        assert comps["rank"][1] == pytest.approx(1.0 / np.log2(3))

    def test_rank_beyond_k_gets_zero(self, world):
        built, _, _ = world
        comp = make_computer(world, rank_k=1)
        rollout = make_rollout(built, [0, 0], [5, 6])
        yhat = dense_scores(built, [(0, 5, 0.9), (0, 6, 0.1)])
        _, comps = comp.compute(rollout, np.array([5]),
                                np.zeros((1, 16)), yhat)
        assert comps["rank"][1] == 0.0


class TestPathReward:
    def test_in_unit_interval(self, world):
        built, _, _ = world
        comp = make_computer(world)
        rollout = make_rollout(built, [0], [5])
        se = np.random.default_rng(0).standard_normal((1, 16))
        _, comps = comp.compute(rollout, np.array([5]), se,
                                dense_scores(built, [(0, 5, 1.0)]))
        assert 0.0 < comps["path"][0] < 1.0

    def test_aligned_session_scores_higher(self, world):
        built, ent, rel = world
        comp = make_computer(world)
        rollout = make_rollout(built, [0], [5])
        # Session representation aligned with the path's mean embedding.
        mean = (ent[rollout.entities[0]].sum(axis=0)
                + rel[rollout.relations[0]].sum(axis=0)) / 5.0
        _, aligned = comp.compute(rollout, np.array([5]), mean[None, :] * 10,
                                  dense_scores(built, [(0, 5, 1.0)]))
        _, opposed = comp.compute(rollout, np.array([5]), -mean[None, :] * 10,
                                  dense_scores(built, [(0, 5, 1.0)]))
        assert aligned["path"][0] > opposed["path"][0]


class TestModesAndDiscount:
    def test_r1_mode_binary(self, world):
        built, _, _ = world
        comp = make_computer(world, mode="r1")
        rollout = make_rollout(built, [0, 0], [5, 6])
        total, comps = comp.compute(rollout, np.array([5]),
                                    np.zeros((1, 16)),
                                    dense_scores(built, [(0, 5, 1.0)]))
        np.testing.assert_allclose(total, [1.0, 0.0])

    def test_item_only_mode(self, world):
        built, _, _ = world
        comp = make_computer(world, mode="item_only")
        rollout = make_rollout(built, [0], [5])
        total, comps = comp.compute(rollout, np.array([5]),
                                    np.zeros((1, 16)),
                                    dense_scores(built, [(0, 5, 1.0)]))
        assert total[0] == pytest.approx(comps["item"][0])
        assert comps["rank"][0] == 0.0 and comps["path"][0] == 0.0

    def test_no_rank_mode(self, world):
        built, _, _ = world
        comp = make_computer(world, mode="no_rank")
        rollout = make_rollout(built, [0], [5])
        total, comps = comp.compute(rollout, np.array([5]),
                                    np.zeros((1, 16)),
                                    dense_scores(built, [(0, 5, 1.0)]))
        assert comps["rank"][0] == 0.0
        assert total[0] == pytest.approx(comps["item"][0] + comps["path"][0])

    def test_full_mode_weighting(self, world):
        built, _, _ = world
        comp = make_computer(world, mode="full")
        rollout = make_rollout(built, [0], [5])
        total, comps = comp.compute(rollout, np.array([5]),
                                    np.zeros((1, 16)),
                                    dense_scores(built, [(0, 5, 1.0)]))
        expected = (comps["item"][0] + 2.0 * comps["rank"][0]
                    + comps["path"][0])
        assert total[0] == pytest.approx(expected)

    def test_discount_applied(self, world):
        built, _, _ = world
        gamma = 0.5
        comp = make_computer(world, mode="r1", gamma=gamma)
        rollout = make_rollout(built, [0], [5])  # 2 hops -> gamma^1
        total, _ = comp.compute(rollout, np.array([5]),
                                np.zeros((1, 16)),
                                dense_scores(built, [(0, 5, 1.0)]))
        assert total[0] == pytest.approx(gamma)
