"""Unit tests for ranking metrics with hand-computed expectations."""

import numpy as np
import pytest

from repro.eval.metrics import (
    evaluate_rankings,
    hit_rate_at_k,
    mrr_at_k,
    ndcg_at_k,
    top_k_from_scores,
)


RANKED = [
    [3, 1, 2],   # target 1 at rank 1 (0-based)
    [5, 4, 6],   # target 9 missing
    [7, 8, 9],   # target 7 at rank 0
]
TARGETS = [1, 9, 7]


class TestHitRate:
    def test_hand_case(self):
        assert hit_rate_at_k(RANKED, TARGETS, 3) == pytest.approx(2 / 3)

    def test_k_truncation(self):
        assert hit_rate_at_k(RANKED, TARGETS, 1) == pytest.approx(1 / 3)

    def test_empty(self):
        assert hit_rate_at_k([], [], 5) == 0.0


class TestNDCG:
    def test_hand_case(self):
        expected = (1 / np.log2(3) + 0 + 1 / np.log2(2)) / 3
        assert ndcg_at_k(RANKED, TARGETS, 3) == pytest.approx(expected)

    def test_rank_zero_gives_one(self):
        assert ndcg_at_k([[5]], [5], 1) == pytest.approx(1.0)

    def test_monotone_in_k(self):
        assert ndcg_at_k(RANKED, TARGETS, 1) <= ndcg_at_k(RANKED, TARGETS, 3)


class TestMRR:
    def test_hand_case(self):
        expected = (1 / 2 + 0 + 1 / 1) / 3
        assert mrr_at_k(RANKED, TARGETS, 3) == pytest.approx(expected)


class TestEvaluateRankings:
    def test_reports_percent(self):
        out = evaluate_rankings([[1]], [1], ks=(1,))
        assert out["HR@1"] == pytest.approx(100.0)
        assert out["NDCG@1"] == pytest.approx(100.0)

    def test_all_cutoffs_present(self):
        out = evaluate_rankings(RANKED, TARGETS, ks=(1, 3))
        assert set(out) == {"HR@1", "NDCG@1", "MRR@1",
                            "HR@3", "NDCG@3", "MRR@3"}


class TestTopK:
    def test_matches_argsort(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((6, 30))
        ranked = top_k_from_scores(scores, 10)
        full = np.argsort(-scores, axis=1)[:, :10]
        np.testing.assert_array_equal(ranked, full)

    def test_k_larger_than_columns(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        ranked = top_k_from_scores(scores, 10)
        np.testing.assert_array_equal(ranked, [[1, 2, 0]])

    def test_descending_scores(self):
        scores = np.array([[5.0, 1.0, 3.0, 4.0]])
        ranked = top_k_from_scores(scores, 3)
        np.testing.assert_array_equal(ranked, [[0, 3, 2]])
