"""Property test: every walked path is a genuine simple KG walk.

Hypothesis generates small random KGs, session batches, and beam
shapes; every path :meth:`REKSAgent.walk` returns must (a) start at
the session's last item, (b) follow real KG edges hop by hop, (c)
never revisit an entity, and (d) appear in the exhaustive
:func:`enumerate_paths` oracle for its start entity.  Runs with both
flat and degree-bucketed frontiers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.core.agent import REKSAgent
from repro.core.beam import enumerate_paths
from repro.core.config import REKSConfig
from repro.core.environment import KGEnvironment
from repro.core.policy import PolicyNetwork
from repro.data.loader import SessionBatcher
from repro.data.schema import Session

from test_env_differential import random_built_kg

DIM = 8


def make_agent(built, cfg, seed):
    rng = np.random.default_rng(seed)
    policy = PolicyNetwork(
        session_dim=DIM, kg_dim=DIM, state_dim=DIM,
        entity_table=rng.standard_normal(
            (built.kg.num_entities, DIM)).astype(np.float32),
        relation_table=rng.standard_normal(
            (max(built.kg.num_relations, 1), DIM)).astype(np.float32),
        rng=rng)
    return REKSAgent(encoder=None, policy=policy, env=built_env(built, cfg),
                     rewards=None, config=cfg)


def built_env(built, cfg):
    return KGEnvironment(built, action_cap=cfg.action_cap, seed=cfg.seed)


def oracle_path_set(built, start, length):
    return {(tuple(p.entities), tuple(p.relations))
            for p in enumerate_paths(built, start, length,
                                     max_paths=200_000)}


@settings(max_examples=20, deadline=None)
@given(
    kg_seed=st.integers(0, 10_000),
    path_length=st.integers(1, 3),
    frontier_buckets=st.integers(1, 3),
    action_cap=st.integers(2, 30),
    stochastic=st.booleans(),
)
def test_walk_paths_are_simple_kg_walks(kg_seed, path_length,
                                        frontier_buckets, action_cap,
                                        stochastic):
    rng = np.random.default_rng(kg_seed)
    n_items = int(rng.integers(3, 9))
    built = random_built_kg(rng, n_items=n_items,
                            n_other=int(rng.integers(1, 5)),
                            n_relations=int(rng.integers(1, 4)),
                            n_edges=int(rng.integers(5, 60)),
                            dead_ends=int(rng.integers(0, 2)))
    cfg = REKSConfig(dim=DIM, state_dim=DIM, path_length=path_length,
                     sample_sizes=(3,) * path_length,
                     action_cap=action_cap,
                     frontier_buckets=frontier_buckets,
                     seed=kg_seed % 17)
    agent = make_agent(built, cfg, seed=kg_seed % 23)

    sessions = [Session(list(rng.integers(1, n_items + 1, size=2)), 0, 0)
                for _ in range(int(rng.integers(1, 5)))]
    batch = next(iter(SessionBatcher(sessions, batch_size=8,
                                     shuffle=False)))
    session_repr = Tensor(rng.standard_normal(
        (batch.batch_size, DIM)).astype(np.float32))
    with no_grad():
        rollout = agent.walk(session_repr, batch, stochastic=stochastic)

    starts = built.entities_of_items(batch.last_items)
    oracles = {}
    for p in range(rollout.num_paths):
        ents = rollout.entities[p].tolist()
        rels = rollout.relations[p].tolist()
        row = int(rollout.session_idx[p])
        # (a) starts at the session's last item
        assert ents[0] == starts[row]
        # (b) every hop is a real KG edge
        for h, r, t in zip(ents[:-1], rels, ents[1:]):
            assert built.kg.has_edge(h, r, t), (h, r, t)
        # (c) simple: no entity repeats
        assert len(set(ents)) == len(ents)
        # (d) cross-check against the exhaustive oracle
        start = ents[0]
        if start not in oracles:
            oracles[start] = oracle_path_set(built, start, len(rels))
        assert (tuple(ents), tuple(rels)) in oracles[start]


@pytest.mark.slow
@settings(max_examples=120, deadline=None)
@given(
    kg_seed=st.integers(0, 10_000),
    path_length=st.integers(1, 4),
    frontier_buckets=st.integers(1, 5),
    action_cap=st.integers(1, 60),
    stochastic=st.booleans(),
)
def test_walk_paths_are_simple_kg_walks_sweep(kg_seed, path_length,
                                              frontier_buckets,
                                              action_cap, stochastic):
    test_walk_paths_are_simple_kg_walks.hypothesis.inner_test(
        kg_seed, path_length, frontier_buckets, action_cap, stochastic)
