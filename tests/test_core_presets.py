"""Unit tests for the Table VII presets."""

import pytest

from repro.core.presets import PAPER_DIMS, TABLE_VII, paper_config


class TestTableVII:
    def test_all_twenty_cells_present(self):
        assert len(TABLE_VII) == 20  # 5 models x 4 datasets

    def test_every_model_dataset_combination(self):
        models = {m for m, _ in TABLE_VII}
        datasets = {d for _, d in TABLE_VII}
        assert models == {"gru4rec", "narm", "srgnn", "gcsan", "bert4rec"}
        assert datasets == {"beauty", "cellphones", "baby", "movielens"}
        for m in models:
            for d in datasets:
                assert (m, d) in TABLE_VII

    def test_paper_values_spot_checks(self):
        # Directly from Table VII of the paper.
        assert TABLE_VII[("gru4rec", "beauty")] == (256, 0.001, 0.5, 0.6)
        assert TABLE_VII[("gcsan", "cellphones")] == (256, 0.005, 0.5, 1.0)
        assert TABLE_VII[("bert4rec", "movielens")] == (128, 0.001, 0.2, 0.4)

    def test_dims(self):
        assert PAPER_DIMS["beauty"] == 400
        assert PAPER_DIMS["movielens"] == 64


class TestPaperConfig:
    def test_builds_config(self):
        cfg = paper_config("narm", "beauty")
        assert cfg.batch_size == 256
        assert cfg.lr == 0.0005
        assert cfg.dropout == 0.7
        assert cfg.beta == 0.2
        assert cfg.dim == 400
        assert cfg.sample_sizes == (100, 1)

    def test_model_name_normalization(self):
        cfg = paper_config("SR-GNN", "baby")
        assert cfg.lr == 0.0001

    def test_overrides(self):
        cfg = paper_config("narm", "movielens", dim=16, state_dim=16,
                           epochs=2)
        assert cfg.dim == 16
        assert cfg.epochs == 2
        assert cfg.lr == 0.0001  # preset survives

    def test_unknown_pair(self):
        with pytest.raises(KeyError):
            paper_config("narm", "books")
