"""Unit tests for TransE pre-training."""

import numpy as np
import pytest

from repro.kg import TransE, TransEConfig


class TestTraining:
    def test_positive_energy_below_negative(self, beauty_kg, beauty_transe):
        h, r, t = beauty_kg.kg.triples()
        rng = np.random.default_rng(0)
        corrupt = rng.integers(0, beauty_kg.kg.num_entities, size=len(h))
        pos = beauty_transe.energy(h, r, t).mean()
        neg = beauty_transe.energy(h, r, corrupt).mean()
        assert pos < neg - 0.3

    def test_entities_stay_normalized(self, beauty_transe):
        norms = np.linalg.norm(beauty_transe.entity, axis=1)
        np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-4)

    def test_deterministic_under_seed(self, beauty_kg):
        cfg = TransEConfig(dim=8, epochs=2, seed=3)
        a = TransE(beauty_kg.kg.num_entities, beauty_kg.kg.num_relations, cfg)
        a.fit(beauty_kg.kg)
        b = TransE(beauty_kg.kg.num_entities, beauty_kg.kg.num_relations, cfg)
        b.fit(beauty_kg.kg)
        np.testing.assert_allclose(a.entity, b.entity)

    def test_empty_triples_noop(self):
        model = TransE(5, 2, TransEConfig(dim=4, epochs=1))
        before = model.entity.copy()
        model.fit_triples(np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int64))
        np.testing.assert_allclose(model.entity, before)


class TestAccessors:
    def test_embedding_tables_are_copies(self, beauty_transe):
        ents, rels = beauty_transe.embedding_tables()
        ents[...] = 0.0
        assert not np.allclose(beauty_transe.entity, 0.0)

    def test_item_embeddings_layout(self, beauty_kg, beauty_transe):
        table = beauty_transe.item_embeddings(beauty_kg.item_entity)
        assert table.shape == (beauty_kg.n_items + 1,
                               beauty_transe.config.dim)
        np.testing.assert_allclose(table[0], 0.0)  # padding row
        np.testing.assert_allclose(
            table[1], beauty_transe.entity[beauty_kg.item_entity[1]])

    def test_energy_shape(self, beauty_transe, beauty_kg):
        h, r, t = beauty_kg.kg.triples()
        assert beauty_transe.energy(h[:10], r[:10], t[:10]).shape == (10,)
