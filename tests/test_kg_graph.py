"""Unit tests for the KnowledgeGraph store."""

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph


@pytest.fixture()
def small_kg():
    kg = KnowledgeGraph()
    kg.add_entity_type("product", 3)   # entities 0..2
    kg.add_entity_type("brand", 2)     # entities 3..4
    rel = kg.add_relation("produced_by")
    co = kg.add_relation("co_occur")
    kg.add_triples([0, 1], rel, [3, 4])
    kg.add_triples([0], co, [1])
    kg.finalize()
    return kg, rel, co


class TestSchema:
    def test_entity_id_ranges(self, small_kg):
        kg, _, _ = small_kg
        assert kg.entity_id("product", 0) == 0
        assert kg.entity_id("brand", 0) == 3
        assert kg.local_id(4) == ("brand", 1)
        assert kg.entity_type(2) == "product"

    def test_entity_id_out_of_range(self, small_kg):
        kg, _, _ = small_kg
        with pytest.raises(IndexError):
            kg.entity_id("brand", 2)
        with pytest.raises(IndexError):
            kg.local_id(99)

    def test_duplicate_type_raises(self):
        kg = KnowledgeGraph()
        kg.add_entity_type("product", 2)
        with pytest.raises(ValueError):
            kg.add_entity_type("product", 2)

    def test_is_type_vectorized(self, small_kg):
        kg, _, _ = small_kg
        np.testing.assert_array_equal(
            kg.is_type(np.array([0, 3, 2, 4]), "product"),
            [True, False, True, False])

    def test_relation_registration_idempotent(self):
        kg = KnowledgeGraph()
        a = kg.add_relation("x")
        b = kg.add_relation("x")
        assert a == b
        assert kg.num_relations == 1


class TestTriples:
    def test_neighbors(self, small_kg):
        kg, rel, co = small_kg
        rels, tails = kg.neighbors(0)
        assert set(zip(rels.tolist(), tails.tolist())) == {(rel, 3), (co, 1)}
        assert kg.out_degree(0) == 2
        assert kg.out_degree(2) == 0

    def test_has_edge(self, small_kg):
        kg, rel, co = small_kg
        assert kg.has_edge(0, rel, 3)
        assert not kg.has_edge(0, rel, 4)

    def test_count_edges_for_relation(self, small_kg):
        kg, rel, co = small_kg
        assert kg.count_edges_for_relation(rel) == 2
        assert kg.count_edges_for_relation(co) == 1

    def test_dedupe(self):
        kg = KnowledgeGraph()
        kg.add_entity_type("n", 2)
        r = kg.add_relation("r")
        kg.add_triples([0, 0, 0], r, [1, 1, 1])
        kg.finalize()
        assert kg.num_triples == 1

    def test_out_of_range_triples_raise(self):
        kg = KnowledgeGraph()
        kg.add_entity_type("n", 2)
        r = kg.add_relation("r")
        with pytest.raises(IndexError):
            kg.add_triples([0], r, [5])

    def test_query_before_finalize_raises(self):
        kg = KnowledgeGraph()
        kg.add_entity_type("n", 2)
        with pytest.raises(RuntimeError):
            kg.neighbors(0)

    def test_add_after_finalize_raises(self, small_kg):
        kg, rel, _ = small_kg
        with pytest.raises(RuntimeError):
            kg.add_triples([0], rel, [1])

    def test_mismatched_shapes_raise(self):
        kg = KnowledgeGraph()
        kg.add_entity_type("n", 3)
        r = kg.add_relation("r")
        with pytest.raises(ValueError):
            kg.add_triples([0, 1], r, [2])

    def test_empty_graph_finalizes(self):
        kg = KnowledgeGraph()
        kg.add_entity_type("n", 3)
        kg.finalize()
        assert kg.num_triples == 0
        rels, tails = kg.neighbors(1)
        assert len(rels) == 0


class TestNames:
    def test_entity_name_fallback(self, small_kg):
        kg, _, _ = small_kg
        assert kg.entity_name(3) == "brand:0"
        kg.entity_names[3] = "Dove"
        assert kg.entity_name(3) == "Dove"
