"""Unit tests for GRUCell / GRU, including padding-mask invariance."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


def manual_gru_step(cell: nn.GRUCell, x: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Reference GRU computation with numpy (torch gate layout)."""
    hs = cell.hidden_size
    gi = x @ cell.weight_ih.data.T + cell.bias_ih.data
    gh = h @ cell.weight_hh.data.T + cell.bias_hh.data

    def sig(v):
        return 1.0 / (1.0 + np.exp(-v))

    r = sig(gi[:, :hs] + gh[:, :hs])
    z = sig(gi[:, hs:2 * hs] + gh[:, hs:2 * hs])
    n = np.tanh(gi[:, 2 * hs:] + r * gh[:, 2 * hs:])
    return (1.0 - z) * n + z * h


class TestGRUCell:
    def test_matches_manual(self, rng):
        cell = nn.GRUCell(4, 3, rng=rng)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        h = rng.standard_normal((5, 3)).astype(np.float32)
        out = cell(Tensor(x), Tensor(h)).data
        np.testing.assert_allclose(out, manual_gru_step(cell, x, h),
                                   rtol=1e-4, atol=1e-5)

    def test_output_shape(self, rng):
        cell = nn.GRUCell(4, 7, rng=rng)
        out = cell(Tensor(np.zeros((2, 4), dtype=np.float32)),
                   Tensor(np.zeros((2, 7), dtype=np.float32)))
        assert out.shape == (2, 7)

    def test_gradients_flow_to_weights(self, rng):
        cell = nn.GRUCell(3, 3, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)), dtype=np.float32)
        h = Tensor(np.zeros((2, 3), dtype=np.float32))
        cell(x, h).sum().backward()
        assert cell.weight_ih.grad is not None
        assert cell.weight_hh.grad is not None


class TestGRU:
    def test_output_shapes(self, rng):
        gru = nn.GRU(4, 6, rng=rng)
        x = Tensor(rng.standard_normal((3, 5, 4)).astype(np.float32))
        outputs, final = gru(x)
        assert outputs.shape == (3, 5, 6)
        assert final.shape == (3, 6)

    def test_final_hidden_is_last_output(self, rng):
        gru = nn.GRU(4, 6, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 4)).astype(np.float32))
        outputs, final = gru(x)
        np.testing.assert_allclose(outputs.data[:, -1], final.data, rtol=1e-6)

    def test_padding_mask_preserves_hidden(self, rng):
        """A right-padded sequence must yield the same final state as the
        unpadded version of the same sequence."""
        gru = nn.GRU(3, 5, rng=rng)
        short = rng.standard_normal((1, 2, 3)).astype(np.float32)
        padded = np.concatenate(
            [short, np.zeros((1, 3, 3), dtype=np.float32)], axis=1)
        mask = np.array([[1, 1, 0, 0, 0]], dtype=np.float32)
        _, final_short = gru(Tensor(short))
        _, final_padded = gru(Tensor(padded), mask=mask)
        np.testing.assert_allclose(final_padded.data, final_short.data,
                                   rtol=1e-5)

    def test_multi_layer(self, rng):
        gru = nn.GRU(4, 4, num_layers=2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32))
        outputs, final = gru(x)
        assert outputs.shape == (2, 3, 4)
        assert final.shape == (2, 4)

    def test_initial_hidden_state(self, rng):
        gru = nn.GRU(3, 3, rng=rng)
        x = Tensor(np.zeros((1, 1, 3), dtype=np.float32))
        h0 = Tensor(np.ones((1, 3), dtype=np.float32) * 0.3)
        _, with_h0 = gru(x, h0=h0)
        _, without = gru(x)
        assert not np.allclose(with_h0.data, without.data)

    def test_gradients_through_time(self, rng):
        gru = nn.GRU(2, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, 2)).astype(np.float32),
                   requires_grad=True)
        _, final = gru(x)
        final.sum().backward()
        assert x.grad is not None
        # Early timesteps must receive gradient (no vanishing to exactly 0).
        assert np.abs(x.grad[:, 0]).sum() > 0
