"""Unit tests for the Amazon / MovieLens KG builders."""

import numpy as np
import pytest


class TestAmazonBuilder:
    def test_relation_inventory_matches_table2(self, beauty_kg):
        names = set(beauty_kg.kg.relation_names)
        assert names == {"purchase", "produced_by", "belong_to",
                         "also_bought", "also_viewed", "bought_together",
                         "co_occur"}

    def test_entity_inventory_matches_table3(self, beauty_kg):
        assert set(beauty_kg.kg.entity_type_names) == {
            "user", "product", "brand", "category", "related_product"}

    def test_metadata_edges_bidirectional(self, beauty_kg, beauty_tiny):
        kg = beauty_kg.kg
        rel = kg.relation_id("produced_by")
        meta = beauty_tiny.products[1]
        product = beauty_kg.item_entity[1]
        brand = kg.entity_id("brand", meta.brand_id)
        assert kg.has_edge(product, rel, brand)
        assert kg.has_edge(brand, rel, product)

    def test_co_occur_directed_from_train_sessions(self, beauty_kg,
                                                   beauty_tiny):
        kg = beauty_kg.kg
        co = kg.relation_id("co_occur")
        session = next(s for s in beauty_tiny.split.train
                       if len(set(s.items)) >= 2 and s.items[0] != s.items[1])
        head = beauty_kg.item_entity[session.items[0]]
        tail = beauty_kg.item_entity[session.items[1]]
        assert kg.has_edge(head, co, tail)

    def test_test_sessions_not_leaked(self, beauty_kg, beauty_tiny):
        """co_occur edges must come only from the training split."""
        kg = beauty_kg.kg
        co = kg.relation_id("co_occur")
        train_pairs = set()
        for s in beauty_tiny.split.train:
            for a, b in zip(s.items[:-1], s.items[1:]):
                if a != b:
                    train_pairs.add((a, b))
        heads, rels, tails = kg.triples()
        co_mask = rels == co
        for h, t in zip(heads[co_mask], tails[co_mask]):
            pair = (int(beauty_kg.entity_item[h]),
                    int(beauty_kg.entity_item[t]))
            assert pair in train_pairs

    def test_purchase_edges_bidirectional(self, beauty_kg, beauty_tiny):
        kg = beauty_kg.kg
        purchase = kg.relation_id("purchase")
        session = beauty_tiny.split.train[0]
        user = beauty_kg.user_entity[session.user_id]
        product = beauty_kg.item_entity[session.items[0]]
        assert kg.has_edge(user, purchase, product)
        assert kg.has_edge(product, purchase, user)

    def test_item_entity_mapping_roundtrip(self, beauty_kg, beauty_tiny):
        items = np.arange(1, beauty_tiny.n_items + 1)
        entities = beauty_kg.entities_of_items(items)
        back = beauty_kg.items_of_entities(entities)
        np.testing.assert_array_equal(back, items)

    def test_non_item_entities_map_to_zero(self, beauty_kg):
        kg = beauty_kg.kg
        brand = kg.entity_id("brand", 0)
        assert beauty_kg.items_of_entities(np.array([brand]))[0] == 0


class TestNoUserVariant:
    def test_no_user_entities(self, beauty_kg_no_users):
        assert "user" not in beauty_kg_no_users.kg.entity_type_names
        assert beauty_kg_no_users.user_entity is None

    def test_no_purchase_relation(self, beauty_kg_no_users):
        assert "purchase" not in beauty_kg_no_users.kg.relation_names

    def test_smaller_than_full_kg(self, beauty_kg, beauty_kg_no_users):
        assert (beauty_kg_no_users.kg.num_entities
                < beauty_kg.kg.num_entities)
        assert beauty_kg_no_users.kg.num_triples < beauty_kg.kg.num_triples


class TestMovieLensBuilder:
    def test_relation_inventory_matches_table4(self, movielens_kg):
        assert set(movielens_kg.kg.relation_names) == {
            "belong_to", "directed_by", "acted_by", "written_by",
            "narrated_by", "rated", "produced_by", "co_occur"}

    def test_entity_inventory_matches_table5_no_users(self, movielens_kg):
        types = set(movielens_kg.kg.entity_type_names)
        assert types == {"movie", "genre", "director", "actor", "writer",
                         "language", "rating", "country"}
        assert "user" not in types

    def test_genre_edges_bidirectional(self, movielens_kg, movielens_tiny):
        kg = movielens_kg.kg
        rel = kg.relation_id("belong_to")
        meta = movielens_tiny.movies[1]
        movie = movielens_kg.item_entity[1]
        genre = kg.entity_id("genre", meta.genre_ids[0])
        assert kg.has_edge(movie, rel, genre)
        assert kg.has_edge(genre, rel, movie)

    def test_unknown_domain_raises(self, beauty_tiny):
        from repro.kg import build_kg
        beauty_tiny_bad = type(beauty_tiny)(
            **{**beauty_tiny.__dict__, "domain": "alien"})
        with pytest.raises(ValueError):
            build_kg(beauty_tiny_bad)
