"""Unit tests for the policy network."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.policy import PolicyNetwork


@pytest.fixture()
def policy(rng):
    entity_table = rng.standard_normal((20, 8)).astype(np.float32)
    relation_table = rng.standard_normal((4, 8)).astype(np.float32)
    return PolicyNetwork(session_dim=8, kg_dim=8, state_dim=8,
                         entity_table=entity_table,
                         relation_table=relation_table,
                         rng=np.random.default_rng(0))


class TestStateFeaturizer:
    def test_state_shape(self, policy, rng):
        se = Tensor(rng.standard_normal((3, 8)).astype(np.float32))
        sp = policy.path_context(np.array([1, 2, 3]), None)
        st = policy.state(se, sp)
        assert st.shape == (3, 8)

    def test_path_context_adds_relation(self, policy):
        without = policy.path_context(np.array([5]), None).data
        with_rel = policy.path_context(np.array([5]), np.array([2])).data
        expected = without + policy.relation_emb.weight.data[2]
        np.testing.assert_allclose(with_rel, expected, rtol=1e-6)


class TestActionScoring:
    def test_log_probs_normalize_over_valid(self, policy, rng):
        se = Tensor(rng.standard_normal((2, 8)).astype(np.float32))
        rels = np.zeros((2, 5), dtype=np.int64)
        tails = np.tile(np.arange(5), (2, 1))
        mask = np.array([[True, True, True, False, False],
                         [True, True, True, True, True]])
        logp = policy.step(se, np.array([1, 2]), None, rels, tails, mask)
        probs = np.exp(logp.data)
        np.testing.assert_allclose((probs * mask).sum(axis=1), np.ones(2),
                                   rtol=1e-4)

    def test_invalid_actions_get_negligible_mass(self, policy, rng):
        se = Tensor(rng.standard_normal((1, 8)).astype(np.float32))
        rels = np.zeros((1, 4), dtype=np.int64)
        tails = np.arange(4)[None, :]
        mask = np.array([[True, False, True, False]])
        logp = policy.step(se, np.array([0]), None, rels, tails, mask)
        probs = np.exp(logp.data[0])
        assert probs[1] < 1e-6 and probs[3] < 1e-6

    def test_gradients_flow_to_state_mlp(self, policy, rng):
        se = Tensor(rng.standard_normal((2, 8)).astype(np.float32),
                    requires_grad=True)
        rels = np.zeros((2, 3), dtype=np.int64)
        tails = np.tile(np.arange(3), (2, 1))
        mask = np.ones((2, 3), dtype=bool)
        logp = policy.step(se, np.array([0, 1]), None, rels, tails, mask)
        logp.sum().backward()
        assert se.grad is not None
        assert policy.w1.weight.grad is not None

    def test_kg_embeddings_frozen_by_default(self, policy, rng):
        se = Tensor(rng.standard_normal((1, 8)).astype(np.float32))
        rels = np.zeros((1, 3), dtype=np.int64)
        tails = np.arange(3)[None, :]
        mask = np.ones((1, 3), dtype=bool)
        logp = policy.step(se, np.array([0]), None, rels, tails, mask)
        logp.sum().backward()
        assert policy.entity_emb.weight.grad is None
        assert not policy.entity_emb.weight.requires_grad

    def test_finetune_flag_enables_kg_grads(self, rng):
        policy = PolicyNetwork(
            session_dim=4, kg_dim=4, state_dim=4,
            entity_table=rng.standard_normal((10, 4)).astype(np.float32),
            relation_table=rng.standard_normal((2, 4)).astype(np.float32),
            finetune=True, rng=np.random.default_rng(0))
        se = Tensor(rng.standard_normal((1, 4)).astype(np.float32))
        rels = np.zeros((1, 2), dtype=np.int64)
        tails = np.arange(2)[None, :]
        logp = policy.step(se, np.array([0]), None, rels, tails,
                           np.ones((1, 2), dtype=bool))
        logp.sum().backward()
        assert policy.entity_emb.weight.grad is not None
