"""Unit tests for the standalone next-item trainer."""

import numpy as np
import pytest

from repro.models import StandaloneConfig, StandaloneTrainer, create_encoder


@pytest.fixture()
def small_world(beauty_tiny):
    enc = create_encoder("gru4rec", n_items=beauty_tiny.n_items, dim=16,
                         rng=np.random.default_rng(0))
    cfg = StandaloneConfig(epochs=3, batch_size=64, lr=3e-3, patience=5,
                           seed=0)
    trainer = StandaloneTrainer(enc, beauty_tiny.split.train,
                                beauty_tiny.split.validation, cfg)
    return trainer, beauty_tiny


class TestTraining:
    def test_loss_decreases(self, small_world):
        trainer, _ = small_world
        history = trainer.fit()
        assert history.losses[-1] < history.losses[0]

    def test_history_records_val_metrics(self, small_world):
        trainer, _ = small_world
        history = trainer.fit()
        assert len(history.val_metrics) == len(history.losses)
        assert history.best_epoch >= 0

    def test_best_state_restored(self, small_world):
        trainer, ds = small_world
        history = trainer.fit()
        best = history.val_metrics[history.best_epoch]["HR@10"]
        current = trainer.evaluate(ds.split.validation, ks=(10,))["HR@10"]
        assert current == pytest.approx(best, abs=1e-9)

    def test_early_stopping(self, beauty_tiny):
        enc = create_encoder("gru4rec", n_items=beauty_tiny.n_items, dim=8,
                             rng=np.random.default_rng(0))
        cfg = StandaloneConfig(epochs=50, batch_size=64, lr=0.0,
                               patience=1, seed=0)
        trainer = StandaloneTrainer(enc, beauty_tiny.split.train,
                                    beauty_tiny.split.validation, cfg)
        history = trainer.fit()
        # lr=0 -> no improvement after epoch 1 -> stop well before 50.
        assert len(history.losses) <= 4


class TestScoring:
    def test_score_matrix_shape(self, small_world):
        trainer, ds = small_world
        scores = trainer.score_sessions(ds.split.test)
        assert scores.shape == (len(ds.split.test), ds.n_items + 1)

    def test_evaluate_keys_and_ranges(self, small_world):
        trainer, ds = small_world
        trainer.fit()
        metrics = trainer.evaluate(ds.split.test, ks=(5, 10))
        for key in ("HR@5", "NDCG@5", "HR@10", "NDCG@10", "MRR@5"):
            assert key in metrics
            assert 0.0 <= metrics[key] <= 100.0
        assert metrics["HR@5"] <= metrics["HR@10"]
        assert metrics["NDCG@5"] <= metrics["NDCG@10"]

    def test_empty_sessions(self, small_world):
        trainer, _ = small_world
        metrics = trainer.evaluate([], ks=(5,))
        assert metrics["HR@5"] == 0.0

    def test_beats_random_after_training(self, small_world):
        trainer, ds = small_world
        trainer.fit()
        metrics = trainer.evaluate(ds.split.test, ks=(10,))
        random_hr = 100.0 * 10 / ds.n_items
        assert metrics["HR@10"] > random_hr


class TestClozeMode:
    def test_bert4rec_cloze_training(self, beauty_tiny):
        enc = create_encoder("bert4rec", n_items=beauty_tiny.n_items, dim=16,
                             rng=np.random.default_rng(0))
        cfg = StandaloneConfig(epochs=2, batch_size=64, lr=3e-3,
                               cloze_prob=0.3, patience=5, seed=0)
        trainer = StandaloneTrainer(enc, beauty_tiny.split.train,
                                    beauty_tiny.split.validation, cfg)
        history = trainer.fit()
        assert history.losses[-1] < history.losses[0]
