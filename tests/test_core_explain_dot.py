"""Unit tests for the DOT export of explanation cases."""

import numpy as np
import pytest

from repro.core import Explainer, REKSConfig, REKSTrainer


@pytest.fixture(scope="module")
def fitted(beauty_tiny, beauty_kg, beauty_transe):
    cfg = REKSConfig(dim=16, state_dim=16, epochs=2, batch_size=64,
                     action_cap=60, sample_sizes=(100, 4), seed=2)
    trainer = REKSTrainer(beauty_tiny, beauty_kg, model_name="gru4rec",
                          config=cfg, transe=beauty_transe)
    trainer.fit()
    return trainer


class TestDotExport:
    def test_valid_dot_structure(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        case = explainer.explain_sessions(beauty_tiny.split.test[:1],
                                          k=3)[0]
        dot = explainer.case_to_dot(case)
        assert dot.startswith("digraph explanation {")
        assert dot.rstrip().endswith("}")
        assert "rankdir=LR" in dot

    def test_session_items_are_boxes(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        case = explainer.explain_sessions(beauty_tiny.split.test[:1],
                                          k=3)[0]
        dot = explainer.case_to_dot(case)
        assert dot.count("shape=box") == len(set(
            int(fitted.built.item_entity[i])
            for i in case.session_items))

    def test_edges_carry_relation_labels(self, fitted, beauty_tiny):
        explainer = Explainer(fitted)
        cases = explainer.explain_sessions(beauty_tiny.split.test[:5], k=3)
        case = next(c for c in cases
                    if any(r.path for r in c.recommendations))
        dot = explainer.case_to_dot(case)
        assert "->" in dot
        assert any(rel in dot for rel in fitted.built.kg.relation_names)

    def test_parses_with_networkx(self, fitted, beauty_tiny):
        """DOT output round-trips through the pydot-less nx parser
        only if syntactically plausible; fall back to a brace/quote
        balance check when pydot is unavailable."""
        explainer = Explainer(fitted)
        case = explainer.explain_sessions(beauty_tiny.split.test[:1],
                                          k=3)[0]
        dot = explainer.case_to_dot(case)
        assert dot.count("{") == dot.count("}")
        assert dot.count('"') % 2 == 0
