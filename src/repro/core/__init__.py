"""REKS: the paper's contribution — an RL framework over the session KG.

The pipeline (Fig. 2): a wrapped non-explainable SR model produces the
session representation ``Se``; the policy network fuses ``Se`` with the
current KG position into a state (Eq. 3) and walks the graph from the
session's last item; beam-searched paths simultaneously yield the
recommendation list (aggregated path probability ``ŷ``) and one
semantic explanation path per recommended item.
"""

from repro.core.config import REKSConfig
from repro.core.environment import (
    FrontierBucket,
    KGEnvironment,
    Rollout,
    RolloutWorkspace,
)
from repro.core.policy import PolicyNetwork
from repro.core.rewards import RewardComputer, RewardWeights
from repro.core.agent import REKSAgent
from repro.core.trainer import REKSTrainer
from repro.core.explain import Explanation, RecommendedItem, Explainer
from repro.core.beam import BeamDiagnostics, beam_diagnostics, enumerate_paths
from repro.core.presets import paper_config

__all__ = [
    "REKSConfig",
    "FrontierBucket",
    "KGEnvironment",
    "Rollout",
    "RolloutWorkspace",
    "PolicyNetwork",
    "RewardComputer",
    "RewardWeights",
    "REKSAgent",
    "REKSTrainer",
    "Explanation",
    "RecommendedItem",
    "Explainer",
    "BeamDiagnostics",
    "beam_diagnostics",
    "enumerate_paths",
    "paper_config",
]
