"""REKS hyper-parameters and ablation switches (Table VII + §IV-B-2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


REWARD_MODES = ("full", "no_rank", "item_only", "r1")
LOSS_MODES = ("joint", "reward_only", "ce_only")
START_MODES = ("last_item", "user")


@dataclass
class REKSConfig:
    """All knobs of the framework.

    Defaults follow the paper: path length 2 with per-step sampling
    sizes (100, 1), discount 0.99, reward ``R_item + 2·R_rank + R_path``
    and loss ``β·Lr + Lce``.  The ablation benchmarks flip
    ``reward_mode`` / ``loss_mode`` / ``start_from`` / ``path_length``.
    """

    # Dimensions.  The paper sets d0 = d1 (= 400 Amazon, 64 MovieLens);
    # R_path = σ(Pᵀ Se) requires it, so a single `dim` controls both,
    # and `state_dim` is d2.
    dim: int = 64
    state_dim: int = 64

    # Path search (Table VII text: length 2, sizes {100, 1}).
    path_length: int = 2
    sample_sizes: Tuple[int, ...] = (100, 1)
    action_cap: int = 250          # prune huge action spaces (PGPR-style)
    start_from: str = "last_item"  # or "user" (Fig. 4 ablation)
    # Degree-bucketed frontier padding: split each hop's frontier into
    # this many degree-quantile buckets so a single hub entity doesn't
    # inflate the pad width for the whole batch.  1 = one rectangle
    # per hop (the paper's layout and the default).
    frontier_buckets: int = 1
    # Graph-store shards: the capped adjacency is partitioned into this
    # many contiguous, edge-mass-balanced entity-range shards so online
    # compaction rebuilds only the shards a delta touches and the
    # runtime plane ships per-shard generations.  0 = auto: one shard
    # per ~250k edges, so small graphs keep the monolithic single-
    # gather hot path (see repro.graphstore.auto_shard_count).
    # Sharding never changes query results, only delta cost.
    graph_shards: int = 0

    # Reward (Eq. 5): weights of (item, rank, path) components.
    reward_weights: Tuple[float, float, float] = (1.0, 2.0, 1.0)
    reward_mode: str = "full"      # Fig. 5: full / no_rank / item_only / r1
    gamma: float = 0.99
    rank_k: int = 20               # top-K list used by the rank reward

    # Loss (Eq. 11).
    beta: float = 0.2
    loss_mode: str = "joint"       # Fig. 3: joint / reward_only / ce_only

    # Optimization.
    lr: float = 1e-3
    batch_size: int = 128
    epochs: int = 10
    max_grad_norm: float = 5.0
    dropout: float = 0.5
    weight_decay: float = 0.0
    patience: int = 3
    augment_sessions: bool = True
    max_session_length: int = 10

    # TransE pre-training.
    transe_epochs: int = 10
    transe_lr: float = 0.01
    transe_margin: float = 1.0

    # Extensions (off by default; see DESIGN.md §7).
    train_selection: str = "top"   # or "sample" (stochastic exploration)
    finetune_kg_embeddings: bool = False
    entropy_weight: float = 0.0
    fallback_to_encoder: bool = False  # fill top-K with encoder scores

    # Serving (repro.serving): request-coalescing server defaults.
    # ``REKSTrainer.serve()`` builds a RecommendationServer from these;
    # they have no effect on training.
    serve_max_batch: int = 32      # flush a micro-batch at this size...
    serve_max_wait_ms: float = 2.0  # ...or when the oldest request ages out
    serve_workers: int = 2         # batch-executing workers (one workspace each)
    serve_cache_size: int = 2048   # LRU explanation-cache entries (0 = off)
    serve_default_k: int = 20      # top-K when a request doesn't specify one
    # Execution plane (repro.runtime): thread workers share the GIL;
    # process workers attach the shared-memory table plane and execute
    # micro-batches with true parallelism (rankings bit-identical).
    serve_worker_mode: str = "thread"   # or "process"
    serve_mp_context: str = "auto"      # fork | spawn | auto (prefer fork)
    runtime_plane_backend: str = "auto"  # shm | mmap | auto (prefer shm)
    # Process-mode exec dataplane: "ring" serves micro-batches over
    # fixed-slot shared-memory rings (no pickling on the hot path;
    # control messages stay on the pipe, and the pool falls back to
    # "pipe" per batch when a payload doesn't fit and wholesale when
    # the host lacks POSIX shared memory); "pipe" forces the PR 4
    # pickle protocol for everything.  Ignored in thread mode.
    serve_transport: str = "ring"       # or "pipe"
    # Process-mode eager death detection: the pool's background sweep
    # polls worker liveness at this period and respawns corpses before
    # the next micro-batch is routed to them.  0 disables the sweep
    # (execute() still routes around and retries past dead workers).
    serve_health_interval_ms: float = 200.0
    # Telemetry (repro.telemetry): fleet-wide shared-memory metric
    # blocks (server + worker children + updater child, merged by the
    # parent registry) and sampled cross-process request tracing.
    serve_metrics: bool = True       # False skips block creation entirely
    serve_trace_sample: float = 0.0  # fraction of requests traced (1 = all)
    # Per-request span attribution: sampled batches additionally carry
    # per-row frontier widths and walk/top-k duration shares back over
    # the transport (a "row" span per sampled request).  Only active
    # while sampling is on; False keeps spans batch-granular.
    serve_trace_rows: bool = True
    # Streaming trace export: path of the rotating JSONL file the
    # tracer's sink appends to ("" = no sink, drain-or-drop deque).
    serve_trace_path: str = ""
    # Rolling-window sampling period for windowed SLOs / the live view
    # (0 = no background sampler; server.window() still samples on
    # demand).
    serve_window_interval_ms: float = 0.0
    # >= 0 exposes a stdlib-HTTP /metrics endpoint on that port
    # (0 = ephemeral, read server.metrics_url); -1 disables it.
    serve_metrics_port: int = -1
    # Cascade serving (repro.cascade): a cheap first-stage provider
    # pre-ranks top-M candidates per request and the beam walk is
    # constrained to candidate-reachable entities.  "" disables the
    # cascade entirely (bit-identical to pre-cascade serving);
    # "neighbors" fits session-kNN on the train split, "encoder"
    # reuses the agent's own fitted session encoder.
    serve_cascade_provider: str = ""
    serve_cascade_m: int = 50           # first-stage candidate count
    serve_cascade_cache_size: int = 1024  # LRU candidate lists (0 = off)
    # Shared-computation serving (repro.serving.memo): collapse
    # duplicate rows inside one flush to a single walk (exact — every
    # original row re-selects its own top-k from the shared score row),
    # and memoize numeric walk outputs across flushes in a
    # version/digest-tagged LRU (k-agnostic: a repeat suffix at any k
    # is a memo hit + re-selection, no walk).  Both exact by
    # construction; disable for A/B benching only.
    serve_dedup: bool = True
    serve_walk_memo_size: int = 512     # WalkMemo entries (0 = off)
    # Adaptive spin-then-block doorbell wait (ring transport): both
    # ring peers busy-poll the sequence word for up to this many
    # microseconds before blocking in select().  0 keeps the pure
    # select-blocking PR 6 behavior — the right call on a single-core
    # host, where spinning starves the very peer being waited on.
    serve_ring_spin_us: float = 0.0

    # Continual learning (repro.online): checkpoint publishing, delta
    # ingestion, and background fine-tuning.  ``OnlineUpdater`` and
    # ``DeltaIngestor`` default to these; they have no effect on
    # offline training.
    online_min_sessions: int = 64   # buffered sessions before a round runs
    online_max_steps: int = 8       # fine-tune batches per update round
    online_interval_s: float = 5.0  # background loop poll period
    online_keep_checkpoints: int = 5  # registry retention (0 = unbounded)
    online_compact_every: int = 1024  # staged edges before CSR compaction
    # Per-shard early trigger: compact as soon as any single shard
    # accumulates this many staged edges (a hot shard rebuilds cheaply
    # on its own instead of waiting for the global threshold while its
    # overlay widens every frontier touching it).  0 disables.
    online_compact_shard_every: int = 0
    online_auto_swap: bool = True   # hot-swap servers on each publish
    # "subprocess" fine-tunes in an isolated interpreter (checkpoints
    # ship through the file-locked registry), so a training round no
    # longer steals serving throughput from this process's GIL.
    online_updater_mode: str = "thread"  # or "subprocess"
    # Niceness of the subprocess fine-tune child.  With spare cores it
    # is irrelevant (the child runs on its own core); on saturated
    # hosts it keeps the OS scheduler from granting the trainer long
    # quanta at serving's expense — training is the batch workload,
    # serving is the latency workload.
    online_subprocess_nice: int = 10

    seed: int = 0

    def __post_init__(self) -> None:
        if self.reward_mode not in REWARD_MODES:
            raise ValueError(
                f"reward_mode {self.reward_mode!r} not in {REWARD_MODES}")
        if self.loss_mode not in LOSS_MODES:
            raise ValueError(
                f"loss_mode {self.loss_mode!r} not in {LOSS_MODES}")
        if self.start_from not in START_MODES:
            raise ValueError(
                f"start_from {self.start_from!r} not in {START_MODES}")
        if len(self.sample_sizes) != self.path_length:
            raise ValueError(
                f"need one sample size per hop: path_length="
                f"{self.path_length} but sample_sizes={self.sample_sizes}")
        if self.train_selection not in ("top", "sample"):
            raise ValueError("train_selection must be 'top' or 'sample'")
        if self.frontier_buckets < 1:
            raise ValueError(
                f"frontier_buckets must be >= 1, got {self.frontier_buckets}")
        if self.graph_shards < 0:
            raise ValueError(
                f"graph_shards must be >= 0 (0 = auto), "
                f"got {self.graph_shards}")
        if self.serve_health_interval_ms < 0:
            raise ValueError(
                f"serve_health_interval_ms must be >= 0 (0 = off), "
                f"got {self.serve_health_interval_ms}")
        if not 0.0 <= self.serve_trace_sample <= 1.0:
            raise ValueError(
                f"serve_trace_sample must be in [0, 1], "
                f"got {self.serve_trace_sample}")
        if self.serve_metrics_port < -1:
            raise ValueError(
                f"serve_metrics_port must be >= -1 (-1 = off), "
                f"got {self.serve_metrics_port}")
        if self.serve_window_interval_ms < 0:
            raise ValueError(
                f"serve_window_interval_ms must be >= 0 (0 = off), "
                f"got {self.serve_window_interval_ms}")
        if self.serve_max_batch < 1:
            raise ValueError(
                f"serve_max_batch must be >= 1, got {self.serve_max_batch}")
        if self.serve_max_wait_ms < 0:
            raise ValueError(
                f"serve_max_wait_ms must be >= 0, got {self.serve_max_wait_ms}")
        if self.serve_workers < 1:
            raise ValueError(
                f"serve_workers must be >= 1, got {self.serve_workers}")
        if self.serve_cache_size < 0:
            raise ValueError(
                f"serve_cache_size must be >= 0, got {self.serve_cache_size}")
        if self.serve_default_k < 1:
            raise ValueError(
                f"serve_default_k must be >= 1, got {self.serve_default_k}")
        if self.serve_worker_mode not in ("thread", "process"):
            raise ValueError(
                f"serve_worker_mode must be 'thread' or 'process', "
                f"got {self.serve_worker_mode!r}")
        if self.serve_mp_context not in ("auto", "fork", "spawn"):
            raise ValueError(
                f"serve_mp_context must be auto/fork/spawn, "
                f"got {self.serve_mp_context!r}")
        if self.runtime_plane_backend not in ("auto", "shm", "mmap"):
            raise ValueError(
                f"runtime_plane_backend must be auto/shm/mmap, "
                f"got {self.runtime_plane_backend!r}")
        if self.serve_transport not in ("pipe", "ring"):
            raise ValueError(
                f"serve_transport must be 'pipe' or 'ring', "
                f"got {self.serve_transport!r}")
        if self.serve_cascade_provider not in ("", "neighbors", "encoder"):
            raise ValueError(
                f"serve_cascade_provider must be '' (off), 'neighbors', "
                f"or 'encoder', got {self.serve_cascade_provider!r}")
        if self.serve_cascade_m < 1:
            raise ValueError(
                f"serve_cascade_m must be >= 1, got {self.serve_cascade_m}")
        if self.serve_cascade_cache_size < 0:
            raise ValueError(
                f"serve_cascade_cache_size must be >= 0, "
                f"got {self.serve_cascade_cache_size}")
        if self.serve_walk_memo_size < 0:
            raise ValueError(
                f"serve_walk_memo_size must be >= 0, "
                f"got {self.serve_walk_memo_size}")
        if self.serve_ring_spin_us < 0:
            raise ValueError(
                f"serve_ring_spin_us must be >= 0 (0 = block), "
                f"got {self.serve_ring_spin_us}")
        if self.online_updater_mode not in ("thread", "subprocess"):
            raise ValueError(
                f"online_updater_mode must be 'thread' or 'subprocess', "
                f"got {self.online_updater_mode!r}")
        if not 0 <= self.online_subprocess_nice <= 19:
            raise ValueError(
                f"online_subprocess_nice must be in [0, 19], "
                f"got {self.online_subprocess_nice}")
        if self.online_min_sessions < 1:
            raise ValueError(
                f"online_min_sessions must be >= 1, "
                f"got {self.online_min_sessions}")
        if self.online_max_steps < 1:
            raise ValueError(
                f"online_max_steps must be >= 1, got {self.online_max_steps}")
        if self.online_interval_s <= 0:
            raise ValueError(
                f"online_interval_s must be > 0, got {self.online_interval_s}")
        if self.online_keep_checkpoints < 0:
            raise ValueError(
                f"online_keep_checkpoints must be >= 0, "
                f"got {self.online_keep_checkpoints}")
        if self.online_compact_every < 1:
            raise ValueError(
                f"online_compact_every must be >= 1, "
                f"got {self.online_compact_every}")
        if self.online_compact_shard_every < 0:
            raise ValueError(
                f"online_compact_shard_every must be >= 0 (0 = off), "
                f"got {self.online_compact_shard_every}")

    @classmethod
    def for_ablation(cls, name: str, **overrides) -> "REKSConfig":
        """Named variants used across Figures 3-6.

        ``name`` in {reks, reks_r, reks_c, reks_r1, reks-path,
        reks-rank, reks_user, reks_l3, reks_l4}.
        """
        presets = {
            "reks": {},
            "reks_r": {"loss_mode": "reward_only"},
            "reks_c": {"loss_mode": "ce_only"},
            "reks_r1": {"reward_mode": "r1"},
            "reks-path": {"reward_mode": "item_only"},
            "reks-rank": {"reward_mode": "no_rank"},
            "reks_user": {"start_from": "user", "path_length": 3,
                          "sample_sizes": (100, 10, 1)},
            "reks_l3": {"path_length": 3, "sample_sizes": (100, 1, 1)},
            "reks_l4": {"path_length": 4, "sample_sizes": (100, 1, 1, 1)},
        }
        key = name.lower()
        if key not in presets:
            raise KeyError(f"unknown ablation {name!r}; "
                           f"choose from {sorted(presets)}")
        merged = dict(presets[key])
        merged.update(overrides)
        return cls(**merged)
