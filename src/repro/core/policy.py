"""The REKS policy network (Eq. 3-4).

``s_t = MLP(Se ⊕ Sp)`` fuses the session representation from the
wrapped SR model with the current path context ``Sp = x_et + x_rt``;
actions ``(r, e)`` are embedded as ``x_r + x_e`` and scored by
``(x_r + x_e)ᵀ (W1 s_t)``, masked to the legal action set, softmaxed.

KG entity/relation embeddings default to the frozen TransE tables
(PGPR convention); ``finetune=True`` makes them trainable parameters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear, MLP
from repro.nn.module import Module

NEG_INF = -1e9


class PolicyNetwork(Module):
    """State featurizer + action scorer."""

    def __init__(self, session_dim: int, kg_dim: int, state_dim: int,
                 entity_table: np.ndarray, relation_table: np.ndarray,
                 dropout: float = 0.0, finetune: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 copy_tables: bool = True) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.session_dim = session_dim
        self.kg_dim = kg_dim
        self.state_dim = state_dim
        # copy_tables=False mounts the given float32 buffers zero-copy
        # (e.g. shared-memory plane views in a process worker); it
        # implies frozen tables — a fine-tuning replica owns private
        # copies.
        self.entity_emb = Embedding.from_pretrained(
            entity_table, trainable=finetune and copy_tables,
            copy=copy_tables)
        self.relation_emb = Embedding.from_pretrained(
            relation_table, trainable=finetune and copy_tables,
            copy=copy_tables)
        self.state_mlp = MLP([session_dim + kg_dim, state_dim, state_dim],
                             rng=rng)
        self.w1 = Linear(state_dim, kg_dim, bias=False, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    # ------------------------------------------------------------------
    def path_context(self, entities: np.ndarray,
                     relations: Optional[np.ndarray]) -> Tensor:
        """``Sp``: current entity embedding plus last relation (if any)."""
        sp = self.entity_emb(entities)
        if relations is not None:
            sp = sp + self.relation_emb(relations)
        return sp

    def state(self, session_repr: Tensor, sp: Tensor) -> Tensor:
        """``s_t = MLP(Se ⊕ Sp)`` (Eq. 3)."""
        fused = F.concat([session_repr, sp], axis=-1)
        return self.state_mlp(self.drop(fused))

    def action_embeddings(self, rels: np.ndarray, tails: np.ndarray) -> Tensor:
        """``x_r + x_e`` for a padded ``(N, A)`` action grid."""
        return self.relation_emb(rels) + self.entity_emb(tails)

    def action_log_probs(self, state: Tensor, rels: np.ndarray,
                         tails: np.ndarray, mask: np.ndarray) -> Tensor:
        """Masked log-softmax over the action grid (Eq. 4).

        ``state`` is ``(N, state_dim)``; returns ``(N, A)``.  Rows whose
        mask is empty yield a uniform distribution — callers must drop
        those paths (the environment reports them as dead ends).
        """
        proj = self.w1(state)                         # (N, kg_dim)
        action_emb = self.action_embeddings(rels, tails)  # (N, A, kg_dim)
        n, width = rels.shape
        logits = action_emb.matmul(proj.reshape(n, self.kg_dim, 1))
        logits = logits.reshape(n, width)
        logits = logits.masked_fill(~mask, NEG_INF)
        return F.log_softmax(logits, axis=-1)

    def step(self, session_repr: Tensor, entities: np.ndarray,
             relations: Optional[np.ndarray], rels: np.ndarray,
             tails: np.ndarray, mask: np.ndarray) -> Tensor:
        """Full hop: context -> state -> masked action log-probs."""
        sp = self.path_context(entities, relations)
        st = self.state(session_repr, sp)
        return self.action_log_probs(st, rels, tails, mask)
