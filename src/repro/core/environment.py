"""MDP environment over the session knowledge graph (paper §III-B-2).

States are (session, current KG position) pairs; the *action space* of
an entity is its outgoing edge set minus already-visited entities
(self-loops back along the path are forbidden); transitions are
deterministic (Eq. 10).

This module owns the vectorized action-space construction.  The capped
adjacency (pruned to ``action_cap`` edges PGPR-style) is stored as one
flat **CSR** triple — ``indptr`` / ``rels`` / ``tails`` int32 arrays
built once from :class:`~repro.kg.builder.BuiltKG` — so a whole
frontier of entities is padded into rectangular ``(N, A)`` arrays by a
single gather + broadcast mask, with no Python loop over the frontier:

* ``indptr[e]:indptr[e + 1]`` delimits entity ``e``'s outgoing edges
  inside the flat ``rels``/``tails`` arrays (``actions_of`` is two
  O(1) slices);
* ``batched_actions`` broadcasts ``indptr[frontier] + arange(A)``
  against the per-row degrees to build the gather index and legality
  mask in one shot; padded cells read a sentinel slot and are zeroed.

Three scale features sit on top of the CSR core:

* **degree-bucketed frontiers** (:meth:`KGEnvironment.iter_frontier_buckets`)
  group frontier rows by degree quantile so one mega-hub entity does
  not inflate the pad width ``A`` for the entire batch — each bucket
  gets its own rectangle, sized to its own largest degree;
* a :class:`RolloutWorkspace` recycles the per-hop gather/mask scratch
  buffers across :meth:`REKSAgent.walk` calls instead of reallocating
  them every hop (see the class docstring for the aliasing contract);
* a **staged edge overlay** (:meth:`KGEnvironment.stage_edges` /
  :meth:`KGEnvironment.compact`) lets the online subsystem append new
  triples to a live environment: staged edges are visible to
  ``batched_actions`` immediately (a per-row widen restricted to the
  staged entities), and a periodic compaction merges them into fresh
  flat CSR arrays that are swapped in atomically — concurrent walks
  read the whole CSR bundle through one attribute load, so they see
  either the old tables or the new ones, never a mix.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.data.loader import SessionBatch
from repro.kg.builder import BuiltKG


@dataclass
class Rollout:
    """Result of walking ``path_length`` hops for a batch of sessions.

    ``entities`` has one column per visited node (hop 0 = start) and
    ``relations`` one column per hop taken.  ``session_idx`` maps every
    surviving path back to its source session row.  ``log_prob`` is the
    tensor of summed per-hop log probabilities (tape-free when produced
    under ``no_grad``; None only for hand-built rollouts); ``prob`` is
    its exponential as plain numpy.
    """

    session_idx: np.ndarray      # (P,)
    entities: np.ndarray         # (P, hops + 1)
    relations: np.ndarray        # (P, hops)
    prob: np.ndarray             # (P,)
    log_prob: Optional[object] = None  # Tensor (P,) when grad is enabled

    @property
    def num_paths(self) -> int:
        return len(self.session_idx)

    @property
    def terminals(self) -> np.ndarray:
        return self.entities[:, -1]


@dataclass
class FrontierBucket:
    """One degree-homogeneous slice of a frontier.

    ``rows`` indexes back into the frontier this bucket was cut from;
    the action arrays are rectangular over this bucket only, so the pad
    width equals the bucket's (not the whole frontier's) max degree.
    """

    rows: np.ndarray     # (M,) frontier-row indices covered
    rels: np.ndarray     # (M, A_bucket)
    tails: np.ndarray    # (M, A_bucket)
    mask: np.ndarray     # (M, A_bucket) True for legal actions


class RolloutWorkspace:
    """Grow-only scratch buffers recycled across frontier constructions.

    ``batched_actions`` materializes each frontier as rectangular
    ``(N, A)`` arrays; at serving scale those allocations dominate the
    per-hop cost.  A workspace keeps one buffer per role — rows grow
    geometrically, columns track the max width seen (bounded by
    ``action_cap``) — and hands out ``(N, A)`` views.

    Aliasing contract: arrays returned by a workspace-backed
    ``batched_actions`` call are views into these buffers and are
    valid only until the next call with the same workspace — consume
    (or copy out of) each frontier before requesting the next one,
    which is exactly how :meth:`REKSAgent.walk` iterates buckets.
    Recycling is safe even on the autograd tape because no backward
    closure ever captures a buffer: ``masked_fill`` retains the fresh
    ``~mask`` inversion rather than ``mask``, the gather index never
    reaches the tape, and embedding lookups copy the int32
    ``rels``/``tails`` views (dtype-preserving — see
    ``repro.nn.embedding.coerce_indices``) before the scatter-add
    closure retains them (``tests/test_env_differential`` pins that
    invariant end-to-end).

    A workspace is **single-owner** scratch: two concurrent walks
    sharing one would silently corrupt each other's frontiers.  The
    :meth:`checkout` / :meth:`release` hooks make ownership explicit —
    ``repro.serving.WorkspacePool`` checks a workspace out to exactly
    one worker at a time, and a double checkout raises instead of
    corrupting.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self._checked_out = False
        self.checkouts = 0

    def checkout(self) -> "RolloutWorkspace":
        """Mark this workspace as owned by one rollout/worker.

        Raises if it is already checked out — the recycled buffers are
        single-owner, so a second concurrent user means corruption.
        """
        if self._checked_out:
            raise RuntimeError(
                "RolloutWorkspace is already checked out; scratch "
                "buffers are single-owner — use one workspace per "
                "concurrent walk (see repro.serving.WorkspacePool)")
        self._checked_out = True
        self.checkouts += 1
        return self

    def release(self) -> None:
        """Return a checked-out workspace (buffers stay warm)."""
        self._checked_out = False

    def buffer(self, name: str, n: int, width: int, dtype) -> np.ndarray:
        """A ``(n, width)`` view of the named buffer, growing if needed."""
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < n or buf.shape[1] < width:
            # Rows grow geometrically; columns grow exact-fit to the
            # running max width.  Over-allocating columns would make
            # every handed-out view row-strided (non-contiguous),
            # slowing all downstream ufuncs; width is bounded by
            # action_cap and saturates after the first few frontiers,
            # so exact-fit reallocations are finitely bounded while
            # views stay contiguous whenever width == buffer width.
            rows = n if buf is None else max(n, 2 * buf.shape[0])
            cols = width if buf is None else max(width, buf.shape[1])
            buf = np.empty((max(rows, 1), max(cols, 1)), dtype=dtype)
            self._buffers[name] = buf
        return buf[:n, :width]

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())


class _CSRTables(NamedTuple):
    """One immutable generation of the capped flat-CSR adjacency.

    Bundling the four arrays into a single tuple is what makes online
    compaction safe: readers load ``env._csr`` once per query and then
    only touch the bundle, so a concurrent :meth:`KGEnvironment.compact`
    (which publishes a brand-new bundle with one attribute store) can
    never hand them an ``indptr`` from one generation and ``tails``
    from another.
    """

    indptr: np.ndarray   # (E + 1,) int32, offset by the slot-0 sentinel
    rels: np.ndarray     # flat int32, slot 0 is the zero sentinel
    tails: np.ndarray    # flat int32, slot 0 is the zero sentinel
    degrees: np.ndarray  # (E,) int32 capped out-degrees


def _pack_csr(degrees: np.ndarray, rels: np.ndarray,
              tails: np.ndarray) -> _CSRTables:
    """Prepend the zero sentinel and build the offset-by-one indptr.

    Slot 0 of the flat arrays is a zero sentinel; real edges start at
    1, so ``indptr`` is offset by one and the batched gather can
    redirect every padded cell to slot 0 with a single ``idx *= mask``
    — bounds-safe and zero-padded in one pass.  int32 throughout:
    halves the memory traffic of the per-hop gathers, and no KG here
    approaches 2^31 entities or edges.
    """
    indptr = np.concatenate([[1], 1 + np.cumsum(degrees)]).astype(np.int32)
    flat_rels = np.concatenate(
        [np.zeros(1, dtype=np.int32), rels.astype(np.int32)])
    flat_tails = np.concatenate(
        [np.zeros(1, dtype=np.int32), tails.astype(np.int32)])
    return _CSRTables(indptr, flat_rels, flat_tails,
                      degrees.astype(np.int32))


class KGEnvironment:
    """Flat-CSR capped adjacency with batched action-space queries."""

    def __init__(self, built: BuiltKG, action_cap: int = 250,
                 seed: int = 0,
                 tables: Optional[_CSRTables] = None) -> None:
        self.built = built
        self.kg = built.kg
        self.action_cap = action_cap
        if tables is not None:
            # Attach precomputed tables (e.g. shared-memory plane views
            # in a process worker) instead of re-running the capping —
            # the rng subsample below would otherwise have to replay
            # bit-exactly for rankings to match the exporting parent.
            self._csr = tables
        else:
            indptr, rels, tails = built.adjacency_csr()
            degrees = np.diff(indptr).astype(np.int64)
            rng = np.random.default_rng(seed)
            over = np.flatnonzero(degrees > action_cap)
            if over.size:
                keep = np.ones(rels.shape[0], dtype=bool)
                for entity in over:  # hubs only — a one-time build cost
                    start, stop = int(indptr[entity]), int(indptr[entity + 1])
                    # Uniform subsample keeps the relation-type mix
                    # unbiased (a head-truncation would drop whole
                    # relation blocks).
                    pick = rng.choice(stop - start, size=action_cap,
                                      replace=False)
                    pick.sort()
                    block = np.zeros(stop - start, dtype=bool)
                    block[pick] = True
                    keep[start:stop] = block
                rels, tails = rels[keep], tails[keep]
                degrees = np.minimum(degrees, action_cap)
            self._csr = _pack_csr(degrees, rels, tails)
        # Staged edge overlay (online delta ingestion).  Edges land in
        # per-entity lists, are visible to batched_actions immediately,
        # and are folded into a fresh CSR bundle by compact().  The
        # lock covers staging and compaction; readers are lock-free
        # (they check one counter and snapshot the per-entity lists).
        self._overlay_lock = threading.Lock()
        self._staged: Dict[int, List[Tuple[int, int]]] = {}
        self._staged_flag = np.zeros(self.kg.num_entities, dtype=bool)
        self._staged_count = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    def degree(self, entity: int) -> int:
        return int(self._csr.degrees[entity])

    def actions_of(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        """(relations, tails) of one entity after capping (CSR slices).

        Includes any staged-but-uncompacted edges of ``entity`` (those
        come back as copies appended after the CSR block).
        """
        csr = self._csr
        start, stop = csr.indptr[entity], csr.indptr[entity + 1]
        rels, tails = csr.rels[start:stop], csr.tails[start:stop]
        if self._staged_count and self._staged_flag[entity]:
            extras = list(self._staged.get(int(entity), ()))
            if extras:
                rels = np.concatenate(
                    [rels, np.array([r for r, _ in extras], dtype=np.int32)])
                tails = np.concatenate(
                    [tails, np.array([t for _, t in extras], dtype=np.int32)])
        return rels, tails

    # ------------------------------------------------------------------
    # Online delta ingestion: staged overlay + periodic compaction
    # ------------------------------------------------------------------
    @property
    def staged_edges(self) -> int:
        """Edges staged in the overlay, not yet compacted into CSR."""
        return self._staged_count

    def stage_edges(self, heads, rels, tails) -> int:
        """Stage new ``(head, relation, tail)`` edges into the overlay.

        Edges become visible to :meth:`batched_actions` /
        :meth:`actions_of` immediately (eventual within a concurrent
        call: a walk that already gathered its frontier keeps its
        snapshot).  Duplicates — against the capped CSR adjacency and
        within the overlay itself — are dropped, as are edges whose
        head is already at ``action_cap`` (they could never survive
        compaction, and serving them only until the next compaction
        would flip rankings with no new data); returns the number of
        edges actually staged.  Entities must already exist: growing
        the entity set online would also require growing the embedding
        tables, which is a retrain, not a delta.
        """
        heads = np.asarray(heads, dtype=np.int64).ravel()
        rels = np.asarray(rels, dtype=np.int64).ravel()
        tails = np.asarray(tails, dtype=np.int64).ravel()
        if not (heads.shape == rels.shape == tails.shape):
            raise ValueError("heads, rels, tails must have matching shapes")
        if heads.size == 0:
            return 0
        n_ent, n_rel = self.kg.num_entities, self.kg.num_relations
        if heads.min() < 0 or heads.max() >= n_ent \
                or tails.min() < 0 or tails.max() >= n_ent:
            raise IndexError("staged entity id out of range")
        if rels.min() < 0 or rels.max() >= n_rel:
            raise IndexError("staged relation id out of range")
        added = 0
        with self._overlay_lock:
            # Read the bundle under the lock: compact() also holds it,
            # so the dedup check below can never run against a CSR
            # generation older than the overlay it is staging into
            # (a stale read could re-stage a just-compacted edge and
            # bake it into the base twice at the next compaction).
            csr = self._csr
            for head, rel, tail in zip(heads, rels, tails):
                head, rel, tail = int(head), int(rel), int(tail)
                start, stop = csr.indptr[head], csr.indptr[head + 1]
                if ((csr.rels[start:stop] == rel)
                        & (csr.tails[start:stop] == tail)).any():
                    continue  # already in the capped base adjacency
                bucket = self._staged.setdefault(head, [])
                if (rel, tail) in bucket:
                    continue
                if int(stop - start) + len(bucket) >= self.action_cap:
                    continue  # head at cap: could not survive compaction
                bucket.append((rel, tail))
                self._staged_flag[head] = True
                added += 1
            self._staged_count += added
        return added

    def compact(self) -> int:
        """Merge the staged overlay into a fresh CSR bundle (atomic swap).

        Builds new flat arrays containing base + staged edges (sorted
        by head, base edges first within each head so ``action_cap``
        truncation prefers the established adjacency), then publishes
        them with a single attribute store.  In-flight queries keep the
        bundle they already loaded; the next query sees the new one.
        Returns the number of edges merged.
        """
        with self._overlay_lock:
            if not self._staged_count:
                return 0
            staged = {e: list(pairs) for e, pairs in self._staged.items()}
            old = self._csr
            extra_heads = np.array(
                [e for e, pairs in staged.items() for _ in pairs],
                dtype=np.int64)
            extra_rels = np.array(
                [r for pairs in staged.values() for r, _ in pairs],
                dtype=np.int64)
            extra_tails = np.array(
                [t for pairs in staged.values() for _, t in pairs],
                dtype=np.int64)
            base_degrees = old.degrees.astype(np.int64)
            base_heads = np.repeat(
                np.arange(self.kg.num_entities, dtype=np.int64),
                base_degrees)
            heads = np.concatenate([base_heads, extra_heads])
            rels = np.concatenate(
                [old.rels[1:].astype(np.int64), extra_rels])
            tails = np.concatenate(
                [old.tails[1:].astype(np.int64), extra_tails])
            order = np.argsort(heads, kind="stable")  # base-first per head
            heads, rels, tails = heads[order], rels[order], tails[order]
            degrees = np.bincount(heads, minlength=self.kg.num_entities)
            indptr0 = np.concatenate([[0], np.cumsum(degrees)])
            # Re-apply the cap by position-within-head: stable sort put
            # base edges first, so staged extras are the ones truncated
            # on entities already at the cap.
            pos = np.arange(heads.size, dtype=np.int64) - indptr0[heads]
            keep = pos < self.action_cap
            if not keep.all():
                heads, rels, tails = heads[keep], rels[keep], tails[keep]
                degrees = np.bincount(heads,
                                      minlength=self.kg.num_entities)
            merged = self._staged_count
            # Clear the overlay BEFORE publishing the merged bundle: a
            # lock-free reader between the two stores then misses the
            # staged edges for one query (benign eventual visibility)
            # instead of seeing them twice (duplicate actions).
            self._staged = {}
            self._staged_flag = np.zeros(self.kg.num_entities, dtype=bool)
            self._staged_count = 0
            self._csr = _pack_csr(degrees, rels, tails)
            self.compactions += 1
        return merged

    def csr_tables(self) -> _CSRTables:
        """The current immutable CSR bundle (one atomic attribute load).

        This is the export surface of the environment: the runtime
        plane copies these four arrays into OS shared memory, and
        worker processes hand equivalent zero-copy views back to
        :meth:`attach_tables`.
        """
        return self._csr

    def attach_tables(self, tables: _CSRTables) -> None:
        """Atomically replace the CSR bundle with foreign views.

        Used by process workers when the parent publishes a new plane
        generation (after a compaction): the swap is a single attribute
        store, so a concurrent walk keeps the bundle it already loaded.
        The staged overlay is cleared — a published generation already
        contains everything the parent compacted into it.
        """
        expected = (self.kg.num_entities + 1,)
        if tables.indptr.shape != expected:
            raise ValueError(
                f"indptr shape {tables.indptr.shape} does not match "
                f"this KG ({expected})")
        with self._overlay_lock:
            self._staged = {}
            self._staged_flag = np.zeros(self.kg.num_entities, dtype=bool)
            self._staged_count = 0
            self._csr = tables
            self.compactions += 1

    def reset_overlay_after_fork(self) -> None:
        """Reinitialize overlay lock + staged state in a forked child.

        A fork can capture the overlay lock *held* by another parent
        thread (the child's copy would then never unlock) and the
        staged dict mid-mutation.  A child that owns its own delta
        stream — the subprocess updater re-derives edges from the
        sessions shipped to it — calls this first: fresh lock, empty
        overlay, immutable CSR bundle untouched.
        """
        self._overlay_lock = threading.Lock()
        self._staged = {}
        self._staged_flag = np.zeros(self.kg.num_entities, dtype=bool)
        self._staged_count = 0

    def staged_snapshot(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copy of the staged overlay as ``(heads, rels, tails)`` arrays.

        Lets a process-worker bootstrap replay edges that were staged
        but not yet compacted when the worker pool was built, so child
        environments serve the same adjacency as the parent.
        """
        with self._overlay_lock:
            triples = [(head, rel, tail)
                       for head, pairs in self._staged.items()
                       for rel, tail in pairs]
        if not triples:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        heads, rels, tails = (np.array(col, dtype=np.int64)
                              for col in zip(*triples))
        return heads, rels, tails

    def fingerprint(self) -> str:
        """Digest of the served adjacency (CSR bundle + staged count).

        Checkpoint manifests record it so a restored model can detect
        that it is being attached to a different graph than it was
        trained against.  Compaction changes the fingerprint; staging
        alone does too (via the staged-edge count).
        """
        csr = self._csr
        digest = hashlib.sha256()
        digest.update(np.int64(self.kg.num_entities).tobytes())
        digest.update(np.int64(self._staged_count).tobytes())
        for array in (csr.indptr, csr.rels, csr.tails):
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()[:16]

    def batched_actions(self, entities: np.ndarray, visited: np.ndarray,
                        workspace: Optional[RolloutWorkspace] = None
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded action arrays for a frontier — one gather, no row loop.

        Parameters
        ----------
        entities:
            ``(N,)`` current entity per path.
        visited:
            ``(N, V)`` entities already on each path (including the
            current one); matching tails are masked out.
        workspace:
            Optional scratch-buffer pool.  When given, the returned
            arrays are views into its buffers, valid only until the
            next call with the same workspace (see
            :class:`RolloutWorkspace` for why that is tape-safe).

        Returns
        -------
        (relations, tails, mask):
            ``(N, A)`` arrays with ``A = max(frontier degrees, 1)``;
            ``mask`` is True for legal actions and padded cells hold 0.
        """
        entities = np.asarray(entities, dtype=np.int64)
        n = len(entities)

        # Beam frontiers repeat entities heavily (wide beams fan into
        # shared hub tails), so when the frontier is duplicate-rich we
        # gather the grid once per *distinct* entity and row-expand —
        # the dominant random gather shrinks to the unique count and
        # the expansion is a contiguous row copy.  Attempted when the
        # pigeonhole bound guarantees a >= 2x duplication factor (the
        # sort inside np.unique can never be wasted work), and also for
        # serving-sized micro-batches (32-256 rows): coalesced traffic
        # repeats popular start entities far below the pigeonhole
        # threshold, and at these row counts the entity->grid-row memo
        # costs a sort of a few hundred ints, so we keep it whenever it
        # removes at least a quarter of the gather rows.
        uniq = inverse = None
        if n >= 64 and n >= 2 * self.kg.num_entities:
            uniq, inverse = np.unique(entities, return_inverse=True)
        elif 8 <= n <= 512:
            memo_uniq, memo_inverse = np.unique(entities,
                                                return_inverse=True)
            if 4 * memo_uniq.size <= 3 * n:
                uniq, inverse = memo_uniq, memo_inverse
        if uniq is None:
            rels, tails, mask = self._gather_grid(entities, workspace)
            width = rels.shape[1]
        else:
            rels_u, tails_u, mask_u = self._gather_grid(uniq, None)
            width = rels_u.shape[1]
            if workspace is not None:
                rels = workspace.buffer("rels", n, width, np.int32)
                tails = workspace.buffer("tails", n, width, np.int32)
                mask = workspace.buffer("mask", n, width, bool)
                np.take(rels_u, inverse, axis=0, out=rels)
                np.take(tails_u, inverse, axis=0, out=tails)
                np.take(mask_u, inverse, axis=0, out=mask)
            else:
                rels = np.take(rels_u, inverse, axis=0)
                tails = np.take(tails_u, inverse, axis=0)
                mask = np.take(mask_u, inverse, axis=0)

        if self._staged_count:
            rels, tails, mask = self._widen_with_overlay(
                entities, rels, tails, mask)
            width = rels.shape[1]

        if workspace is not None:
            scratch = workspace.buffer("scratch", n, width, bool)
        else:
            scratch = np.empty((n, width), dtype=bool)
        visited = np.asarray(visited)
        if visited.dtype != np.int32:
            visited = visited.astype(np.int32)  # (N, V) — tiny copy
        for col in range(visited.shape[1]):  # path length, not frontier
            np.not_equal(tails, visited[:, col:col + 1], out=scratch)
            np.logical_and(mask, scratch, out=mask)
        return rels, tails, mask

    def _gather_grid(self, entities: np.ndarray,
                     workspace: Optional[RolloutWorkspace]
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Visited-agnostic ``(N, A)`` action grid for given entities."""
        csr = self._csr
        n = len(entities)
        degs = np.take(csr.degrees, entities)
        width = int(degs.max()) if n else 0
        width = max(width, 1)

        if workspace is not None:
            idx = workspace.buffer("idx", n, width, np.int32)
            mask = workspace.buffer("mask", n, width, bool)
            rels = workspace.buffer("rels", n, width, np.int32)
            tails = workspace.buffer("tails", n, width, np.int32)
        else:
            idx = np.empty((n, width), dtype=np.int32)
            mask = np.empty((n, width), dtype=bool)
            rels = np.empty((n, width), dtype=np.int32)
            tails = np.empty((n, width), dtype=np.int32)

        cols = np.arange(width, dtype=np.int32)
        np.less(cols[None, :], degs[:, None], out=mask)
        np.add(np.take(csr.indptr, entities)[:, None], cols[None, :],
               out=idx)
        # One pass redirects every padded cell to the zero-sentinel
        # slot 0: the gather stays in bounds and pads read as 0.
        np.multiply(idx, mask, out=idx)
        np.take(csr.rels, idx, out=rels)
        np.take(csr.tails, idx, out=tails)
        return rels, tails, mask

    def _widen_with_overlay(self, entities: np.ndarray, rels: np.ndarray,
                            tails: np.ndarray, mask: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Append staged-overlay edges to the rows that have them.

        The overlay holds edges ingested since the last compaction — a
        deliberately small set, so the per-affected-row Python loop is
        bounded.  Returns fresh (copied) arrays: overlay frontiers
        bypass the workspace buffers, which keeps the zero-overlay hot
        path untouched.
        """
        hot = self._staged_flag[entities]
        if not hot.any():
            return rels, tails, mask
        hot_rows = np.flatnonzero(hot)
        # Copy each bucket: a concurrent stage_edges may append to the
        # live lists between the width computation and the fill loop.
        extras = [list(self._staged.get(int(entities[row]), ()))
                  for row in hot_rows]
        extra_width = max(len(pairs) for pairs in extras)
        if extra_width == 0:
            return rels, tails, mask
        n, width = rels.shape
        wide = width + extra_width
        out_rels = np.zeros((n, wide), dtype=np.int32)
        out_tails = np.zeros((n, wide), dtype=np.int32)
        out_mask = np.zeros((n, wide), dtype=bool)
        out_rels[:, :width] = rels
        out_tails[:, :width] = tails
        out_mask[:, :width] = mask
        degs = mask.sum(axis=1)
        for row, pairs in zip(hot_rows, extras):
            base = int(degs[row])
            for offset, (rel, tail) in enumerate(pairs):
                out_rels[row, base + offset] = rel
                out_tails[row, base + offset] = tail
                out_mask[row, base + offset] = True
        return out_rels, out_tails, out_mask

    def iter_frontier_buckets(self, entities: np.ndarray,
                              visited: np.ndarray, num_buckets: int = 1,
                              workspace: Optional[RolloutWorkspace] = None
                              ) -> Iterator[FrontierBucket]:
        """Yield the frontier as degree-quantile buckets.

        With ``num_buckets <= 1`` (the default) this is a single bucket
        covering every row — identical arrays to ``batched_actions``.
        With more buckets, rows are grouped by degree quantile so each
        rectangle is padded only to its own bucket's max degree; a lone
        mega-hub then costs one narrow bucket instead of widening the
        whole batch.

        Buckets are yielded lazily and may share ``workspace`` buffers:
        consume each bucket fully before advancing the iterator.
        """
        entities = np.asarray(entities, dtype=np.int64)
        n = len(entities)
        if num_buckets <= 1 or n <= num_buckets:
            rels, tails, mask = self.batched_actions(
                entities, visited, workspace=workspace)
            yield FrontierBucket(rows=np.arange(n, dtype=np.int64),
                                 rels=rels, tails=tails, mask=mask)
            return
        order = np.argsort(self._csr.degrees[entities], kind="stable")
        for chunk in np.array_split(order, num_buckets):
            if chunk.size == 0:
                continue
            rows = np.sort(chunk)
            rels, tails, mask = self.batched_actions(
                entities[rows], visited[rows], workspace=workspace)
            yield FrontierBucket(rows=rows, rels=rels, tails=tails,
                                 mask=mask)

    # ------------------------------------------------------------------
    def start_entities(self, batch: SessionBatch, start_from: str) -> np.ndarray:
        """Hop-0 entities: the last item of every prefix, or the user."""
        if start_from == "last_item":
            return self.built.entities_of_items(batch.last_items)
        if start_from == "user":
            if self.built.user_entity is None:
                raise ValueError(
                    "start_from='user' requires a KG built with users "
                    "(include_users=True and an Amazon-domain dataset)")
            return self.built.user_entity[batch.users]
        raise ValueError(f"unknown start_from {start_from!r}")
