"""MDP environment over the session knowledge graph (paper §III-B-2).

States are (session, current KG position) pairs; the *action space* of
an entity is its outgoing edge set minus already-visited entities
(self-loops back along the path are forbidden); transitions are
deterministic (Eq. 10).  This module owns the vectorized action-space
construction: per-entity neighbor arrays are precomputed once (pruned
to ``action_cap`` edges PGPR-style) and batches of frontier entities
are padded into rectangular ``(N, A)`` arrays for the policy network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.loader import SessionBatch
from repro.kg.builder import BuiltKG


@dataclass
class Rollout:
    """Result of walking ``path_length`` hops for a batch of sessions.

    ``entities`` has one column per visited node (hop 0 = start) and
    ``relations`` one column per hop taken.  ``session_idx`` maps every
    surviving path back to its source session row.  ``log_prob`` is the
    tensor of summed per-hop log probabilities (tape-free when produced
    under ``no_grad``; None only for hand-built rollouts); ``prob`` is
    its exponential as plain numpy.
    """

    session_idx: np.ndarray      # (P,)
    entities: np.ndarray         # (P, hops + 1)
    relations: np.ndarray        # (P, hops)
    prob: np.ndarray             # (P,)
    log_prob: Optional[object] = None  # Tensor (P,) when grad is enabled

    @property
    def num_paths(self) -> int:
        return len(self.session_idx)

    @property
    def terminals(self) -> np.ndarray:
        return self.entities[:, -1]


class KGEnvironment:
    """Precomputed, capped adjacency with batched action-space queries."""

    def __init__(self, built: BuiltKG, action_cap: int = 250,
                 seed: int = 0) -> None:
        self.built = built
        self.kg = built.kg
        self.action_cap = action_cap
        rng = np.random.default_rng(seed)
        self._rels: List[np.ndarray] = []
        self._tails: List[np.ndarray] = []
        for entity in range(self.kg.num_entities):
            rels, tails = self.kg.neighbors(entity)
            if len(tails) > action_cap:
                # Uniform subsample keeps the relation-type mix unbiased
                # (a head-truncation would drop whole relation blocks).
                pick = rng.choice(len(tails), size=action_cap, replace=False)
                pick.sort()
                rels, tails = rels[pick], tails[pick]
            self._rels.append(np.ascontiguousarray(rels))
            self._tails.append(np.ascontiguousarray(tails))
        self._degrees = np.array([len(t) for t in self._tails], dtype=np.int64)

    # ------------------------------------------------------------------
    def degree(self, entity: int) -> int:
        return int(self._degrees[entity])

    def actions_of(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        """(relations, tails) of one entity after capping."""
        return self._rels[entity], self._tails[entity]

    def batched_actions(self, entities: np.ndarray, visited: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded action arrays for a frontier.

        Parameters
        ----------
        entities:
            ``(N,)`` current entity per path.
        visited:
            ``(N, V)`` entities already on each path (including the
            current one); matching tails are masked out.

        Returns
        -------
        (relations, tails, mask):
            ``(N, A)`` arrays; ``mask`` is True for legal actions.
        """
        entities = np.asarray(entities, dtype=np.int64)
        n = len(entities)
        width = int(self._degrees[entities].max()) if n else 0
        width = max(width, 1)
        rels = np.zeros((n, width), dtype=np.int64)
        tails = np.zeros((n, width), dtype=np.int64)
        mask = np.zeros((n, width), dtype=bool)
        for i, entity in enumerate(entities):
            deg = self._degrees[entity]
            if deg == 0:
                continue
            rels[i, :deg] = self._rels[entity]
            tails[i, :deg] = self._tails[entity]
            mask[i, :deg] = True
        for col in range(visited.shape[1]):
            mask &= tails != visited[:, col:col + 1]
        return rels, tails, mask

    # ------------------------------------------------------------------
    def start_entities(self, batch: SessionBatch, start_from: str) -> np.ndarray:
        """Hop-0 entities: the last item of every prefix, or the user."""
        if start_from == "last_item":
            return self.built.entities_of_items(batch.last_items)
        if start_from == "user":
            if self.built.user_entity is None:
                raise ValueError(
                    "start_from='user' requires a KG built with users "
                    "(include_users=True and an Amazon-domain dataset)")
            return self.built.user_entity[batch.users]
        raise ValueError(f"unknown start_from {start_from!r}")
