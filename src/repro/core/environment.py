"""MDP environment over the session knowledge graph (paper §III-B-2).

States are (session, current KG position) pairs; the *action space* of
an entity is its outgoing edge set minus already-visited entities
(self-loops back along the path are forbidden); transitions are
deterministic (Eq. 10).

This module owns the vectorized action-space construction.  The capped
adjacency (pruned to ``action_cap`` edges PGPR-style) lives in a
**sharded CSR store** (:class:`repro.graphstore.ShardedCSR`): the
entity-id space is cut into contiguous, edge-mass-balanced shards,
each owning an immutable ``indptr`` / ``rels`` / ``tails`` int32
bundle, stitched behind a facade that preserves the flat-CSR query
contract — a whole frontier of entities is padded into rectangular
``(N, A)`` arrays by a single gather + broadcast mask per *touched
shard*, with no Python loop over the frontier:

* ``actions_of`` is two O(1) slices inside one shard;
* ``batched_actions`` broadcasts per-shard ``indptr[local] + arange(A)``
  against the per-row degrees to build the gather index and legality
  mask in one shot; padded cells read each shard's sentinel slot and
  are zeroed.

Three scale features sit on top of the CSR core:

* **degree-bucketed frontiers** (:meth:`KGEnvironment.iter_frontier_buckets`)
  group frontier rows by degree quantile so one mega-hub entity does
  not inflate the pad width ``A`` for the entire batch — each bucket
  gets its own rectangle, sized to its own largest degree;
* a :class:`RolloutWorkspace` recycles the per-hop gather/mask scratch
  buffers across :meth:`REKSAgent.walk` calls instead of reallocating
  them every hop (see the class docstring for the aliasing contract);
* a **staged edge overlay** (:meth:`KGEnvironment.stage_edges` /
  :meth:`KGEnvironment.compact`) lets the online subsystem append new
  triples to a live environment: staged edges are visible to
  ``batched_actions`` immediately (a per-row widen restricted to the
  staged entities), and a periodic compaction folds them into fresh
  per-shard bundles — **only the shards holding staged edges rebuild**
  (delta-proportional, see :mod:`repro.graphstore.merge`), published
  with a single facade swap so concurrent walks see either the old
  store or the new one, never a mix.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.loader import SessionBatch
from repro.graphstore import (
    CSRShard,
    ShardTables,
    ShardedCSR,
    auto_shard_count,
    compact_store,
)
from repro.kg.builder import BuiltKG

@dataclass
class Rollout:
    """Result of walking ``path_length`` hops for a batch of sessions.

    ``entities`` has one column per visited node (hop 0 = start) and
    ``relations`` one column per hop taken.  ``session_idx`` maps every
    surviving path back to its source session row.  ``log_prob`` is the
    tensor of summed per-hop log probabilities (tape-free when produced
    under ``no_grad``; None only for hand-built rollouts); ``prob`` is
    its exponential as plain numpy.
    """

    session_idx: np.ndarray      # (P,)
    entities: np.ndarray         # (P, hops + 1)
    relations: np.ndarray        # (P, hops)
    prob: np.ndarray             # (P,)
    log_prob: Optional[object] = None  # Tensor (P,) when grad is enabled

    @property
    def num_paths(self) -> int:
        return len(self.session_idx)

    @property
    def terminals(self) -> np.ndarray:
        return self.entities[:, -1]


@dataclass
class FrontierBucket:
    """One degree-homogeneous slice of a frontier.

    ``rows`` indexes back into the frontier this bucket was cut from;
    the action arrays are rectangular over this bucket only, so the pad
    width equals the bucket's (not the whole frontier's) max degree.
    """

    rows: np.ndarray     # (M,) frontier-row indices covered
    rels: np.ndarray     # (M, A_bucket)
    tails: np.ndarray    # (M, A_bucket)
    mask: np.ndarray     # (M, A_bucket) True for legal actions


class RolloutWorkspace:
    """Grow-only scratch buffers recycled across frontier constructions.

    ``batched_actions`` materializes each frontier as rectangular
    ``(N, A)`` arrays; at serving scale those allocations dominate the
    per-hop cost.  A workspace keeps one buffer per role — rows grow
    geometrically, columns track the max width seen (bounded by
    ``action_cap``) — and hands out ``(N, A)`` views.

    Aliasing contract: arrays returned by a workspace-backed
    ``batched_actions`` call are views into these buffers and are
    valid only until the next call with the same workspace — consume
    (or copy out of) each frontier before requesting the next one,
    which is exactly how :meth:`REKSAgent.walk` iterates buckets.
    Recycling is safe even on the autograd tape because no backward
    closure ever captures a buffer: ``masked_fill`` retains the fresh
    ``~mask`` inversion rather than ``mask``, the gather index never
    reaches the tape, and embedding lookups copy the int32
    ``rels``/``tails`` views (dtype-preserving — see
    ``repro.nn.embedding.coerce_indices``) before the scatter-add
    closure retains them (``tests/test_env_differential`` pins that
    invariant end-to-end).

    A workspace is **single-owner** scratch: two concurrent walks
    sharing one would silently corrupt each other's frontiers.  The
    :meth:`checkout` / :meth:`release` hooks make ownership explicit —
    ``repro.serving.WorkspacePool`` checks a workspace out to exactly
    one worker at a time, and a double checkout raises instead of
    corrupting.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self._checked_out = False
        self.checkouts = 0
        # Buffer (re)allocations — steady state is zero once every
        # buffer has saturated; the gather bench and telemetry assert
        # on it.
        self.allocations = 0
        # Optional telemetry attachments, threaded through the walk by
        # whoever owns the workspace: ``metrics`` is a
        # repro.telemetry MetricBlock (or None), ``spans`` a list the
        # agent appends (kind_id, t0, dur) tuples to for sampled
        # requests (or None).
        self.metrics = None
        self.spans = None
        # When set to a list, the walk appends one per-row surviving
        # path census (np.bincount over the batch) per executed hop —
        # the raw material for per-request cost attribution (see
        # repro.telemetry.trace.attribute_rows).
        self.row_frontier = None

    def checkout(self) -> "RolloutWorkspace":
        """Mark this workspace as owned by one rollout/worker.

        Raises if it is already checked out — the recycled buffers are
        single-owner, so a second concurrent user means corruption.
        """
        if self._checked_out:
            raise RuntimeError(
                "RolloutWorkspace is already checked out; scratch "
                "buffers are single-owner — use one workspace per "
                "concurrent walk (see repro.serving.WorkspacePool)")
        self._checked_out = True
        self.checkouts += 1
        return self

    def release(self) -> None:
        """Return a checked-out workspace (buffers stay warm)."""
        self._checked_out = False

    def buffer(self, name: str, n: int, width: int, dtype) -> np.ndarray:
        """A ``(n, width)`` view of the named buffer, growing if needed."""
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < n or buf.shape[1] < width:
            # Rows grow geometrically; columns grow exact-fit to the
            # running max width.  Over-allocating columns would make
            # every handed-out view row-strided (non-contiguous),
            # slowing all downstream ufuncs; width is bounded by
            # action_cap and saturates after the first few frontiers,
            # so exact-fit reallocations are finitely bounded while
            # views stay contiguous whenever width == buffer width.
            rows = n if buf is None else max(n, 2 * buf.shape[0])
            cols = width if buf is None else max(width, buf.shape[1])
            buf = np.empty((max(rows, 1), max(cols, 1)), dtype=dtype)
            self._buffers[name] = buf
            self.allocations += 1
        return buf[:n, :width]

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())


class KGEnvironment:
    """Sharded-CSR capped adjacency with batched action-space queries."""

    def __init__(self, built: BuiltKG, action_cap: int = 250,
                 seed: int = 0,
                 tables: Optional[ShardedCSR] = None,
                 shards: Optional[int] = None) -> None:
        self.built = built
        self.kg = built.kg
        self.action_cap = action_cap
        if tables is not None:
            # Attach a precomputed store (e.g. shared-memory plane
            # views in a process worker) instead of re-running the
            # capping — the rng subsample below would otherwise have
            # to replay bit-exactly for rankings to match the
            # exporting parent.
            if tables.num_entities != self.kg.num_entities:
                raise ValueError(
                    f"store covers {tables.num_entities} entities, "
                    f"this KG has {self.kg.num_entities}")
            self._csr = tables
        else:
            indptr, rels, tails = built.adjacency_csr()
            degrees = np.diff(indptr).astype(np.int64)
            rng = np.random.default_rng(seed)
            over = np.flatnonzero(degrees > action_cap)
            if over.size:
                keep = np.ones(rels.shape[0], dtype=bool)
                for entity in over:  # hubs only — a one-time build cost
                    start, stop = int(indptr[entity]), int(indptr[entity + 1])
                    # Uniform subsample keeps the relation-type mix
                    # unbiased (a head-truncation would drop whole
                    # relation blocks).
                    pick = rng.choice(stop - start, size=action_cap,
                                      replace=False)
                    pick.sort()
                    block = np.zeros(stop - start, dtype=bool)
                    block[pick] = True
                    keep[start:stop] = block
                rels, tails = rels[keep], tails[keep]
                degrees = np.minimum(degrees, action_cap)
            num_shards = (int(shards) if shards
                          else auto_shard_count(self.kg.num_entities,
                                                int(rels.shape[0])))
            self._csr = ShardedCSR.build(degrees, rels, tails,
                                         num_shards=num_shards)
        # Staged edge overlay (online delta ingestion).  Edges land in
        # per-entity lists, are visible to batched_actions immediately,
        # and are folded into fresh per-shard bundles by compact().
        # The lock covers staging and compaction; readers are lock-free
        # (they check one counter and snapshot the per-entity lists).
        # `_staged_len` doubles as the hot-path "has overlay" flag and
        # the at-cap bookkeeping; `_staged_keys` is the sorted scalar
        # (head, rel, tail) key array the vectorized dedup searches.
        self._overlay_lock = threading.Lock()
        self._staged: Dict[int, List[Tuple[int, int]]] = {}
        self._staged_len = np.zeros(self.kg.num_entities, dtype=np.int32)
        self._staged_keys = np.zeros(0, dtype=np.int64)
        self._staged_count = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    def degree(self, entity: int) -> int:
        return int(self._csr.degrees[entity])

    @property
    def num_shards(self) -> int:
        """Shard count of the current store generation."""
        return self._csr.num_shards

    def actions_of(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        """(relations, tails) of one entity after capping (CSR slices).

        Includes any staged-but-uncompacted edges of ``entity`` (those
        come back as copies appended after the CSR block).
        """
        rels, tails = self._csr.slice(int(entity))
        if self._staged_count and self._staged_len[entity]:
            extras = list(self._staged.get(int(entity), ()))
            if extras:
                rels = np.concatenate(
                    [rels, np.array([r for r, _ in extras], dtype=np.int32)])
                tails = np.concatenate(
                    [tails, np.array([t for _, t in extras], dtype=np.int32)])
        return rels, tails

    # ------------------------------------------------------------------
    # Online delta ingestion: staged overlay + periodic compaction
    # ------------------------------------------------------------------
    @property
    def staged_edges(self) -> int:
        """Edges staged in the overlay, not yet compacted into CSR."""
        return self._staged_count

    def _edge_keys(self, heads: np.ndarray, rels: np.ndarray,
                   tails: np.ndarray) -> np.ndarray:
        """Scalar int64 identity of each (head, rel, tail) triple.

        Collision-free while ``num_entities**2 * num_relations < 2**63``
        — comfortably true for any int32-indexed KG this stack serves.
        """
        n_ent = np.int64(self.kg.num_entities)
        n_rel = np.int64(self.kg.num_relations)
        return (heads * n_rel + rels) * n_ent + tails

    def stage_edges(self, heads, rels, tails) -> int:
        """Stage new ``(head, relation, tail)`` edges into the overlay.

        Edges become visible to :meth:`batched_actions` /
        :meth:`actions_of` immediately (eventual within a concurrent
        call: a walk that already gathered its frontier keeps its
        snapshot).  Duplicates — against the capped CSR adjacency,
        within the overlay, and within the batch itself — are dropped,
        as are edges whose head is already at ``action_cap`` (they
        could never survive compaction, and serving them only until
        the next compaction would flip rankings with no new data);
        returns the number of edges actually staged.  Entities must
        already exist: growing the entity set online would also require
        growing the embedding tables, which is a retrain, not a delta.

        The dedup is fully vectorized: one padded grid gather over the
        batch heads answers membership against the base adjacency for
        every edge at once, and a ``searchsorted`` against the sorted
        overlay-key array answers overlay membership — no per-edge CSR
        slice, no per-edge list scan.
        """
        heads = np.asarray(heads, dtype=np.int64).ravel()
        rels = np.asarray(rels, dtype=np.int64).ravel()
        tails = np.asarray(tails, dtype=np.int64).ravel()
        if not (heads.shape == rels.shape == tails.shape):
            raise ValueError("heads, rels, tails must have matching shapes")
        if heads.size == 0:
            return 0
        n_ent, n_rel = self.kg.num_entities, self.kg.num_relations
        if heads.min() < 0 or heads.max() >= n_ent \
                or tails.min() < 0 or tails.max() >= n_ent:
            raise IndexError("staged entity id out of range")
        if rels.min() < 0 or rels.max() >= n_rel:
            raise IndexError("staged relation id out of range")
        with self._overlay_lock:
            # Read the store under the lock: compact() also holds it,
            # so the dedup below can never run against a generation
            # older than the overlay it is staging into (a stale read
            # could re-stage a just-compacted edge and bake it into
            # the base twice at the next compaction).
            csr = self._csr
            keys = self._edge_keys(heads, rels, tails)
            # In-batch dedup: first occurrence wins, staging order kept.
            _, first = np.unique(keys, return_index=True)
            if first.size != keys.size:
                first.sort()
                heads, rels, tails = heads[first], rels[first], tails[first]
                keys = keys[first]
            # Membership vs the capped base adjacency: gather every
            # head's padded (rels, tails) grid once, compare broadcast.
            base_deg = np.take(csr.degrees, heads).astype(np.int64)
            n = heads.size
            width = max(int(base_deg.max()), 1)
            cols = np.arange(width, dtype=np.int32)
            mask = cols[None, :] < base_deg[:, None]
            idx = np.empty((n, width), dtype=np.int32)
            grid_rels = np.empty((n, width), dtype=np.int32)
            grid_tails = np.empty((n, width), dtype=np.int32)
            csr.gather_into(heads, cols, mask, idx, grid_rels, grid_tails)
            dup = ((grid_rels == rels[:, None])
                   & (grid_tails == tails[:, None]) & mask).any(axis=1)
            # ...and vs the overlay (sorted scalar keys).
            if self._staged_keys.size:
                pos = np.minimum(
                    np.searchsorted(self._staged_keys, keys),
                    self._staged_keys.size - 1)
                dup |= self._staged_keys[pos] == keys
            fresh = ~dup
            if not fresh.any():
                return 0
            heads, rels, tails = heads[fresh], rels[fresh], tails[fresh]
            keys, base_deg = keys[fresh], base_deg[fresh]
            # At-cap drop, order-preserving: the j-th surviving edge of
            # a head (after `existing` already-staged ones) lands only
            # if base_deg + existing + j < cap — identical to the old
            # sequential check, since the condition is monotone in j.
            order = np.argsort(heads, kind="stable")
            sorted_heads = heads[order]
            change = np.empty(sorted_heads.size, dtype=bool)
            change[0] = True
            np.not_equal(sorted_heads[1:], sorted_heads[:-1],
                         out=change[1:])
            group_start = np.flatnonzero(change)
            group_len = np.diff(np.concatenate(
                [group_start, [sorted_heads.size]]))
            pos_in_head = (np.arange(sorted_heads.size, dtype=np.int64)
                           - np.repeat(group_start, group_len))
            existing = np.take(self._staged_len,
                               sorted_heads).astype(np.int64)
            room = (base_deg[order] + existing + pos_in_head
                    < self.action_cap)
            kept = np.sort(order[room])
            if kept.size == 0:
                return 0
            heads, rels, tails = heads[kept], rels[kept], tails[kept]
            keys = keys[kept]
            for head, rel, tail in zip(heads.tolist(), rels.tolist(),
                                       tails.tolist()):
                self._staged.setdefault(head, []).append((rel, tail))
            np.add.at(self._staged_len, heads, 1)
            self._staged_keys = np.sort(
                np.concatenate([self._staged_keys, keys]))
            self._staged_count += int(heads.size)
            return int(heads.size)

    def compact(self) -> int:
        """Fold the staged overlay into fresh shard bundles (atomic swap).

        Delta-proportional: only shards that hold staged heads rebuild
        (base + staged merged per head, base edges first so
        ``action_cap`` truncation prefers the established adjacency —
        see :func:`repro.graphstore.merge.merge_shard`); every clean
        shard rides into the new facade untouched, keeping its arrays
        and cached digest.  The new store is published with a single
        attribute store: in-flight queries keep the facade they already
        loaded, the next query sees the new one.  Returns the number of
        edges merged.
        """
        with self._overlay_lock:
            if not self._staged_count:
                return 0
            store = self._csr
            staged = self._staged_grouped_locked()
            new_store, _ = compact_store(store, staged, self.action_cap)
            merged = self._staged_count
            # Clear the overlay BEFORE publishing the merged store: a
            # lock-free reader between the two stores then misses the
            # staged edges for one query (benign eventual visibility)
            # instead of seeing them twice (duplicate actions).
            self._clear_overlay_locked()
            self._csr = new_store
            self.compactions += 1
        return merged

    def _clear_overlay_locked(self) -> None:
        self._staged = {}
        self._staged_len = np.zeros(self.kg.num_entities, dtype=np.int32)
        self._staged_keys = np.zeros(0, dtype=np.int64)
        self._staged_count = 0

    def _staged_triples_locked(self) -> Tuple[np.ndarray, np.ndarray,
                                              np.ndarray]:
        """Flatten the overlay into ``(heads, rels, tails)`` arrays.

        The single overlay flattener (lock held): snapshots, key
        rebuilds, and shard grouping all derive from this, so the
        overlay representation has exactly one reader to change.
        Per-head staging order is preserved (heads grouped per dict
        entry, bucket order within).
        """
        triples = [(head, rel, tail)
                   for head, pairs in self._staged.items()
                   for rel, tail in pairs]
        if not triples:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        heads, rels, tails = (np.array(col, dtype=np.int64)
                              for col in zip(*triples))
        return heads, rels, tails

    def _staged_grouped_locked(self) -> Dict[int, Tuple[np.ndarray,
                                                        np.ndarray,
                                                        np.ndarray]]:
        """The overlay grouped by owning shard (lock held)."""
        heads, rels, tails = self._staged_triples_locked()
        if not heads.size:
            return {}
        sids = self._csr.shard_of(heads)
        return {int(sid): (heads[sids == sid], rels[sids == sid],
                           tails[sids == sid])
                for sid in np.unique(sids)}

    def csr_tables(self) -> ShardedCSR:
        """The current immutable store (one atomic attribute load).

        This is the export surface of the environment: the runtime
        plane copies each shard's arrays into OS shared memory, and
        worker processes hand equivalent zero-copy views back to
        :meth:`attach_tables` / :meth:`attach_shards`.
        """
        return self._csr

    def flat_tables(self) -> ShardTables:
        """Monolithic flat bundle of the current store (O(E) copy —
        compatibility/oracle surface, never the hot path)."""
        return self._csr.to_flat()

    def attach_tables(self, tables: ShardedCSR) -> None:
        """Atomically replace the whole store with foreign views.

        Used by process workers when the parent publishes a full plane
        generation: the swap is a single attribute store, so a
        concurrent walk keeps the facade it already loaded.  The staged
        overlay is cleared — a published generation already contains
        everything the parent compacted into it.
        """
        if tables.num_entities != self.kg.num_entities:
            raise ValueError(
                f"store covers {tables.num_entities} entities, "
                f"this KG has {self.kg.num_entities}")
        with self._overlay_lock:
            self._clear_overlay_locked()
            self._csr = tables
            self.compactions += 1

    def attach_shards(self, updates: Dict[int, CSRShard],
                      staged: Optional[Dict[int, Tuple[np.ndarray,
                                                       np.ndarray,
                                                       np.ndarray]]] = None
                      ) -> None:
        """Swap in foreign generations of *only* the given shards.

        The delta half of the plane publish protocol: overlay entries
        whose head lies in a replaced shard are dropped (the incoming
        generation already contains what the publisher compacted),
        entries on untouched shards stay live, and ``staged`` — the
        publisher's still-staged edges *for exactly the replaced
        shards* — is replayed afterwards, so the environment lands on
        the publisher's served adjacency without touching the clean
        shards or their overlay.
        """
        if not updates:
            return
        with self._overlay_lock:
            store = self._csr
            ranges = [(store.shards[sid].start, store.shards[sid].stop)
                      for sid in updates]
            if self._staged_count:
                stale = [head for head in self._staged
                         if any(lo <= head < hi for lo, hi in ranges)]
                for head in stale:
                    pairs = self._staged.pop(head)
                    self._staged_count -= len(pairs)
                    self._staged_len[head] = 0
                if stale:
                    self._staged_keys = self._overlay_keys_locked()
            self._csr = store.replace_shards(updates)
            self.compactions += 1
        if staged:
            for sid in sorted(staged):
                self.stage_edges(*staged[sid])

    def _overlay_keys_locked(self) -> np.ndarray:
        """Recompute the sorted overlay-key array from the live dict."""
        heads, rels, tails = self._staged_triples_locked()
        if not heads.size:
            return np.zeros(0, dtype=np.int64)
        return np.sort(self._edge_keys(heads, rels, tails))

    def reset_overlay_after_fork(self) -> None:
        """Reinitialize overlay lock + staged state in a forked child.

        A fork can capture the overlay lock *held* by another parent
        thread (the child's copy would then never unlock) and the
        staged dict mid-mutation.  A child that owns its own delta
        stream — the subprocess updater re-derives edges from the
        sessions shipped to it — calls this first: fresh lock, empty
        overlay, immutable store untouched.
        """
        self._overlay_lock = threading.Lock()
        self._clear_overlay_locked()

    def staged_snapshot(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copy of the staged overlay as ``(heads, rels, tails)`` arrays.

        Lets a process-worker bootstrap replay edges that were staged
        but not yet compacted when the worker pool was built, so child
        environments serve the same adjacency as the parent.
        """
        with self._overlay_lock:
            return self._staged_triples_locked()

    def staged_by_shard(self) -> Dict[int, Tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]]:
        """The staged overlay grouped by owning shard.

        The delta-publish path ships only the dirty shards' entries, so
        a worker that re-attached two shards replays two shards' worth
        of edges, not the whole overlay.
        """
        with self._overlay_lock:
            return self._staged_grouped_locked()

    def staged_counts_by_shard(self) -> Dict[int, int]:
        """Staged-edge count per shard (the per-shard compaction
        policy's trigger signal)."""
        with self._overlay_lock:
            heads, _, _ = self._staged_triples_locked()
            if not heads.size:
                return {}
            sids = self._csr.shard_of(heads)
        uniq, counts = np.unique(sids, return_counts=True)
        return {int(sid): int(count) for sid, count in zip(uniq, counts)}

    def fingerprint(self) -> str:
        """Digest of the served adjacency (shard digests + staged count).

        Checkpoint manifests record it so a restored model can detect
        that it is being attached to a different graph than it was
        trained against.  The store digest is a hash over the cached
        per-shard content digests, so after a 2-shard delta only those
        2 shards re-hash — unchanged shards cost nothing.  Compaction
        changes the fingerprint; staging alone does too (via the
        staged-edge count).

        The trade for that incrementality: the digest is scoped to the
        **shard layout** as well as the content — re-sharding the same
        adjacency (a ``graph_shards`` change, or the auto heuristic
        flipping as the graph grows across a threshold) re-keys it.
        The failure mode is conservative (a checkpoint looks attached
        to a *different* graph, never silently to the wrong one);
        :meth:`flat_tables` is the layout-independent content surface
        if a consumer needs byte-level identity across layouts.
        """
        digest = hashlib.sha256()
        digest.update(np.int64(self.kg.num_entities).tobytes())
        digest.update(np.int64(self._staged_count).tobytes())
        digest.update(self._csr.digest().encode("ascii"))
        return digest.hexdigest()[:16]

    def batched_actions(self, entities: np.ndarray, visited: np.ndarray,
                        workspace: Optional[RolloutWorkspace] = None
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded action arrays for a frontier — one gather, no row loop.

        Parameters
        ----------
        entities:
            ``(N,)`` current entity per path.
        visited:
            ``(N, V)`` entities already on each path (including the
            current one); matching tails are masked out.
        workspace:
            Optional scratch-buffer pool.  When given, the returned
            arrays are views into its buffers, valid only until the
            next call with the same workspace (see
            :class:`RolloutWorkspace` for why that is tape-safe).

        Returns
        -------
        (relations, tails, mask):
            ``(N, A)`` arrays with ``A = max(frontier degrees, 1)``;
            ``mask`` is True for legal actions and padded cells hold 0.
        """
        entities = np.asarray(entities, dtype=np.int64)
        n = len(entities)

        # Beam frontiers repeat entities heavily (wide beams fan into
        # shared hub tails), so when the frontier is duplicate-rich we
        # gather the grid once per *distinct* entity and row-expand —
        # the dominant random gather shrinks to the unique count and
        # the expansion is a contiguous row copy.  Attempted when the
        # pigeonhole bound guarantees a >= 2x duplication factor (the
        # sort inside np.unique can never be wasted work), and also for
        # serving-sized micro-batches (32-256 rows): coalesced traffic
        # repeats popular start entities far below the pigeonhole
        # threshold, and at these row counts the entity->grid-row memo
        # costs a sort of a few hundred ints, so we keep it whenever it
        # removes at least a quarter of the gather rows.  On a sharded
        # store the memo doubles as **shard-major routing**: np.unique
        # returns the distinct frontier sorted, shards cover contiguous
        # id ranges, so the grid gather walks the touched shards as
        # contiguous runs and the row expansion (np.take over inverse)
        # is the single scatter back to row order — hence any dedup at
        # all pays on a multi-shard store.
        uniq = inverse = None
        if n >= 64 and n >= 2 * self.kg.num_entities:
            uniq, inverse = np.unique(entities, return_inverse=True)
        elif 8 <= n <= 512:
            memo_uniq, memo_inverse = np.unique(entities,
                                                return_inverse=True)
            if (4 * memo_uniq.size <= 3 * n
                    or (self._csr.num_shards > 1
                        and memo_uniq.size < n)):
                uniq, inverse = memo_uniq, memo_inverse
        if uniq is None:
            rels, tails, mask = self._gather_grid(entities, workspace)
            width = rels.shape[1]
        else:
            rels_u, tails_u, mask_u = self._gather_grid(uniq, None)
            width = rels_u.shape[1]
            if workspace is not None:
                rels = workspace.buffer("rels", n, width, np.int32)
                tails = workspace.buffer("tails", n, width, np.int32)
                mask = workspace.buffer("mask", n, width, bool)
                np.take(rels_u, inverse, axis=0, out=rels)
                np.take(tails_u, inverse, axis=0, out=tails)
                np.take(mask_u, inverse, axis=0, out=mask)
            else:
                rels = np.take(rels_u, inverse, axis=0)
                tails = np.take(tails_u, inverse, axis=0)
                mask = np.take(mask_u, inverse, axis=0)

        if self._staged_count:
            rels, tails, mask = self._widen_with_overlay(
                entities, rels, tails, mask)
            width = rels.shape[1]

        if workspace is not None:
            scratch = workspace.buffer("scratch", n, width, bool)
        else:
            scratch = np.empty((n, width), dtype=bool)
        visited = np.asarray(visited)
        if visited.dtype != np.int32:
            visited = visited.astype(np.int32)  # (N, V) — tiny copy
        for col in range(visited.shape[1]):  # path length, not frontier
            np.not_equal(tails, visited[:, col:col + 1], out=scratch)
            np.logical_and(mask, scratch, out=mask)
        return rels, tails, mask

    def _gather_grid(self, entities: np.ndarray,
                     workspace: Optional[RolloutWorkspace]
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Visited-agnostic ``(N, A)`` action grid for given entities."""
        csr = self._csr
        n = len(entities)
        degs = np.take(csr.degrees, entities)
        width = int(degs.max()) if n else 0
        width = max(width, 1)

        if workspace is not None:
            idx = workspace.buffer("idx", n, width, np.int32)
            mask = workspace.buffer("mask", n, width, bool)
            rels = workspace.buffer("rels", n, width, np.int32)
            tails = workspace.buffer("tails", n, width, np.int32)
        else:
            idx = np.empty((n, width), dtype=np.int32)
            mask = np.empty((n, width), dtype=bool)
            rels = np.empty((n, width), dtype=np.int32)
            tails = np.empty((n, width), dtype=np.int32)

        cols = np.arange(width, dtype=np.int32)
        np.less(cols[None, :], degs[:, None], out=mask)
        # The store redirects every padded cell to its shard's
        # zero-sentinel slot, so the gather stays in bounds and pads
        # read as 0 — one sub-gather per touched shard, no row loop.
        # The workspace rides along so the multi-shard path recycles
        # its scatter scratch, and its metric block (if any) picks up
        # per-shard gather counters.
        csr.gather_into(entities, cols, mask, idx, rels, tails,
                        scratch=workspace,
                        metrics=None if workspace is None
                        else workspace.metrics)
        return rels, tails, mask

    def _widen_with_overlay(self, entities: np.ndarray, rels: np.ndarray,
                            tails: np.ndarray, mask: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Append staged-overlay edges to the rows that have them.

        The overlay holds edges ingested since the last compaction — a
        deliberately small set, so the per-affected-row Python loop is
        bounded.  Returns fresh (copied) arrays: overlay frontiers
        bypass the workspace buffers, which keeps the zero-overlay hot
        path untouched.
        """
        hot = np.take(self._staged_len, entities) > 0
        if not hot.any():
            return rels, tails, mask
        hot_rows = np.flatnonzero(hot)
        # Copy each bucket: a concurrent stage_edges may append to the
        # live lists between the width computation and the fill loop.
        extras = [list(self._staged.get(int(entities[row]), ()))
                  for row in hot_rows]
        extra_width = max(len(pairs) for pairs in extras)
        if extra_width == 0:
            return rels, tails, mask
        n, width = rels.shape
        wide = width + extra_width
        out_rels = np.zeros((n, wide), dtype=np.int32)
        out_tails = np.zeros((n, wide), dtype=np.int32)
        out_mask = np.zeros((n, wide), dtype=bool)
        out_rels[:, :width] = rels
        out_tails[:, :width] = tails
        out_mask[:, :width] = mask
        degs = mask.sum(axis=1)
        for row, pairs in zip(hot_rows, extras):
            base = int(degs[row])
            for offset, (rel, tail) in enumerate(pairs):
                out_rels[row, base + offset] = rel
                out_tails[row, base + offset] = tail
                out_mask[row, base + offset] = True
        return out_rels, out_tails, out_mask

    def iter_frontier_buckets(self, entities: np.ndarray,
                              visited: np.ndarray, num_buckets: int = 1,
                              workspace: Optional[RolloutWorkspace] = None
                              ) -> Iterator[FrontierBucket]:
        """Yield the frontier as degree-quantile buckets.

        With ``num_buckets <= 1`` (the default) this is a single bucket
        covering every row — identical arrays to ``batched_actions``.
        With more buckets, rows are grouped by degree quantile so each
        rectangle is padded only to its own bucket's max degree; a lone
        mega-hub then costs one narrow bucket instead of widening the
        whole batch.

        Buckets are yielded lazily and may share ``workspace`` buffers:
        consume each bucket fully before advancing the iterator.
        """
        entities = np.asarray(entities, dtype=np.int64)
        n = len(entities)
        if num_buckets <= 1 or n <= num_buckets:
            rels, tails, mask = self.batched_actions(
                entities, visited, workspace=workspace)
            yield FrontierBucket(rows=np.arange(n, dtype=np.int64),
                                 rels=rels, tails=tails, mask=mask)
            return
        order = np.argsort(self._csr.degrees[entities], kind="stable")
        for chunk in np.array_split(order, num_buckets):
            if chunk.size == 0:
                continue
            rows = np.sort(chunk)
            rels, tails, mask = self.batched_actions(
                entities[rows], visited[rows], workspace=workspace)
            yield FrontierBucket(rows=rows, rels=rels, tails=tails,
                                 mask=mask)

    # ------------------------------------------------------------------
    def start_entities(self, batch: SessionBatch, start_from: str) -> np.ndarray:
        """Hop-0 entities: the last item of every prefix, or the user."""
        if start_from == "last_item":
            return self.built.entities_of_items(batch.last_items)
        if start_from == "user":
            if self.built.user_entity is None:
                raise ValueError(
                    "start_from='user' requires a KG built with users "
                    "(include_users=True and an Amazon-domain dataset)")
            return self.built.user_entity[batch.users]
        raise ValueError(f"unknown start_from {start_from!r}")
