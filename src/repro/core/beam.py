"""Beam-search diagnostics and an exhaustive-path oracle.

The differentiable beam walk lives in :meth:`REKSAgent.walk`; this
module provides the tooling around it:

* :func:`enumerate_paths` — exhaustive (oracle) path enumeration used
  to verify the beam only ever returns genuine KG walks and to measure
  what fraction of the reachable item set the beam covers;
* :func:`beam_diagnostics` — per-batch statistics (paths kept,
  candidate items, target-reached rate) for tuning sampling sizes and
  action caps at new dataset scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.autograd import no_grad
from repro.data.loader import SessionBatch
from repro.kg.builder import BuiltKG
from repro.kg.paths import SemanticPath


def enumerate_paths(built: BuiltKG, start: int, length: int,
                    max_paths: int = 100_000) -> List[SemanticPath]:
    """All simple paths of exactly ``length`` hops from ``start``.

    Exhaustive, so only suitable for small KGs / short lengths; raises
    as soon as the path count would exceed ``max_paths`` (a fan-out
    guard) — at most ``max_paths`` paths are ever accumulated.
    """
    paths: List[SemanticPath] = []
    stack: List[Tuple[List[int], List[int]]] = [([start], [])]
    while stack:
        entities, relations = stack.pop()
        if len(relations) == length:
            if len(paths) >= max_paths:
                raise RuntimeError(
                    f"more than {max_paths} paths from entity {start}")
            paths.append(SemanticPath(entities=list(entities),
                                      relations=list(relations), prob=0.0))
            continue
        rels, tails = built.kg.neighbors(entities[-1])
        visited = set(entities)
        for r, t in zip(rels.tolist(), tails.tolist()):
            if t in visited:
                continue
            stack.append((entities + [t], relations + [r]))
    return paths


def reachable_items(built: BuiltKG, start: int, length: int) -> Set[int]:
    """Item ids reachable at exactly ``length`` hops (simple paths)."""
    items: Set[int] = set()
    for path in enumerate_paths(built, start, length):
        item = int(built.items_of_entities(np.array([path.terminal]))[0])
        if item > 0:
            items.add(item)
    return items


@dataclass
class BeamDiagnostics:
    """Aggregate beam statistics over one batch."""

    paths_per_session: float
    candidates_per_session: float
    target_reached_rate: float
    dead_end_rate: float
    mass_kept: float  # mean total path probability per session


def beam_diagnostics(agent, batch: SessionBatch) -> BeamDiagnostics:
    """Run the inference beam and report coverage statistics."""
    with no_grad():
        session_repr = agent.encoder.encode(batch)
        rollout = agent.walk(session_repr, batch)
    batch_size = batch.batch_size
    counts = np.bincount(rollout.session_idx, minlength=batch_size)
    items = agent.env.built.items_of_entities(rollout.terminals)

    # Vectorized per-session tallies: unique (session, item) pairs give
    # the candidate counts; a target hit is any path whose terminal
    # item equals its session's target.  No Python loop over the batch.
    candidates = np.zeros(batch_size)
    reached = np.zeros(batch_size, dtype=bool)
    valid = items > 0
    if valid.any():
        pairs = np.unique(
            np.stack([rollout.session_idx[valid], items[valid]], axis=1),
            axis=0)
        candidates += np.bincount(pairs[:, 0], minlength=batch_size)
        hits = items == np.asarray(batch.targets)[rollout.session_idx]
        reached[rollout.session_idx[hits & valid]] = True
    mass = np.bincount(rollout.session_idx, weights=rollout.prob,
                       minlength=batch_size)
    return BeamDiagnostics(
        paths_per_session=float(counts.mean()),
        candidates_per_session=float(candidates.mean()),
        target_reached_rate=float(reached.mean()),
        dead_end_rate=float((counts == 0).mean()),
        mass_kept=float(mass.mean()),
    )
