"""Explanation generation and rendering (paper §IV-C, Fig. 8/10).

For each recommended item the probabilistic beam search already tracked
the highest-probability semantic path; this module packages those paths
with relevance scores (``σ(Pᵀ·Se)``, the same quantity as the path
reward) into :class:`Explanation` cases, and renders them in the
arrow form the paper's case studies use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.data.loader import SessionBatcher
from repro.data.schema import Session
from repro.kg.paths import SemanticPath, mean_path_embedding, render_path


@dataclass
class RecommendedItem:
    """One entry of a top-K list with its explanation path."""

    item: int
    score: float
    path: Optional[SemanticPath] = None
    relevance: float = 0.0  # σ(Pᵀ·Se) of the attached path


@dataclass
class Explanation:
    """A full explanation case: session + recommendations + paths."""

    session_items: List[int]
    user_id: int
    target: int
    recommendations: List[RecommendedItem] = field(default_factory=list)

    @property
    def hit(self) -> bool:
        return self.target in [r.item for r in self.recommendations]


class Explainer:
    """Generate explanation cases from a fitted :class:`REKSTrainer`."""

    def __init__(self, trainer) -> None:
        self.trainer = trainer
        self.kg = trainer.built.kg
        self._entity_table = trainer.policy.entity_emb.weight.data
        self._relation_table = trainer.policy.relation_emb.weight.data

    def explain_sessions(self, sessions: Sequence[Session],
                         k: int = 5) -> List[Explanation]:
        """Top-``k`` recommendations with best paths for each session."""
        sessions = list(sessions)
        out: List[Explanation] = []
        batcher = SessionBatcher(
            sessions, batch_size=256,
            max_length=self.trainer.config.max_session_length,
            augment=False, shuffle=False)
        offset = 0
        for batch in batcher:
            rec = self.trainer.agent.recommend(batch, k=k)
            se = self._session_repr(batch)
            for row in range(batch.batch_size):
                session = sessions[offset + row]
                items: List[RecommendedItem] = []
                for item in rec.ranked_items[row]:
                    item = int(item)
                    if item == 0 or rec.scores[row, item] <= 0:
                        continue
                    path = rec.paths.get((row, item))
                    relevance = (self._relevance(path, se[row])
                                 if path is not None else 0.0)
                    items.append(RecommendedItem(
                        item=item, score=float(rec.scores[row, item]),
                        path=path, relevance=relevance))
                out.append(Explanation(
                    session_items=list(session.items[:-1]),
                    user_id=session.user_id,
                    target=session.target,
                    recommendations=items))
            offset += batch.batch_size
        return out

    # ------------------------------------------------------------------
    def _session_repr(self, batch) -> np.ndarray:
        with no_grad():
            self.trainer.encoder.eval()
            return self.trainer.encoder.encode(batch).data.copy()

    def _relevance(self, path: SemanticPath, se: np.ndarray) -> float:
        p = mean_path_embedding(self._entity_table, self._relation_table,
                                path)
        return float(1.0 / (1.0 + np.exp(-(p * se).sum())))

    # ------------------------------------------------------------------
    def diversity_report(self, explanations: Sequence[Explanation]) -> dict:
        """Aggregate explanation quality across cases (extension).

        Reports path coverage (fraction of recommendations carrying a
        path), mean path relevance, distinct relation patterns and
        their frequency — the quantities one would monitor before
        shipping path-based explanations.
        """
        from repro.kg.paths import path_diversity

        paths = []
        total_recs = 0
        relevances = []
        for case in explanations:
            for rec in case.recommendations:
                total_recs += 1
                if rec.path is not None:
                    paths.append(rec.path)
                    relevances.append(rec.relevance)
        patterns: dict = {}
        for path in paths:
            key = " -> ".join(path.pattern(self.kg))
            patterns[key] = patterns.get(key, 0) + 1
        return {
            "cases": len(list(explanations)),
            "recommendations": total_recs,
            "path_coverage": len(paths) / max(total_recs, 1),
            "mean_relevance": (float(np.mean(relevances))
                               if relevances else 0.0),
            "distinct_patterns": len(patterns),
            "pattern_counts": dict(sorted(patterns.items(),
                                          key=lambda kv: -kv[1])),
            "pattern_diversity": path_diversity(paths, self.kg),
        }

    def render_case(self, explanation: Explanation,
                    item_names=None) -> str:
        """Figure-10-style text block for one case."""
        name = item_names or self.trainer.dataset.item_names
        lines = []
        session_str = ", ".join(name.get(i, f"item:{i}")
                                for i in explanation.session_items)
        lines.append(f"session: {{{session_str}}}")
        lines.append(f"ground truth: {name.get(explanation.target)}")
        for rec in explanation.recommendations:
            lines.append(f"  recommend {name.get(rec.item, rec.item)} "
                         f"(score={rec.score:.4f}, "
                         f"relevance={rec.relevance:.3f})")
            if rec.path is not None:
                lines.append(f"    via {render_path(rec.path, self.kg)}")
        return "\n".join(lines)

    def case_to_dot(self, explanation: Explanation) -> str:
        """Graphviz DOT source for one case (Figure-10-style diagram).

        Session items are boxes, explanation-path intermediates are
        ellipses, the recommended items are double circles; edges carry
        the relation names.  Render with ``dot -Tpng case.dot``.
        """
        def node_id(entity: int) -> str:
            return f"e{entity}"

        lines = ["digraph explanation {", "  rankdir=LR;"]
        emitted = set()
        for item in explanation.session_items:
            entity = int(self.trainer.built.item_entity[item])
            lines.append(
                f'  {node_id(entity)} [label="{self.kg.entity_name(entity)}"'
                f", shape=box];")
            emitted.add(entity)
        edges = set()
        for rec in explanation.recommendations:
            if rec.path is None:
                continue
            terminal = rec.path.terminal
            for entity in rec.path.entities:
                if entity in emitted:
                    continue
                shape = "doublecircle" if entity == terminal else "ellipse"
                lines.append(
                    f'  {node_id(entity)} '
                    f'[label="{self.kg.entity_name(entity)}", '
                    f"shape={shape}];")
                emitted.add(entity)
            for h, r, t in zip(rec.path.entities[:-1], rec.path.relations,
                               rec.path.entities[1:]):
                key = (h, r, t)
                if key in edges:
                    continue
                edges.add(key)
                lines.append(
                    f"  {node_id(h)} -> {node_id(t)} "
                    f'[label="{self.kg.relation_names[r]}"];')
        lines.append("}")
        return "\n".join(lines)
