"""REKS agent: differentiable KG walk + REINFORCE-with-baseline loss.

One training step (Algorithm 1, lines 4-12):

1. the wrapped SR encoder produces ``Se`` for the batch;
2. the policy walks ``path_length`` hops from each session's last item,
   keeping the top-``P_t`` actions per path at hop ``t`` (Table VII:
   {100, 1}); the summed log-probabilities stay on the autograd tape;
3. per-path probabilities are scatter-added into ``ŷ`` over the item
   catalog (paths ending at non-product entities contribute nothing);
4. rewards are computed (Eq. 5-9) and the loss ``L = β·Lr + Lce``
   (Eq. 11-14) is backpropagated through both the policy network and
   the SR encoder — the encoder is "part of the policy network".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # avoid a core -> cascade import cycle at runtime
    from repro.cascade.planner import WalkConstraint

import numpy as np

from repro.autograd import functional as F, no_grad
from repro.telemetry.block import walk_hop_hist
from repro.telemetry.trace import span_kind_id

_SPAN_WALK = span_kind_id("walk")
_SPAN_TOPK = span_kind_id("topk")
from repro.autograd.tensor import Tensor
from repro.core.config import REKSConfig
from repro.core.environment import (
    KGEnvironment,
    Rollout,
    RolloutWorkspace,
)
from repro.core.policy import PolicyNetwork
from repro.core.rewards import RewardComputer
from repro.data.loader import SessionBatch
from repro.kg.paths import SemanticPath
from repro.models.base import SessionEncoder
from repro.nn.module import Module

NEG_INF = -1e9


@dataclass
class StepStats:
    """Diagnostics from one training step."""

    loss: float
    reward_loss: float
    ce_loss: float
    mean_reward: float
    num_paths: int
    reward_components: Dict[str, float] = field(default_factory=dict)


@dataclass
class Recommendations:
    """Inference output for one batch."""

    scores: np.ndarray                       # (B, n_items + 1)
    ranked_items: np.ndarray                 # (B, K)
    paths: Dict[Tuple[int, int], SemanticPath]  # (row, item) -> best path


class REKSAgent(Module):
    """Couples an encoder, a policy network, and the KG environment."""

    def __init__(self, encoder: SessionEncoder, policy: PolicyNetwork,
                 env: KGEnvironment, rewards: RewardComputer,
                 config: REKSConfig,
                 workspace: Optional[RolloutWorkspace] = None) -> None:
        super().__init__()
        self.encoder = encoder
        self.policy = policy
        self.env = env
        self.rewards = rewards
        self.config = config
        self.n_items = env.built.n_items
        self.workspace = workspace if workspace is not None \
            else RolloutWorkspace()
        self._rng = np.random.default_rng(config.seed + 101)

    # ------------------------------------------------------------------
    # Rollout
    # ------------------------------------------------------------------
    def walk(self, session_repr: Tensor, batch: SessionBatch,
             sizes: Optional[Tuple[int, ...]] = None,
             stochastic: bool = False,
             workspace: Optional[RolloutWorkspace] = None,
             candidates: Optional["WalkConstraint"] = None) -> Rollout:
        """Beam-walk the KG; gradient flows when grad mode is enabled.

        ``workspace`` overrides the agent's own scratch buffers for
        this walk — serving workers each pin their own workspace so
        concurrent walks over one shared agent never collide.

        ``candidates`` (a :class:`repro.cascade.WalkConstraint`)
        restricts each hop's expansion to tails that can still reach a
        candidate item in the hops that remain.  Pruned actions are
        excluded from *selection only* — the policy still normalizes
        over the full valid action set, so the log-probability of every
        kept action (and hence every candidate item's score) is
        unchanged from the unconstrained walk.
        """
        cfg = self.config
        sizes = sizes or cfg.sample_sizes
        workspace = workspace if workspace is not None else self.workspace
        batch_size = batch.batch_size
        sess_idx = np.arange(batch_size, dtype=np.int64)
        entities = self.env.start_entities(batch, cfg.start_from)
        ent_hist = entities[:, None]
        rel_hist = np.zeros((batch_size, 0), dtype=np.int64)
        prev_rel: Optional[np.ndarray] = None
        log_prob: Optional[Tensor] = None

        # Per-hop wall time lands in the owner's metric block (if any);
        # the guard keeps the no-telemetry walk free of clock reads.
        metrics = None if workspace is None else workspace.metrics
        # Per-row frontier census for sampled batches: one bincount per
        # executed hop, appended to the owner's list (None = off).
        row_frontier = getattr(workspace, "row_frontier", None)

        for hop, k in enumerate(sizes):
            if len(sess_idx) == 0:
                break
            hop_t0 = perf_counter() if metrics is not None else 0.0
            hop_allowed = (None if candidates is None
                           else candidates.hop_mask(hop, len(sizes)))
            sel_rows, sel_rels, sel_tails, logp_parts = [], [], [], []
            # Buckets are consumed one at a time so the workspace's
            # scratch buffers can be recycled between them.
            for bucket in self.env.iter_frontier_buckets(
                    ent_hist[:, -1], visited=ent_hist,
                    num_buckets=cfg.frontier_buckets,
                    workspace=workspace):
                rows_g = bucket.rows
                rels, tails, mask = bucket.rels, bucket.tails, bucket.mask
                allowed = None
                if hop_allowed is not None:
                    allowed = hop_allowed[sess_idx[rows_g][:, None], tails]
                    if metrics is not None:
                        pruned = np.count_nonzero(
                            (mask & ~allowed).any(axis=1))
                        if pruned:
                            metrics.count(
                                "cascade_pruned_frontier_rows_total",
                                pruned)
                    # Rows with no candidate-reachable action dead-end
                    # in _select anyway; dropping them *before* the
                    # policy forward skips their whole log-prob
                    # computation.  Exact: the softmax is per-row, so
                    # surviving rows score identically either way.
                    live = (mask & allowed).any(axis=1)
                    if not live.all():
                        if not live.any():
                            continue
                        rows_g = rows_g[live]
                        rels, tails, mask = (rels[live], tails[live],
                                             mask[live])
                        allowed = allowed[live]
                se_paths = session_repr[sess_idx[rows_g]]
                prev = None if prev_rel is None else prev_rel[rows_g]
                log_probs = self.policy.step(
                    se_paths, ent_hist[rows_g, -1], prev,
                    rels, tails, mask)
                rows, cols = self._select(log_probs.data, mask, k,
                                          stochastic, allowed=allowed)
                if len(rows) == 0:
                    continue
                logp_parts.append(log_probs[rows, cols])
                sel_rows.append(rows_g[rows])
                sel_rels.append(rels[rows, cols])
                sel_tails.append(tails[rows, cols])
            if not sel_rows:
                # Every surviving path dead-ended: return a rollout
                # that is empty but shape-consistent.
                sess_idx = sess_idx[:0]
                ent_hist = ent_hist[:0]
                rel_hist = rel_hist[:0]
                log_prob = None
                if row_frontier is not None:
                    row_frontier.append(
                        np.zeros(batch_size, dtype=np.int64))
                if metrics is not None:
                    metrics.observe(walk_hop_hist(hop),
                                    perf_counter() - hop_t0)
                break
            rows = np.concatenate(sel_rows)
            step_logp = (logp_parts[0] if len(logp_parts) == 1
                         else F.concat(logp_parts, axis=0))
            log_prob = (step_logp if log_prob is None
                        else log_prob[rows] + step_logp)
            sess_idx = sess_idx[rows]
            ent_hist = np.concatenate(
                [ent_hist[rows], np.concatenate(sel_tails)[:, None]], axis=1)
            rel_hist = np.concatenate(
                [rel_hist[rows], np.concatenate(sel_rels)[:, None]], axis=1)
            prev_rel = rel_hist[:, -1]
            if row_frontier is not None:
                row_frontier.append(
                    np.bincount(sess_idx, minlength=batch_size))
            if metrics is not None:
                metrics.observe(walk_hop_hist(hop),
                                perf_counter() - hop_t0)

        prob = (np.exp(log_prob.data.astype(np.float64))
                if log_prob is not None else np.zeros(len(sess_idx)))
        return Rollout(session_idx=sess_idx, entities=ent_hist,
                       relations=rel_hist, prob=prob, log_prob=log_prob)

    def _select(self, logp: np.ndarray, mask: np.ndarray, k: int,
                stochastic: bool,
                allowed: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row top-k (or Gumbel top-k) over valid actions.

        ``allowed`` (same shape as ``mask``) further restricts which
        valid actions are *selectable* — used by the cascade to skip
        tails that cannot reach a candidate.  It never feeds the
        policy, so scores of surviving actions are unaffected.

        Returns flat (row_index, col_index) arrays of the kept actions.
        """
        n, width = logp.shape
        if allowed is not None:
            mask = mask & allowed
        scores = np.where(mask, logp, NEG_INF)
        if stochastic:
            gumbel = -np.log(-np.log(
                self._rng.random(scores.shape) + 1e-12) + 1e-12)
            scores = np.where(mask, scores + gumbel, NEG_INF)
        k_eff = min(k, width)
        if k_eff >= width:
            cols = np.broadcast_to(np.arange(width), (n, width))
        else:
            cols = np.argpartition(-scores, kth=k_eff - 1, axis=1)[:, :k_eff]
        rows = np.repeat(np.arange(n), cols.shape[1])
        cols = cols.reshape(-1)
        valid = mask[rows, cols]
        return rows[valid], cols[valid]

    # ------------------------------------------------------------------
    # ŷ aggregation (Eq. 14's predicted probabilities)
    # ------------------------------------------------------------------
    def aggregate_scores(self, rollout: Rollout, batch_size: int) -> Tensor:
        """Scatter path probabilities into ``(B, n_items + 1)`` scores."""
        if rollout.log_prob is None:
            raise RuntimeError("aggregate_scores needs a grad-mode rollout")
        items = self.env.built.items_of_entities(rollout.terminals)
        probs = rollout.log_prob.exp()
        # Non-item terminals fall into column 0, which is masked out of
        # the loss and never recommended.
        return F.scatter_add(probs, (rollout.session_idx, items),
                             (batch_size, self.n_items + 1))

    def aggregate_scores_numpy(self, rollout: Rollout,
                               batch_size: int) -> np.ndarray:
        items = self.env.built.items_of_entities(rollout.terminals)
        scores = np.zeros((batch_size, self.n_items + 1), dtype=np.float64)
        np.add.at(scores, (rollout.session_idx, items), rollout.prob)
        scores[:, 0] = 0.0
        return scores

    # ------------------------------------------------------------------
    # Losses
    # ------------------------------------------------------------------
    def losses(self, batch: SessionBatch) -> Tuple[Tensor, StepStats]:
        """Forward pass producing ``L = β·Lr + Lce`` plus diagnostics."""
        cfg = self.config
        session_repr = self.encoder.encode(batch)
        rollout = self.walk(session_repr, batch,
                            stochastic=(cfg.train_selection == "sample"
                                        and self.training))
        batch_size = batch.batch_size
        if rollout.num_paths == 0:
            raise RuntimeError(
                "rollout produced no paths; the KG has isolated start "
                "entities — check co_occur/metadata edge construction")

        yhat = self.aggregate_scores(rollout, batch_size)
        yhat_np = yhat.data.copy()
        yhat_np[:, 0] = 0.0

        discounted, components = self.rewards.compute(
            rollout, batch.targets, session_repr.data, yhat_np)

        # REINFORCE with a per-session mean baseline (self-critical).
        counts = np.bincount(rollout.session_idx, minlength=batch_size)
        sums = np.bincount(rollout.session_idx, weights=discounted,
                           minlength=batch_size)
        baseline = sums / np.maximum(counts, 1)
        advantage = discounted - baseline[rollout.session_idx]

        reward_loss = -(rollout.log_prob
                        * Tensor(advantage.astype(np.float32))).sum() \
            * (1.0 / batch_size)
        if cfg.entropy_weight > 0:
            # Entropy bonus over kept actions (extension, off by default).
            reward_loss = reward_loss + (rollout.log_prob.exp()
                                         * rollout.log_prob).sum() \
                * (cfg.entropy_weight / batch_size)

        targets_dense = np.zeros((batch_size, self.n_items + 1),
                                 dtype=np.float32)
        targets_dense[np.arange(batch_size), batch.targets] = 1.0
        bce = F.binary_cross_entropy(yhat, targets_dense, reduction="none")
        col_mask = np.ones(self.n_items + 1, dtype=np.float32)
        col_mask[0] = 0.0
        ce_loss = (bce * Tensor(col_mask)).sum() * (1.0 / batch_size)

        if cfg.loss_mode == "reward_only":
            loss = reward_loss * cfg.beta
        elif cfg.loss_mode == "ce_only":
            loss = ce_loss
        else:
            loss = reward_loss * cfg.beta + ce_loss

        stats = StepStats(
            loss=float(loss.item()),
            reward_loss=float(reward_loss.item()),
            ce_loss=float(ce_loss.item()),
            mean_reward=float(discounted.mean()),
            num_paths=rollout.num_paths,
            reward_components={k: float(v.mean())
                               for k, v in components.items()},
        )
        return loss, stats

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def recommend(self, batch: SessionBatch, k: int = 20,
                  sizes: Optional[Tuple[int, ...]] = None,
                  workspace: Optional[RolloutWorkspace] = None,
                  candidates: Optional["WalkConstraint"] = None
                  ) -> Recommendations:
        """Top-``k`` items plus the best explanation path per item.

        ``workspace`` pins this call's rollout scratch buffers (see
        :meth:`walk`); required when several threads share the agent.
        Note the train/eval flag is module state, not per-thread:
        serving an agent while another thread trains it is not
        supported (grad mode is thread-local, dropout mode is not).

        ``candidates`` constrains the walk (see :meth:`walk`) and
        restricts final scoring to the candidate set: non-candidate
        columns score ``-1.0``, strictly below every reachable item
        (path probabilities are non-negative), so the tie-safe top-k
        here — and any downstream per-row re-selection from
        ``Recommendations.scores`` — can never surface them.
        """
        if self.training:
            self.eval()
        cfg = self.config
        ws = workspace if workspace is not None else self.workspace
        metrics, spans = ws.metrics, ws.spans
        with no_grad():
            session_repr = self.encoder.encode(batch)
            walk_t0 = perf_counter()
            rollout = self.walk(session_repr, batch, sizes=sizes,
                                workspace=workspace, candidates=candidates)
            walk_dur = perf_counter() - walk_t0
            scores = self.aggregate_scores_numpy(rollout, batch.batch_size)
            if cfg.fallback_to_encoder:
                scores = self._encoder_fallback(scores, session_repr)
            if candidates is not None:
                scores = np.where(candidates.item_allowed, scores, -1.0)
        topk_t0 = perf_counter()
        ranked = _top_k(scores, k)
        paths = self._best_paths(rollout)
        topk_dur = perf_counter() - topk_t0
        if metrics is not None:
            metrics.observe("walk_seconds", walk_dur)
            metrics.observe("topk_seconds", topk_dur)
        if spans is not None:
            spans.append((_SPAN_WALK, walk_t0, walk_dur))
            spans.append((_SPAN_TOPK, topk_t0, topk_dur))
        return Recommendations(scores=scores, ranked_items=ranked, paths=paths)

    def _encoder_fallback(self, scores: np.ndarray,
                          session_repr: Tensor) -> np.ndarray:
        """Fill unreached items with down-scaled encoder scores.

        The floor is **per row** (each row's own smallest positive walk
        score; 1.0 for rows the walk reached nothing from), so a row's
        filled scores never depend on its batch-mates — required for
        row-level result reuse (in-flush dedup, the cross-flush walk
        memo) to be bit-exact, and sufficient for correctness: the fill
        is ``1e-6 * floor * probs`` with ``probs <= 1``, strictly below
        every genuine path score of that row.
        """
        logits = self.encoder.score_items(session_repr).data
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        positive = np.where(scores > 0, scores, np.inf)
        floor = positive.min(axis=1, keepdims=True)
        floor = np.where(np.isfinite(floor), floor, 1.0)
        unreached = scores <= 0
        out = scores.copy()
        fill = 1e-6 * floor * probs
        out[unreached] = fill[unreached]
        out[:, 0] = 0.0
        return out

    def _best_paths(self, rollout: Rollout
                    ) -> Dict[Tuple[int, int], SemanticPath]:
        items = self.env.built.items_of_entities(rollout.terminals)
        best: Dict[Tuple[int, int], int] = {}
        for p in range(rollout.num_paths):
            if items[p] == 0:
                continue
            key = (int(rollout.session_idx[p]), int(items[p]))
            if key not in best or rollout.prob[p] > rollout.prob[best[key]]:
                best[key] = p
        out: Dict[Tuple[int, int], SemanticPath] = {}
        for key, p in best.items():
            out[key] = SemanticPath(
                entities=[int(e) for e in rollout.entities[p]],
                relations=[int(r) for r in rollout.relations[p]],
                prob=float(rollout.prob[p]),
            )
        return out


def clone_agent(agent: REKSAgent) -> REKSAgent:
    """Structural copy of an agent with independent *trainable* state.

    The encoder and policy modules are deep-copied (fresh parameter
    arrays, no shared autograd state) **except the frozen TransE
    entity/relation tables**, which dominate the parameter count at
    paper dims and are never trained unless ``finetune_kg_embeddings``
    is set: their read-only payloads are aliased into the clone
    (deepcopy memo), making a clone — and therefore a serving
    hot-swap — O(trainable params) instead of O(all params).  Loading
    a checkpoint into the clone preserves the sharing via the
    copy-on-write path in ``Module.load_state_dict`` (identical frozen
    payloads are skipped; a genuinely different table would get a
    private copy, never corrupt the shared buffer).  The environment,
    reward computer, and config are shared as before.
    """
    import copy

    memo: dict = {}
    policy = agent.policy
    for emb in (policy.entity_emb, policy.relation_emb):
        weight = emb.weight
        if not weight.requires_grad and not weight.data.flags.writeable:
            memo[id(weight.data)] = weight.data  # alias, don't copy
    clone = REKSAgent(copy.deepcopy(agent.encoder),
                      copy.deepcopy(agent.policy, memo),
                      agent.env, agent.rewards, agent.config,
                      workspace=RolloutWorkspace())
    clone.eval()
    return clone


def _top_k(scores: np.ndarray, k: int) -> np.ndarray:
    k = min(k, scores.shape[1] - 1)
    part = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1)
