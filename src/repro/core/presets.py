"""Paper hyper-parameter presets (Table VII).

The paper tunes batch size, learning rate, dropout, and the loss
balance β per (model, dataset).  These presets reconstruct Table VII
verbatim so paper-scale runs start from the authors' settings; at
reduced scale the defaults in :class:`REKSConfig` are usually better.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.config import REKSConfig

# (model, dataset) -> (batch_size, lr, dropout, beta)   [Table VII]
TABLE_VII: Dict[Tuple[str, str], Tuple[int, float, float, float]] = {
    ("gru4rec", "beauty"): (256, 0.001, 0.5, 0.6),
    ("gru4rec", "cellphones"): (32, 0.0001, 0.5, 0.4),
    ("gru4rec", "baby"): (256, 0.0001, 0.7, 0.2),
    ("gru4rec", "movielens"): (128, 0.0001, 0.3, 0.2),
    ("narm", "beauty"): (256, 0.0005, 0.7, 0.2),
    ("narm", "cellphones"): (32, 0.0001, 0.7, 0.2),
    ("narm", "baby"): (256, 0.0001, 0.7, 0.2),
    ("narm", "movielens"): (32, 0.0001, 0.3, 0.2),
    ("srgnn", "beauty"): (128, 0.001, 0.5, 0.4),
    ("srgnn", "cellphones"): (256, 0.001, 0.7, 0.6),
    ("srgnn", "baby"): (256, 0.0001, 0.3, 0.2),
    ("srgnn", "movielens"): (256, 0.0001, 0.7, 0.4),
    ("gcsan", "beauty"): (256, 0.001, 0.5, 0.6),
    ("gcsan", "cellphones"): (256, 0.005, 0.5, 1.0),
    ("gcsan", "baby"): (256, 0.0005, 0.7, 0.2),
    ("gcsan", "movielens"): (256, 0.005, 0.5, 0.4),
    ("bert4rec", "beauty"): (256, 0.0001, 0.7, 0.2),
    ("bert4rec", "cellphones"): (64, 0.0001, 0.7, 0.2),
    ("bert4rec", "baby"): (256, 0.0001, 0.7, 0.2),
    ("bert4rec", "movielens"): (128, 0.001, 0.2, 0.4),
}

# Dimension d0 = d1 = d2 per dataset (§IV-A-4): 400 Amazon, 64 MovieLens.
PAPER_DIMS = {"beauty": 400, "cellphones": 400, "baby": 400,
              "movielens": 64}

# Degree-quantile frontier buckets per hop at paper scale.  The KGs'
# degree distributions are heavy-tailed, so bucketing the frontier
# stops one hub from inflating the pad width of the whole batch; the
# CSR differential suite pins correctness for any bucket count, and
# 4 buckets measured 1.8x end-to-end inference throughput over the
# single-rectangle layout on the small-scale synthetic Beauty KG
# (see CHANGES.md, PR 2).
PAPER_FRONTIER_BUCKETS = {"beauty": 4, "cellphones": 4, "baby": 4,
                          "movielens": 4}


def paper_config(model: str, dataset: str, **overrides) -> REKSConfig:
    """The paper's REKS configuration for a (model, dataset) pair.

    ``overrides`` win over the preset (e.g. pass a smaller ``dim`` to
    run the paper's lr/β/dropout at laptop scale).
    """
    key = (model.lower().replace("-", ""), dataset.lower())
    if key not in TABLE_VII:
        raise KeyError(
            f"no Table VII preset for {key}; models="
            f"{sorted({m for m, _ in TABLE_VII})}, datasets="
            f"{sorted({d for _, d in TABLE_VII})}")
    batch_size, lr, dropout, beta = TABLE_VII[key]
    dim = PAPER_DIMS[key[1]]
    settings = {
        "dim": dim, "state_dim": dim,
        "batch_size": batch_size, "lr": lr, "dropout": dropout,
        "beta": beta,
        # Fixed across Table VII: path length 2, sizes {100, 1}, γ=0.99.
        "path_length": 2, "sample_sizes": (100, 1), "gamma": 0.99,
        "frontier_buckets": PAPER_FRONTIER_BUCKETS[key[1]],
    }
    settings.update(overrides)
    return REKSConfig(**settings)
