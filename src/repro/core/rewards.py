"""The composite REKS reward (Eq. 5-9) and its ablation variants.

``R = w_item · R_item + w_rank · R_rank + w_path · R_path`` with paper
weights (1, 2, 1):

* ``R_item`` (Eq. 6): 1 when the path terminates at the target item,
  the sigmoid embedding similarity to the target when it terminates at
  some *other* product, 0 otherwise;
* ``R_rank`` (Eq. 7): ``1 / log2(rank + 2)`` of the terminal item in
  the aggregated top-K prediction list (0 for non-product terminals or
  ranks beyond K) — pushes the target toward the top of the ranking;
* ``R_path`` (Eq. 8-9): ``σ(Pᵀ · Se)`` where ``P`` is the mean of all
  entity/relation embeddings on the path — favors session-relevant,
  explainable paths.

Modes (Fig. 5): ``full`` = all three; ``no_rank`` (paper "REKS-rank")
drops the rank term; ``item_only`` ("REKS-path") keeps only R_item;
``r1`` ("REKS R1") is the bare 0/1 terminal reward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.environment import Rollout
from repro.kg.builder import BuiltKG


@dataclass
class RewardWeights:
    """Component weights of Eq. 5."""

    item: float = 1.0
    rank: float = 2.0
    path: float = 1.0


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class RewardComputer:
    """Computes per-path rewards for a rollout (pure numpy, no grad)."""

    def __init__(self, built: BuiltKG, entity_table: np.ndarray,
                 relation_table: np.ndarray,
                 weights: RewardWeights = None, mode: str = "full",
                 gamma: float = 0.99, rank_k: int = 20) -> None:
        self.built = built
        self.entity_table = entity_table
        self.relation_table = relation_table
        self.weights = weights or RewardWeights()
        self.mode = mode
        self.gamma = gamma
        self.rank_k = rank_k
        start, count = built.kg.type_range(self._item_type())
        self._item_lo, self._item_hi = start, start + count

    def _item_type(self) -> str:
        return "product" if "product" in self.built.kg.entity_type_names else "movie"

    # ------------------------------------------------------------------
    def compute(self, rollout: Rollout, target_items: np.ndarray,
                session_repr: np.ndarray, yhat: np.ndarray
                ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Total discounted terminal reward per path.

        Parameters
        ----------
        rollout:
            The finished batch rollout.
        target_items:
            ``(B,)`` ground-truth next item per session.
        session_repr:
            ``(B, dim)`` numpy copy of ``Se`` (for the path reward).
        yhat:
            ``(B, n_items + 1)`` aggregated path scores (for the rank
            reward) — column 0 is padding.

        Returns
        -------
        (discounted, components):
            ``discounted`` is ``γ^(T-1) · R`` per path; ``components``
            has the raw item/rank/path arrays for diagnostics.
        """
        sess = rollout.session_idx
        terminals = rollout.terminals
        target_entities = self.built.entities_of_items(target_items)[sess]

        is_item = (terminals >= self._item_lo) & (terminals < self._item_hi)
        exact = terminals == target_entities

        r_item = self._item_reward(terminals, target_entities, is_item, exact)
        if self.mode == "r1":
            total = exact.astype(np.float64)
            components = {"item": total, "rank": np.zeros_like(total),
                          "path": np.zeros_like(total)}
        else:
            r_rank = np.zeros(len(terminals))
            r_path = np.zeros(len(terminals))
            w = self.weights
            total = w.item * r_item
            if self.mode in ("full", "no_rank"):
                r_path = self._path_reward(rollout, session_repr)
                total = total + w.path * r_path
            if self.mode == "full":
                r_rank = self._rank_reward(rollout, yhat, is_item)
                total = total + w.rank * r_rank
            components = {"item": r_item, "rank": r_rank, "path": r_path}
        hops = rollout.entities.shape[1] - 1
        discounted = (self.gamma ** max(hops - 1, 0)) * total
        return discounted, components

    # ------------------------------------------------------------------
    def _item_reward(self, terminals: np.ndarray, targets: np.ndarray,
                     is_item: np.ndarray, exact: np.ndarray) -> np.ndarray:
        reward = np.zeros(len(terminals))
        reward[exact] = 1.0
        near = is_item & ~exact
        if near.any():
            sim = (self.entity_table[terminals[near]]
                   * self.entity_table[targets[near]]).sum(axis=1)
            reward[near] = _sigmoid(sim)
        return reward

    def _rank_reward(self, rollout: Rollout, yhat: np.ndarray,
                     is_item: np.ndarray) -> np.ndarray:
        """``1/log2(rank+2)`` of the terminal item within the top-K."""
        reward = np.zeros(rollout.num_paths)
        if not is_item.any():
            return reward
        # Per-session dense ranks of every item by aggregated score.
        order = np.argsort(-yhat, axis=1, kind="stable")
        ranks = np.empty_like(order)
        cols = np.arange(yhat.shape[1])
        for row in range(yhat.shape[0]):
            ranks[row, order[row]] = cols
        items = self.built.items_of_entities(rollout.terminals[is_item])
        path_rank = ranks[rollout.session_idx[is_item], items]
        in_top = path_rank < self.rank_k
        value = np.zeros(len(items))
        value[in_top] = 1.0 / np.log2(path_rank[in_top] + 2.0)
        reward[is_item] = value
        return reward

    def _path_reward(self, rollout: Rollout,
                     session_repr: np.ndarray) -> np.ndarray:
        """``σ(Pᵀ Se)`` with P the mean path-element embedding (Eq. 9)."""
        ent = self.entity_table[rollout.entities]      # (P, L+1, d)
        rel = self.relation_table[rollout.relations]   # (P, L, d)
        total = ent.sum(axis=1) + rel.sum(axis=1)
        count = rollout.entities.shape[1] + rollout.relations.shape[1]
        mean_emb = total / count
        se = session_repr[rollout.session_idx]
        return _sigmoid((mean_emb * se).sum(axis=1))
