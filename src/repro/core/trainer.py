"""End-to-end REKS training (Algorithm 1) and evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Adam, clip_grad_norm
from repro.core.agent import REKSAgent, Recommendations
from repro.core.config import REKSConfig
from repro.core.environment import KGEnvironment, RolloutWorkspace
from repro.core.policy import PolicyNetwork
from repro.core.rewards import RewardComputer, RewardWeights
from repro.data.loader import SessionBatch, SessionBatcher
from repro.data.schema import Session, SessionDataset
from repro.eval.metrics import evaluate_rankings
from repro.kg.builder import BuiltKG
from repro.kg.transe import TransE, TransEConfig
from repro.models.registry import create_encoder


@dataclass
class REKSHistory:
    """Per-epoch training diagnostics."""

    losses: List[float] = field(default_factory=list)
    reward_losses: List[float] = field(default_factory=list)
    ce_losses: List[float] = field(default_factory=list)
    mean_rewards: List[float] = field(default_factory=list)
    val_metrics: List[Dict[str, float]] = field(default_factory=list)
    best_epoch: int = -1


class REKSTrainer:
    """Builds and trains the full REKS stack for one dataset + encoder.

    Parameters
    ----------
    dataset:
        The session dataset (synthetic Amazon or MovieLens).
    built:
        The finalized knowledge graph bundle from :func:`build_kg`.
    model_name:
        One of gru4rec / narm / srgnn / gcsan / bert4rec — the
        non-explainable model REKS wraps.
    transe:
        Optional pre-trained TransE (reused across trainers for speed);
        trained from scratch when omitted.
    """

    def __init__(self, dataset: SessionDataset, built: BuiltKG,
                 model_name: str = "narm",
                 config: Optional[REKSConfig] = None,
                 transe: Optional[TransE] = None) -> None:
        self.dataset = dataset
        self.built = built
        self.config = config or REKSConfig()
        cfg = self.config
        self.model_name = model_name
        rng = np.random.default_rng(cfg.seed)

        if transe is None:
            transe = TransE(built.kg.num_entities, built.kg.num_relations,
                            TransEConfig(dim=cfg.dim, lr=cfg.transe_lr,
                                         margin=cfg.transe_margin,
                                         epochs=cfg.transe_epochs,
                                         seed=cfg.seed + 7))
            transe.fit(built.kg)
        self.transe = transe
        entity_table, relation_table = transe.embedding_tables()
        item_init = transe.item_embeddings(built.item_entity)

        self.encoder = create_encoder(
            model_name, n_items=dataset.n_items, dim=cfg.dim,
            item_init=item_init, rng=rng, dropout=cfg.dropout)
        self.policy = PolicyNetwork(
            session_dim=cfg.dim, kg_dim=cfg.dim, state_dim=cfg.state_dim,
            entity_table=entity_table, relation_table=relation_table,
            dropout=cfg.dropout, finetune=cfg.finetune_kg_embeddings,
            rng=rng)
        self.env = KGEnvironment(built, action_cap=cfg.action_cap,
                                 seed=cfg.seed + 3,
                                 shards=cfg.graph_shards or None)
        # One workspace for the trainer's whole lifetime: the rollout
        # scratch buffers are sized once at the first batch and then
        # recycled across every train/eval walk.
        self.workspace = RolloutWorkspace()
        weights = RewardWeights(*cfg.reward_weights)
        self.rewards = RewardComputer(
            built, entity_table, relation_table, weights=weights,
            mode=cfg.reward_mode, gamma=cfg.gamma, rank_k=cfg.rank_k)
        self.agent = REKSAgent(self.encoder, self.policy, self.env,
                               self.rewards, cfg, workspace=self.workspace)
        self.optimizer = Adam(self.agent.parameters(), lr=cfg.lr,
                              weight_decay=cfg.weight_decay)
        self.history = REKSHistory()

    # ------------------------------------------------------------------
    def fit(self, train_sessions: Optional[Sequence[Session]] = None,
            val_sessions: Optional[Sequence[Session]] = None,
            verbose: bool = False) -> REKSHistory:
        cfg = self.config
        train_sessions = (self.dataset.split.train if train_sessions is None
                          else train_sessions)
        val_sessions = (self.dataset.split.validation if val_sessions is None
                        else val_sessions)
        batcher = SessionBatcher(
            train_sessions, batch_size=cfg.batch_size,
            max_length=cfg.max_session_length,
            augment=cfg.augment_sessions, shuffle=True,
            rng=np.random.default_rng(cfg.seed + 11))

        best_score, best_state, bad = -np.inf, None, 0
        for epoch in range(cfg.epochs):
            self.agent.train()
            sums = {"loss": 0.0, "reward_loss": 0.0, "ce_loss": 0.0,
                    "mean_reward": 0.0}
            batches = 0
            for batch in batcher:
                self.optimizer.zero_grad()
                loss, stats = self.agent.losses(batch)
                loss.backward()
                clip_grad_norm(self.agent.parameters(), cfg.max_grad_norm)
                self.optimizer.step()
                sums["loss"] += stats.loss
                sums["reward_loss"] += stats.reward_loss
                sums["ce_loss"] += stats.ce_loss
                sums["mean_reward"] += stats.mean_reward
                batches += 1
            for key in sums:
                sums[key] /= max(1, batches)
            self.history.losses.append(sums["loss"])
            self.history.reward_losses.append(sums["reward_loss"])
            self.history.ce_losses.append(sums["ce_loss"])
            self.history.mean_rewards.append(sums["mean_reward"])

            metrics = self.evaluate(val_sessions, ks=(10,))
            self.history.val_metrics.append(metrics)
            score = metrics["HR@10"]
            if verbose:
                print(f"[REKS_{self.model_name}] epoch {epoch + 1}: "
                      f"loss={sums['loss']:.4f} "
                      f"reward={sums['mean_reward']:.3f} "
                      f"val HR@10={score:.2f}")
            if score > best_score:
                best_score, best_state, bad = score, self.agent.state_dict(), 0
                self.history.best_epoch = epoch
            else:
                bad += 1
                if bad > cfg.patience:
                    break
        if best_state is not None:
            self.agent.load_state_dict(best_state)
        return self.history

    # ------------------------------------------------------------------
    def finetune(self, sessions: Sequence[Session],
                 max_steps: Optional[int] = None,
                 shuffle: bool = True) -> Dict[str, float]:
        """One incremental pass over a session delta (continual learning).

        Runs up to ``max_steps`` ordinary training steps — the same
        losses/clip/optimizer sequence as :meth:`fit` — over just the
        given sessions, without augmentation (an online delta is small
        and fresh; prefix expansion would overweight it) and without
        touching the early-stopping state.  Returns the step-averaged
        diagnostics.  Used by :class:`repro.online.OnlineUpdater`
        between checkpoint publishes.
        """
        cfg = self.config
        batcher = SessionBatcher(
            sessions, batch_size=cfg.batch_size,
            max_length=cfg.max_session_length, augment=False,
            shuffle=shuffle, rng=np.random.default_rng(cfg.seed + 23))
        self.agent.train()
        sums = {"loss": 0.0, "reward_loss": 0.0, "ce_loss": 0.0,
                "mean_reward": 0.0}
        steps = 0
        for batch in batcher:
            if max_steps is not None and steps >= max_steps:
                break
            self.optimizer.zero_grad()
            loss, stats = self.agent.losses(batch)
            loss.backward()
            clip_grad_norm(self.agent.parameters(), cfg.max_grad_norm)
            self.optimizer.step()
            sums["loss"] += stats.loss
            sums["reward_loss"] += stats.reward_loss
            sums["ce_loss"] += stats.ce_loss
            sums["mean_reward"] += stats.mean_reward
            steps += 1
        self.agent.eval()
        for key in sums:
            sums[key] /= max(1, steps)
        sums["steps"] = float(steps)
        return sums

    # ------------------------------------------------------------------
    def recommend_sessions(self, sessions: Sequence[Session], k: int = 20,
                           batch_size: int = 256) -> List[Recommendations]:
        """Batch inference over a session list."""
        sessions = list(sessions)
        if not sessions:
            # Match evaluate's empty-input guard instead of building a
            # degenerate zero-example SessionBatcher.
            return []
        batcher = SessionBatcher(sessions, batch_size=batch_size,
                                 max_length=self.config.max_session_length,
                                 augment=False, shuffle=False)
        return [self.agent.recommend(batch, k=k) for batch in batcher]

    def serve(self, **overrides):
        """A request-coalescing :class:`RecommendationServer` over this
        trainer's agent.

        Server knobs default to the ``serve_*`` fields of the config;
        keyword ``overrides`` (``max_batch``, ``max_wait_ms``,
        ``workers``, ``cache_size``, ``default_k``) win.  The caller
        owns shutdown — use it as a context manager.
        """
        from repro.serving import RecommendationServer

        return RecommendationServer.from_trainer(self, **overrides)

    def evaluate_prefixes(self, sessions: Sequence[Session],
                          ks=(5, 10, 20)) -> Dict[str, float]:
        """Prefix-augmented evaluation (extension protocol).

        Every session of length L contributes L-1 prediction points
        (items[:1]->items[1], ...), the stricter protocol some SR papers
        report alongside last-item evaluation.
        """
        expanded: List[Session] = []
        for session in sessions:
            for cut in range(1, len(session.items)):
                expanded.append(Session(session.items[:cut + 1],
                                        session.user_id, session.day))
        return self.evaluate(expanded, ks=ks)

    def evaluate(self, sessions: Sequence[Session],
                 ks=(5, 10, 20), server=None) -> Dict[str, float]:
        """HR/NDCG/MRR over path-based rankings (in percent).

        With ``server`` (a :class:`repro.serving.RecommendationServer`
        wrapping this trainer's agent) rankings are produced through
        its coalescing ``recommend_many`` path instead of the local
        synchronous batcher; results are identical by the serving
        determinism contract.

        Sessions with fewer than 2 items carry no (prefix, target)
        example and are dropped from both rankings and targets — the
        batcher already skipped them, so counting their targets would
        misalign every following row.
        """
        sessions = [s for s in sessions if len(s.items) >= 2]
        if not sessions:
            return {f"{m}@{k}": 0.0 for k in ks for m in ("HR", "NDCG", "MRR")}
        max_k = max(ks)
        ranked: List[np.ndarray] = []
        if server is not None:
            for result in server.recommend_many(sessions, k=max_k):
                ranked.append(np.asarray(result.items, dtype=np.int64))
        else:
            for rec in self.recommend_sessions(sessions, k=max_k):
                ranked.extend(rec.ranked_items)
        targets = [s.target for s in sessions]
        return evaluate_rankings(ranked, targets, ks=ks)

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint the full agent (encoder + policy) to ``.npz``."""
        from repro.io import save_module

        save_module(path, self.agent, model=self.model_name,
                    dataset=self.dataset.name, dim=self.config.dim)

    def load(self, path) -> None:
        """Restore a checkpoint written by :meth:`save`.

        The header must match this trainer's model name, dataset, and
        dimension — loading a mismatched checkpoint raises ValueError.
        """
        from repro.io import load_module

        load_module(path, self.agent, model=self.model_name,
                    dataset=self.dataset.name, dim=self.config.dim)
