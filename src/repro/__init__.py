"""REKS reproduction: reinforced explainable session-based recommendation.

Reproduces Wu et al., *A Generic Reinforced Explainable Framework with
Knowledge Graph for Session-based Recommendation* (ICDE 2023) as a
self-contained Python library: synthetic Amazon/MovieLens datasets, a
knowledge-graph substrate with TransE, five session recommenders built
on a numpy autograd engine, and the REKS RL framework that makes any of
them explainable.

Quickstart::

    from repro import (AmazonLikeGenerator, build_kg, REKSConfig,
                       REKSTrainer, Explainer)

    dataset = AmazonLikeGenerator("beauty", scale="tiny").generate()
    built = build_kg(dataset)
    trainer = REKSTrainer(dataset, built, model_name="narm",
                          config=REKSConfig(dim=32, epochs=3))
    trainer.fit()
    print(trainer.evaluate(dataset.split.test))
    case = Explainer(trainer).explain_sessions(dataset.split.test[:1])[0]
"""

from repro.core import (
    Explainer,
    Explanation,
    KGEnvironment,
    PolicyNetwork,
    RecommendedItem,
    REKSAgent,
    REKSConfig,
    REKSTrainer,
    RewardComputer,
    RewardWeights,
    RolloutWorkspace,
)
from repro.data import (
    AmazonLikeGenerator,
    MovieLensLikeGenerator,
    SessionBatcher,
)
from repro.kg import KnowledgeGraph, SemanticPath, TransE, TransEConfig, build_kg
from repro.models import (
    MODEL_NAMES,
    StandaloneConfig,
    StandaloneTrainer,
    create_encoder,
)
from repro.online import CheckpointRegistry, DeltaIngestor, OnlineUpdater
from repro.runtime import FileLease, ProcessWorkerPool, TablePlane
from repro.serving import RecommendationServer, ServedResult

__version__ = "1.0.0"

__all__ = [
    "AmazonLikeGenerator",
    "MovieLensLikeGenerator",
    "SessionBatcher",
    "KnowledgeGraph",
    "SemanticPath",
    "TransE",
    "TransEConfig",
    "build_kg",
    "MODEL_NAMES",
    "create_encoder",
    "StandaloneConfig",
    "StandaloneTrainer",
    "REKSConfig",
    "REKSTrainer",
    "REKSAgent",
    "RewardComputer",
    "RewardWeights",
    "PolicyNetwork",
    "KGEnvironment",
    "RolloutWorkspace",
    "Explainer",
    "Explanation",
    "RecommendedItem",
    "RecommendationServer",
    "ServedResult",
    "CheckpointRegistry",
    "DeltaIngestor",
    "OnlineUpdater",
    "TablePlane",
    "ProcessWorkerPool",
    "FileLease",
    "__version__",
]
