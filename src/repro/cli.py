"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands cover the release workflow end to end:

* ``stats``       — dataset/KG statistics (Tables II-VI flavor)
* ``baseline``    — train + evaluate a standalone SR model
* ``reks``        — train + evaluate a REKS-wrapped model
* ``explain``     — print explanation cards for test sessions
* ``compare``     — baseline vs REKS side by side
* ``serve-bench`` — load-test the request-coalescing serving layer
* ``ingest``      — demo the streaming ingest -> fine-tune -> publish loop
* ``online-bench``— measure the continual-learning lifecycle (hot swap)
* ``runtime-bench``— thread-vs-process serving + fine-tune isolation
* ``metrics``     — emit the merged fleet metrics snapshot
* ``top``         — live terminal fleet view (poll /metrics.json)
* ``trace-soak``  — soak the tracer -> streaming-sink handoff

Example::

    python -m repro.cli reks --dataset beauty --model narm \
        --scale tiny --epochs 4 --dim 32
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from repro import (
    Explainer,
    REKSConfig,
    REKSTrainer,
    StandaloneConfig,
    StandaloneTrainer,
    build_kg,
    create_encoder,
)
from repro.data import AmazonLikeGenerator, MovieLensLikeGenerator
from repro.data.stats import (
    dataset_statistics,
    entity_statistics,
    format_table,
    relation_statistics,
)
from repro.kg import TransE, TransEConfig
from repro.utils import default_bench_path

DATASETS = ("beauty", "cellphones", "baby", "movielens")
MODELS = ("gru4rec", "narm", "srgnn", "gcsan", "bert4rec")


def _emit_metrics_artifact(snapshot_dict: dict, out_path, name: str):
    """Write a fleet metrics snapshot next to a BENCH_*.json artifact."""
    import json
    from pathlib import Path

    path = Path(out_path).parent / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot_dict, indent=2, sort_keys=True))
    return path


def _print_slo(telemetry: dict) -> bool:
    """Print each SLO verdict; returns True when every gate passed."""
    for result in telemetry.get("slo", ()):
        bound = []
        if result.get("min") is not None:
            bound.append(f">= {result['min']:g}")
        if result.get("max") is not None:
            bound.append(f"<= {result['max']:g}")
        verdict = "ok" if result["ok"] else "VIOLATED"
        print(f"  SLO {result['name']}: {result['stat']}"
              f"({result['metric']}) = {result['value']:.6g} "
              f"(want {' and '.join(bound) or 'anything'}) [{verdict}]")
    return bool(telemetry.get("slo_ok", True))


def make_dataset(name: str, scale: str, seed: int):
    """Generate the requested synthetic dataset."""
    if name == "movielens":
        return MovieLensLikeGenerator(scale=scale, seed=seed).generate()
    return AmazonLikeGenerator(name, scale=scale, seed=seed).generate()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASETS, default="beauty")
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium", "paper"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=1e-3)


def cmd_stats(args) -> int:
    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset)
    print(format_table(
        sorted(relation_statistics(built.kg).items()),
        headers=["relation", "#edges"]))
    print()
    print(format_table(
        sorted(entity_statistics(built.kg).items()),
        headers=["entity type", "#entities"]))
    print()
    stats = dataset_statistics(dataset, built.kg)
    print(format_table(sorted(stats.items()), headers=["field", "value"]))
    return 0


def cmd_baseline(args) -> int:
    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset)
    transe = TransE(built.kg.num_entities, built.kg.num_relations,
                    TransEConfig(dim=args.dim, epochs=8, seed=13))
    transe.fit(built.kg)
    encoder = create_encoder(
        args.model, n_items=dataset.n_items, dim=args.dim,
        item_init=transe.item_embeddings(built.item_entity),
        rng=np.random.default_rng(args.seed))
    trainer = StandaloneTrainer(
        encoder, dataset.split.train, dataset.split.validation,
        StandaloneConfig(epochs=args.epochs, lr=args.lr,
                         batch_size=args.batch_size, seed=args.seed))
    trainer.fit(verbose=True)
    _print_metrics(f"{args.model} (standalone)",
                   trainer.evaluate(dataset.split.test))
    return 0


def _reks_trainer(args) -> REKSTrainer:
    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset, include_users=not args.no_users)
    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, beta=args.beta,
                        sample_sizes=(100, args.final_beam),
                        frontier_buckets=args.frontier_buckets,
                        seed=args.seed)
    trainer = REKSTrainer(dataset, built, model_name=args.model,
                          config=config)
    trainer.fit(verbose=True)
    return trainer


def cmd_reks(args) -> int:
    trainer = _reks_trainer(args)
    _print_metrics(f"REKS_{args.model}",
                   trainer.evaluate(trainer.dataset.split.test))
    return 0


def cmd_explain(args) -> int:
    trainer = _reks_trainer(args)
    explainer = Explainer(trainer)
    cases = explainer.explain_sessions(
        trainer.dataset.split.test[:args.cases], k=args.top_k)
    for case in cases:
        print()
        print(explainer.render_case(case))
    return 0


def cmd_compare(args) -> int:
    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset)
    transe = TransE(built.kg.num_entities, built.kg.num_relations,
                    TransEConfig(dim=args.dim, epochs=8, seed=13))
    transe.fit(built.kg)

    encoder = create_encoder(
        args.model, n_items=dataset.n_items, dim=args.dim,
        item_init=transe.item_embeddings(built.item_entity),
        rng=np.random.default_rng(args.seed))
    baseline = StandaloneTrainer(
        encoder, dataset.split.train, dataset.split.validation,
        StandaloneConfig(epochs=args.epochs, lr=2e-3,
                         batch_size=args.batch_size, seed=args.seed))
    baseline.fit()
    base_metrics = baseline.evaluate(dataset.split.test)

    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, beta=args.beta,
                        sample_sizes=(100, args.final_beam),
                        seed=args.seed)
    reks = REKSTrainer(dataset, built, model_name=args.model,
                       config=config, transe=transe)
    reks.fit()
    reks_metrics = reks.evaluate(dataset.split.test)

    rows = [[metric, f"{base_metrics[metric]:.2f}",
             f"{reks_metrics[metric]:.2f}"]
            for metric in ("HR@5", "HR@10", "HR@20",
                           "NDCG@5", "NDCG@10", "NDCG@20")]
    print(format_table(rows, headers=["metric", args.model,
                                      f"REKS_{args.model}"]))
    return 0


def cmd_serve_bench(args) -> int:
    """Closed-loop load generation over a dataset's test sessions.

    Builds an (untrained unless ``--epochs > 0``-and-``--fit``) REKS
    stack, verifies the coalescing determinism contract, then measures
    naive vs coalesced vs cache-warm throughput and emits
    ``BENCH_serving.json``.
    """
    from repro.serving.bench import (
        check_determinism,
        emit,
        format_report,
        run_serving_bench,
    )

    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset, include_users=not args.no_users)
    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, sample_sizes=(100, args.final_beam),
                        transe_epochs=2 if args.quick else 10,
                        serve_max_batch=args.max_batch,
                        serve_max_wait_ms=args.max_wait_ms,
                        serve_workers=args.workers,
                        serve_worker_mode=args.worker_mode,
                        serve_transport=args.transport,
                        seed=args.seed)
    trainer = REKSTrainer(dataset, built, model_name=args.model,
                          config=config)
    if args.fit:
        trainer.fit(verbose=True)

    sessions = [s for s in dataset.split.test if len(s.items) >= 2]
    if args.quick:
        sessions = sessions[:256]
    if not check_determinism(trainer, sessions[:64], k=args.top_k):
        print("FAIL: coalesced results diverge from recommend_sessions")
        return 1
    print("determinism: coalesced == recommend_sessions")
    payload = run_serving_bench(
        trainer, sessions, concurrency=args.concurrency, k=args.top_k,
        min_requests=(384 if args.quick else 1024),
        naive_sessions=(64 if args.quick else None),
        trace_sample=args.trace_sample,
        slo={"slo_p99_ms": args.slo_p99_ms,
             "slo_cache_hit_floor": args.slo_cache_hit_floor,
             "slo_ring_fallback_ceiling": args.slo_ring_fallback_ceiling},
        hot_replay=({"requests": 256 if args.quick else 768,
                     "slo_p99_ms": args.slo_p99_ms,
                     "slo_memo_hit_floor": args.slo_memo_hit_floor}
                    if args.hot_replay else None))
    path = emit(payload, args.out)
    print(format_report(payload))
    print(f"-> {path}")
    metrics_path = _emit_metrics_artifact(
        payload["telemetry"]["snapshot"], args.out, "METRICS_serving.json")
    print(f"-> {metrics_path}")
    slo_ok = _print_slo(payload["telemetry"])
    if payload["speedup_vs_naive"] < args.speedup_floor:
        print(f"FAIL: speedup {payload['speedup_vs_naive']:.2f}x < "
              f"floor {args.speedup_floor:.1f}x")
        return 1
    if not payload["telemetry"]["prometheus_scraped"]:
        print("FAIL: /metrics endpoint scrape did not return "
              "Prometheus text")
        return 1
    if not slo_ok:
        print("FAIL: serving SLO violated (see gates above)")
        return 1
    replay = payload.get("hot_replay")
    if replay is not None:
        if not replay["bit_identical"]:
            print("FAIL: hot-replay results diverge between shared-"
                  "computation on and off")
            return 1
        if not replay["slo_ok"]:
            failed = [r["name"] for r in replay["slo"] if not r["ok"]]
            print(f"FAIL: hot-replay SLO violated: {failed}")
            return 1
    win = payload["telemetry"].get("window") or {}
    if win.get("available"):
        print(f"  windowed burn max {win['burn_max']:.3g} over "
              f"{win['seconds']:.2f}s "
              f"[{'ok' if win['slo_ok'] else 'VIOLATED'}]")
        if args.slo_burn_ceiling and \
                win["burn_max"] > args.slo_burn_ceiling:
            print(f"FAIL: windowed SLO burn rate {win['burn_max']:.3g} "
                  f"> ceiling {args.slo_burn_ceiling:g}")
            return 1
    elif args.slo_burn_ceiling:
        print("FAIL: --slo-burn-ceiling set but no rolling window was "
              "recorded (metrics plane off?)")
        return 1
    return 0


def cmd_ingest(args) -> int:
    """Replay held-out sessions as a live stream through the
    continual-learning loop: ingest in chunks, fine-tune + publish a
    checkpoint per round, and report what each round did.
    """
    from repro.online import CheckpointRegistry, DeltaIngestor, OnlineUpdater

    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset, include_users=not args.no_users)
    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, sample_sizes=(100, args.final_beam),
                        transe_epochs=2,
                        online_max_steps=args.max_steps,
                        online_compact_every=args.compact_every,
                        seed=args.seed)
    trainer = REKSTrainer(dataset, built, model_name=args.model,
                          config=config)
    if args.fit:
        trainer.fit(verbose=True)

    registry = CheckpointRegistry(args.checkpoints,
                                  keep_last=config.online_keep_checkpoints)
    ingestor = DeltaIngestor(built, trainer.env,
                             compact_every=args.compact_every)
    updater = OnlineUpdater(trainer, ingestor, registry,
                            min_sessions=1, max_steps=args.max_steps)
    base = updater.run_once(force=True)
    print(f"published warm-start checkpoint v{base} "
          f"(kg fingerprint {trainer.env.fingerprint()})")

    stream = [s for s in dataset.split.validation if len(s.items) >= 2]
    rows = []
    for round_id in range(args.rounds):
        chunk = stream[round_id * args.chunk:(round_id + 1) * args.chunk]
        if not chunk:
            break
        staged = ingestor.ingest_sessions(chunk)
        version = updater.run_once(force=True)
        meta = registry.manifest(version)["meta"]
        rows.append([round_id + 1, len(chunk), staged,
                     trainer.env.compactions, f"v{version}",
                     f"{meta['loss']:.4f}" if meta["loss"] else "-"])
    print(format_table(rows, headers=["round", "sessions", "new edges",
                                      "compactions", "published",
                                      "loss"]))
    print(f"registry: {registry!r}")
    metrics = trainer.evaluate(dataset.split.test, ks=(10,))
    print(f"post-ingest test HR@10: {metrics['HR@10']:.2f}")
    return 0


def cmd_online_bench(args) -> int:
    """Measure the full continual-learning lifecycle and emit
    ``BENCH_online.json`` (ingest throughput, swap latency, post-swap
    p95 vs cold restart, per-version cache split).
    """
    from repro.online.bench import emit, format_report, run_online_bench

    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset, include_users=not args.no_users)
    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, sample_sizes=(100, args.final_beam),
                        transe_epochs=2 if args.quick else 10,
                        online_max_steps=4,
                        online_updater_mode=args.updater_mode,
                        serve_workers=args.workers,
                        seed=args.seed)
    trainer = REKSTrainer(dataset, built, model_name=args.model,
                          config=config)
    if args.fit:
        trainer.fit(verbose=True)

    serving = [s for s in dataset.split.test if len(s.items) >= 2]
    delta = [s for s in dataset.split.validation if len(s.items) >= 2]
    if args.quick:
        serving, delta = serving[:128], delta[:64]
    import tempfile

    with tempfile.TemporaryDirectory(prefix="reks-online-") as tmp:
        payload = run_online_bench(
            trainer, serving, delta,
            checkpoint_dir=(args.checkpoints or tmp),
            concurrency=args.concurrency, k=args.top_k,
            min_requests=(256 if args.quick else 768),
            slo={"swap_max_ms": args.slo_swap_max_ms})
    path = emit(payload, args.out)
    print(format_report(payload))
    print(f"-> {path}")
    metrics_path = _emit_metrics_artifact(
        payload["telemetry"]["snapshot"], args.out, "METRICS_online.json")
    print(f"-> {metrics_path}")
    slo_ok = _print_slo(payload["telemetry"])
    if not slo_ok:
        print("FAIL: online SLO violated (see gates above)")
        return 1
    if payload["swap"]["dropped"]:
        print(f"FAIL: {payload['swap']['dropped']} requests dropped "
              f"during hot swap")
        return 1
    if not payload["determinism_bit_identical"]:
        print("FAIL: post-swap rankings diverge from a fresh server")
        return 1
    if payload["swap"]["cache_flushed"]:
        print("FAIL: hot swap flushed the explanation cache")
        return 1
    return 0


def cmd_runtime_bench(args) -> int:
    """Measure the multiprocess execution plane and emit
    ``BENCH_runtime.json``: thread-vs-process serving throughput with
    a bit-identity gate, and serving p95 during a concurrent
    fine-tune round (inline thread vs isolated subprocess).
    """
    import tempfile

    from repro.runtime.bench import (
        emit,
        format_report,
        run_runtime_bench,
    )

    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset, include_users=not args.no_users)
    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, sample_sizes=(100, args.final_beam),
                        transe_epochs=2 if args.quick else 10,
                        # Long enough rounds that the concurrent-round
                        # p95 window measures contention, not scheduler
                        # noise around a sub-second blip.
                        online_max_steps=16,
                        seed=args.seed)
    trainer = REKSTrainer(dataset, built, model_name=args.model,
                          config=config)
    if args.fit:
        trainer.fit(verbose=True)

    serving = [s for s in dataset.split.test if len(s.items) >= 2]
    delta = [s for s in dataset.split.validation if len(s.items) >= 2]
    if args.quick:
        serving, delta = serving[:128], delta[:64]
    # Thread/process equivalence is checked inside run_runtime_bench
    # (payload["serve"]["bit_identical"]) and gated below.
    with tempfile.TemporaryDirectory(prefix="reks-runtime-") as tmp:
        payload = run_runtime_bench(
            trainer, serving, delta,
            checkpoint_dir=(args.checkpoints or tmp),
            workers=args.workers, concurrency=args.concurrency,
            k=args.top_k,
            min_requests=(256 if args.quick else 768))
    path = emit(payload, args.out)
    print(format_report(payload))
    print(f"-> {path}")
    if payload["telemetry"]["snapshot"] is not None:
        metrics_path = _emit_metrics_artifact(
            payload["telemetry"]["snapshot"], args.out,
            "METRICS_runtime.json")
        print(f"-> {metrics_path}")
    if not payload["serve"]["bit_identical"]:
        print("FAIL: thread/process rankings diverged during the run")
        return 1
    if not payload["serve"]["transport_bit_identical"]:
        print("FAIL: pipe/ring rankings diverged during the run")
        return 1
    if not payload["serve"]["transport_bit_identical_traced"]:
        print("FAIL: pipe/ring rankings diverged with tracing at "
              "sample=1.0")
        return 1
    if not payload["gather"]["identical"]:
        print("FAIL: shard-major grouped gather diverged from the "
              "per-shard reference")
        return 1
    overhead = payload["telemetry"]["ring_per_batch_vs_thread"]
    if args.telemetry_overhead_ceiling and \
            overhead > args.telemetry_overhead_ceiling:
        print(f"FAIL: ring per-batch with telemetry {overhead:.2f}x "
              f"thread mode > ceiling "
              f"{args.telemetry_overhead_ceiling:.2f}x")
        return 1
    return 0


def cmd_metrics(args) -> int:
    """Stand up a miniature serving fleet — >= 2 plane-attached worker
    processes plus a subprocess fine-tune child — drive traffic and an
    online round through it, and emit the merged fleet metrics snapshot
    in Prometheus text and JSON (per-shard gather counters, per-hop
    walk timings, online round phases, transport counters)."""
    import json
    import tempfile
    from pathlib import Path

    from repro.online import CheckpointRegistry, DeltaIngestor, OnlineUpdater
    from repro.serving.bench import _closed_loop
    from repro.telemetry.exporters import prometheus_text
    from repro.telemetry.registry import MetricsRegistry
    from repro.telemetry.trace import spans_to_chrome_trace, spans_to_jsonl

    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset, include_users=not args.no_users)
    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, sample_sizes=(100, args.final_beam),
                        transe_epochs=2,
                        # Multi-shard store so the per-shard gather
                        # counters actually split across shards.
                        graph_shards=args.graph_shards,
                        online_max_steps=2,
                        seed=args.seed)
    trainer = REKSTrainer(dataset, built, model_name=args.model,
                          config=config)
    sessions = [s for s in dataset.split.test
                if len(s.items) >= 2][:args.requests]
    delta = [s for s in dataset.split.validation if len(s.items) >= 2][:64]
    if not sessions:
        print("FAIL: dataset has no usable serving sessions")
        return 1

    fleet = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="reks-metrics-") as tmp:
        registry = CheckpointRegistry(tmp, keep_last=2)
        ingestor = DeltaIngestor(built, trainer.env, compact_every=256)
        updater = OnlineUpdater(trainer, ingestor, registry,
                                min_sessions=1, max_steps=2,
                                mode="subprocess",
                                metrics_registry=fleet)
        try:
            # Fork the fine-tune child before the server spawns its
            # worker processes and dispatcher threads (clean fork).
            updater.run_once(force=True)
            with trainer.serve(worker_mode="process",
                               workers=args.workers,
                               trace_sample=args.trace_sample,
                               metrics_registry=fleet) as server:
                _closed_loop(server, sessions, args.concurrency,
                             args.top_k)  # cold pass: misses + walks
                _closed_loop(server, sessions, args.concurrency,
                             args.top_k)  # warm replay: cache hits
                if delta:
                    ingestor.ingest_sessions(delta)
                updater.run_once(force=True)
                snapshot = server.fleet_snapshot()
                spans = server.tracer.drain()
        finally:
            updater.stop()
            fleet.close()

    roles = sorted(snapshot.roles)
    workers_seen = [r for r in roles if r.startswith("worker")]
    print(f"fleet roles: {', '.join(roles)}")
    if len(workers_seen) < 2 or "updater" not in roles:
        print(f"FAIL: expected >= 2 worker blocks + an updater block, "
              f"got {roles}")
        return 1

    prom = prometheus_text(snapshot)
    if args.format in ("prom", "both"):
        print(prom, end="")
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(snapshot.to_dict(), indent=2,
                              sort_keys=True))
    print(f"-> {out}")
    if args.prom_out:
        Path(args.prom_out).write_text(prom)
        print(f"-> {args.prom_out}")
    if args.trace_out and spans:
        Path(args.trace_out).write_text(spans_to_jsonl(spans))
        chrome = Path(args.trace_out).with_suffix(".chrome.json")
        chrome.write_text(json.dumps(spans_to_chrome_trace(spans)))
        print(f"-> {args.trace_out} ({len(spans)} spans), {chrome}")

    # The snapshot must carry the labelled families the exporters
    # split back out: per-shard gather counters and per-hop walk hists.
    shard_counters = [name for name in snapshot.counters
                      if name.startswith("gather_rows_total{shard=")]
    hop_hists = [name for name in snapshot.hists
                 if name.startswith("walk_hop_seconds{hop=")]
    print(f"per-shard gather counters: {len(shard_counters)}, "
          f"per-hop walk timings: {len(hop_hists)}")
    if not shard_counters or not hop_hists:
        print("FAIL: snapshot is missing per-shard gather counters or "
              "per-hop walk timings")
        return 1
    return 0


def cmd_top(args) -> int:
    """Live fleet view: render consecutive ``/metrics.json`` snapshots
    as terminal frames — per-role QPS, windowed request p50/p99, cache
    hit rate, ring/pipe transport mix, trace pressure, and a per-shard
    gather heat bar.  With ``--url`` it polls a running server's
    metrics endpoint; without one it stands up a demo fleet and drives
    a traffic pass between frames."""
    import json
    import time
    from repro.telemetry.top import render_top

    def show(curr: dict, prev, frame: int) -> None:
        if frame and not args.no_clear:
            print("\x1b[2J\x1b[H", end="")
        print(render_top(curr, prev), end="", flush=True)

    if args.url:
        import urllib.request

        url = args.url
        if "metrics.json" not in url:
            url = url.rstrip("/") + "/metrics.json"
        prev = None
        frame = 0
        try:
            while True:
                with urllib.request.urlopen(url, timeout=5.0) as resp:
                    curr = json.loads(resp.read().decode("utf-8"))
                show(curr, prev, frame)
                prev = curr
                frame += 1
                if args.frames and frame >= args.frames:
                    break
                time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    # Demo fleet: a small process-mode server, one closed-loop traffic
    # pass per frame so every frame diffs against real activity.
    from repro.serving.bench import _closed_loop

    dataset = make_dataset(args.dataset, args.scale, args.seed)
    built = build_kg(dataset, include_users=not args.no_users)
    config = REKSConfig(dim=args.dim, state_dim=args.dim,
                        epochs=args.epochs, batch_size=args.batch_size,
                        lr=args.lr, sample_sizes=(100, 4),
                        transe_epochs=2, graph_shards=4,
                        seed=args.seed)
    trainer = REKSTrainer(dataset, built, model_name=args.model,
                          config=config)
    sessions = [s for s in dataset.split.test
                if len(s.items) >= 2][:64]
    if not sessions:
        print("FAIL: dataset has no usable serving sessions")
        return 1
    frames = args.frames or 3
    with trainer.serve(worker_mode="process", workers=2,
                       trace_sample=1.0) as server:
        prev = None
        for frame in range(frames):
            _closed_loop(server, sessions, args.concurrency, args.top_k)
            curr = server.fleet_snapshot().to_dict()
            # Same extra section /metrics.json serves: per-version
            # entry counts for the explanation cache and walk memo.
            curr["serving"] = server.serving_state()
            show(curr, prev, frame)
            prev = curr
    return 0


def cmd_trace_soak(args) -> int:
    """Soak the tracer -> streaming-sink handoff: push ``--spans``
    spans through a :class:`Tracer` with a :class:`TraceSink` attached
    (rotation forced by a small ``--rotate-bytes``), then audit the
    ledger: every span must be accounted for as written or as a
    *counted* drop, drops must be zero at the default queue depth, and
    rotation must actually have happened."""
    import json
    from pathlib import Path

    from repro.telemetry.block import MetricBlock, fleet_schema
    from repro.telemetry.sink import TraceSink
    from repro.telemetry.trace import Tracer

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    live = out_dir / "trace.jsonl"
    for stale in out_dir.glob("trace.jsonl*"):
        stale.unlink()

    block = MetricBlock.create(fleet_schema(), "soak")
    sink = TraceSink(live, max_bytes=args.rotate_bytes,
                     keep=args.keep, metrics=block)
    tracer = Tracer(sample=1.0, capacity=1024, seed=args.seed,
                    sink=sink, metrics=block)
    for i in range(args.spans):
        tracer.record(trace_id=(i % (1 << 30)) + 1, name="soak",
                      role="soak", t0=float(i) * 1e-6, dur=1e-6)
    sink.flush()
    sink.close()

    retained = 0
    for path in sink.files():
        if Path(path).exists():
            retained += sum(1 for line in
                            Path(path).read_text().splitlines() if line)
    dropped = sink.dropped
    counted = block.snapshot().counters.get("trace_dropped_total", 0)
    block.unlink()
    summary = {
        "spans": args.spans,
        "written": sink.written,
        "retained": retained,
        "rotations": sink.rotations,
        "dropped": dropped,
        "trace_dropped_total": int(counted),
        "files": sink.files(),
    }
    (out_dir / "soak_summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True))
    print(f"trace soak: {args.spans} spans -> {sink.written} written, "
          f"{retained} retained across {len(sink.files())} files, "
          f"{sink.rotations} rotations, {dropped} dropped")
    print(f"-> {out_dir}/soak_summary.json")
    if sink.written + dropped != args.spans:
        print(f"FAIL: span ledger does not balance "
              f"({sink.written} written + {dropped} dropped != "
              f"{args.spans})")
        return 1
    if dropped != counted:
        print(f"FAIL: {dropped} drops but trace_dropped_total={counted} "
              f"(silent loss)")
        return 1
    if dropped:
        print(f"FAIL: {dropped} spans dropped during the soak")
        return 1
    if args.spans and not sink.rotations:
        print("FAIL: soak never rotated the live file "
              "(--rotate-bytes too large?)")
        return 1
    return 0


def _print_metrics(label: str, metrics: dict) -> None:
    rows = [[k, f"{v:.2f}"] for k, v in metrics.items()
            if k.startswith(("HR", "NDCG"))]
    print(format_table(rows, headers=[label, "%"]))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset/KG statistics")
    _add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_base = sub.add_parser("baseline", help="train a standalone model")
    _add_common(p_base)
    p_base.add_argument("--model", choices=MODELS, default="narm")
    p_base.set_defaults(func=cmd_baseline)

    for name, func, extra in (("reks", cmd_reks, False),
                              ("explain", cmd_explain, True)):
        p = sub.add_parser(name)
        _add_common(p)
        p.add_argument("--model", choices=MODELS, default="narm")
        p.add_argument("--beta", type=float, default=0.2)
        p.add_argument("--final-beam", type=int, default=4)
        p.add_argument("--frontier-buckets", type=int, default=1,
                       help="degree-quantile buckets per hop frontier "
                            "(1 = one padded rectangle per hop)")
        p.add_argument("--no-users", action="store_true",
                       help="build the KG without user entities")
        if extra:
            p.add_argument("--cases", type=int, default=3)
            p.add_argument("--top-k", type=int, default=3)
        p.set_defaults(func=func)

    p_cmp = sub.add_parser("compare", help="baseline vs REKS")
    _add_common(p_cmp)
    p_cmp.add_argument("--model", choices=MODELS, default="narm")
    p_cmp.add_argument("--beta", type=float, default=0.2)
    p_cmp.add_argument("--final-beam", type=int, default=4)
    p_cmp.set_defaults(func=cmd_compare)

    p_srv = sub.add_parser(
        "serve-bench",
        help="load-test the request-coalescing serving layer")
    _add_common(p_srv)
    p_srv.add_argument("--model", choices=MODELS, default="narm")
    p_srv.add_argument("--final-beam", type=int, default=4)
    p_srv.add_argument("--no-users", action="store_true")
    p_srv.add_argument("--fit", action="store_true",
                       help="train before benchmarking (serving "
                            "throughput does not depend on it)")
    p_srv.add_argument("--quick", action="store_true",
                       help="bounded request count + short TransE "
                            "pre-training")
    p_srv.add_argument("--concurrency", type=int, default=32,
                       help="closed-loop client threads")
    p_srv.add_argument("--top-k", type=int, default=10)
    p_srv.add_argument("--max-batch", type=int, default=32)
    p_srv.add_argument("--max-wait-ms", type=float, default=2.0)
    p_srv.add_argument("--workers", type=int, default=2)
    p_srv.add_argument("--worker-mode", choices=("thread", "process"),
                       default="thread",
                       help="execute micro-batches on worker threads or "
                            "on plane-attached worker processes")
    p_srv.add_argument("--transport", choices=("pipe", "ring"),
                       default="ring",
                       help="process-mode exec dataplane: shared-memory "
                            "rings (default) or the pickle pipe")
    p_srv.add_argument("--speedup-floor", type=float, default=2.0,
                       help="fail below this coalesced/naive ratio")
    p_srv.add_argument("--trace-sample", type=float, default=0.0,
                       help="request-trace sampling rate for the "
                            "telemetry phase (0..1)")
    p_srv.add_argument("--slo-p99-ms", type=float, default=1000.0,
                       help="fail when request p99 exceeds this")
    p_srv.add_argument("--slo-cache-hit-floor", type=float, default=0.25,
                       help="fail when the cache hit rate drops below "
                            "this")
    p_srv.add_argument("--slo-ring-fallback-ceiling", type=float,
                       default=0.5,
                       help="fail when the ring->pipe fallback rate "
                            "exceeds this")
    p_srv.add_argument("--hot-replay", action="store_true",
                       help="run the Zipf hot-session replay stage "
                            "gating the shared-computation layer "
                            "(in-flush dedup + walk memo) on bit-"
                            "identity and the memo-hit floor")
    p_srv.add_argument("--slo-memo-hit-floor", type=float, default=0.25,
                       help="hot-replay walk-memo hit-rate floor "
                            "(hits / (hits + misses))")
    p_srv.add_argument("--slo-burn-ceiling", type=float, default=0.0,
                       help="fail when the rolling-window SLO burn "
                            "rate exceeds this multiple of budget "
                            "(0 disables the gate)")
    p_srv.add_argument("--out", default=default_bench_path(
        "BENCH_serving.json"))
    p_srv.set_defaults(func=cmd_serve_bench)

    p_ing = sub.add_parser(
        "ingest",
        help="stream sessions through the continual-learning loop")
    _add_common(p_ing)
    p_ing.add_argument("--model", choices=MODELS, default="narm")
    p_ing.add_argument("--final-beam", type=int, default=4)
    p_ing.add_argument("--no-users", action="store_true")
    p_ing.add_argument("--fit", action="store_true",
                       help="train offline before streaming")
    p_ing.add_argument("--rounds", type=int, default=3,
                       help="ingest -> fine-tune -> publish rounds")
    p_ing.add_argument("--chunk", type=int, default=32,
                       help="sessions ingested per round")
    p_ing.add_argument("--max-steps", type=int, default=4,
                       help="fine-tune batches per round")
    p_ing.add_argument("--compact-every", type=int, default=256,
                       help="staged edges before CSR compaction")
    p_ing.add_argument("--checkpoints", default="checkpoints",
                       help="registry directory")
    p_ing.set_defaults(func=cmd_ingest)

    p_onl = sub.add_parser(
        "online-bench",
        help="measure the continual-learning lifecycle (hot swap)")
    _add_common(p_onl)
    p_onl.add_argument("--model", choices=MODELS, default="narm")
    p_onl.add_argument("--final-beam", type=int, default=4)
    p_onl.add_argument("--no-users", action="store_true")
    p_onl.add_argument("--fit", action="store_true",
                       help="train before benchmarking")
    p_onl.add_argument("--quick", action="store_true",
                       help="bounded session sets + short TransE "
                            "pre-training")
    p_onl.add_argument("--concurrency", type=int, default=16,
                       help="closed-loop client threads")
    p_onl.add_argument("--top-k", type=int, default=10)
    p_onl.add_argument("--workers", type=int, default=2)
    p_onl.add_argument("--checkpoints", default=None,
                       help="registry directory (default: temp dir)")
    p_onl.add_argument("--updater-mode", choices=("thread", "subprocess"),
                       default="thread",
                       help="where the fine-tune replica runs")
    p_onl.add_argument("--slo-swap-max-ms", type=float, default=30_000.0,
                       help="fail when a hot swap takes longer than "
                            "this")
    p_onl.add_argument("--out", default=default_bench_path(
        "BENCH_online.json"))
    p_onl.set_defaults(func=cmd_online_bench)

    p_run = sub.add_parser(
        "runtime-bench",
        help="thread-vs-process serving + fine-tune isolation")
    _add_common(p_run)
    p_run.add_argument("--model", choices=MODELS, default="narm")
    p_run.add_argument("--final-beam", type=int, default=4)
    p_run.add_argument("--no-users", action="store_true")
    p_run.add_argument("--fit", action="store_true",
                       help="train before benchmarking")
    p_run.add_argument("--quick", action="store_true",
                       help="bounded session sets + short TransE "
                            "pre-training")
    p_run.add_argument("--workers", type=int, default=4,
                       help="serving workers per mode")
    p_run.add_argument("--concurrency", type=int, default=8,
                       help="closed-loop client threads")
    p_run.add_argument("--top-k", type=int, default=10)
    p_run.add_argument("--checkpoints", default=None,
                       help="registry directory (default: temp dir)")
    p_run.add_argument("--telemetry-overhead-ceiling", type=float,
                       default=0.0,
                       help="fail when ring per-batch time with the "
                            "telemetry plane exceeds this multiple of "
                            "thread mode (0 disables the gate)")
    p_run.add_argument("--out", default=default_bench_path(
        "BENCH_runtime.json"))
    p_run.set_defaults(func=cmd_runtime_bench)

    p_met = sub.add_parser(
        "metrics",
        help="emit the merged fleet metrics snapshot (Prometheus + JSON)")
    _add_common(p_met)
    p_met.add_argument("--model", choices=MODELS, default="narm")
    p_met.add_argument("--final-beam", type=int, default=4)
    p_met.add_argument("--no-users", action="store_true")
    p_met.add_argument("--workers", type=int, default=2,
                       help="plane-attached worker processes (>= 2 so "
                            "the snapshot demonstrably merges blocks)")
    p_met.add_argument("--graph-shards", type=int, default=4,
                       help="graph-store shards (per-shard gather "
                            "counters split across these)")
    p_met.add_argument("--trace-sample", type=float, default=1.0,
                       help="request-trace sampling rate (0..1)")
    p_met.add_argument("--concurrency", type=int, default=8)
    p_met.add_argument("--top-k", type=int, default=10)
    p_met.add_argument("--requests", type=int, default=64,
                       help="distinct sessions driven per pass")
    p_met.add_argument("--format", choices=("prom", "json", "both"),
                       default="prom",
                       help="what to print on stdout (the JSON "
                            "snapshot is always written to --out)")
    p_met.add_argument("--out", default=default_bench_path(
        "METRICS_fleet.json"))
    p_met.add_argument("--prom-out", default=None,
                       help="also write the Prometheus text here")
    p_met.add_argument("--trace-out", default=None,
                       help="write drained spans as JSONL here (plus a "
                            "sibling Chrome trace_event file)")
    p_met.set_defaults(func=cmd_metrics)

    p_top = sub.add_parser(
        "top",
        help="live terminal fleet view (polls /metrics.json)")
    _add_common(p_top)
    p_top.add_argument("--model", choices=MODELS, default="narm")
    p_top.add_argument("--no-users", action="store_true")
    p_top.add_argument("--url", default=None,
                       help="metrics endpoint of a running server "
                            "(e.g. http://127.0.0.1:9201); omitted = "
                            "stand up a demo fleet")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between frames in --url mode")
    p_top.add_argument("--frames", type=int, default=0,
                       help="stop after this many frames (0 = until "
                            "Ctrl-C in --url mode, 3 in demo mode)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the "
                            "screen (headless/CI logs)")
    p_top.add_argument("--concurrency", type=int, default=8)
    p_top.add_argument("--top-k", type=int, default=10)
    p_top.set_defaults(func=cmd_top)

    p_soak = sub.add_parser(
        "trace-soak",
        help="soak the tracer -> streaming trace sink handoff")
    p_soak.add_argument("--spans", type=int, default=100_000,
                        help="spans pushed through the sink")
    p_soak.add_argument("--rotate-bytes", type=int, default=1 << 20,
                        help="live-file size that forces a rotation")
    p_soak.add_argument("--keep", type=int, default=64,
                        help="rotated generations retained (large "
                             "enough that the soak keeps every span)")
    p_soak.add_argument("--seed", type=int, default=7)
    p_soak.add_argument("--out", default="traces",
                        help="directory for trace.jsonl* and the soak "
                             "summary")
    p_soak.set_defaults(func=cmd_trace_soak)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
