"""Parent-side fleet registry: create, retire, and merge metric blocks.

The registry lives in the serving parent.  It creates one
:class:`~repro.telemetry.block.MetricBlock` per writer role
(``server``, ``worker0..N``, ``updater``) and hands children the
:class:`~repro.telemetry.block.BlockManifest` so they attach the same
segment and write in place — no IPC per metric, the parent reads the
shared arrays directly.

Respawn discipline (no double counting): when a worker dies or is
replaced, the parent **retires** its block — takes a final (possibly
torn, if the writer died mid-mutation) snapshot, folds counters and
histogram buckets into per-role retained accumulators, and unlinks the
segment — then creates a *fresh zeroed block* for the replacement
under the same role.  A fleet snapshot is therefore always
``retired accumulators + live blocks``: restarting a worker never
re-adds its old counts, and never loses them either.  Gauges are
point-in-time per role and are dropped on retirement.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .block import (BlockSnapshot, HistSnapshot, MetricBlock,
                    MetricSchema, merge_hists)


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; pid 0 = writer not attached yet."""
    if pid <= 0:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


@dataclass
class _RetiredAccum:
    """Counters + histogram mass folded out of dead blocks."""

    counters: Dict[str, int] = field(default_factory=dict)
    hists: Dict[str, HistSnapshot] = field(default_factory=dict)
    blocks: int = 0
    torn: int = 0

    def fold(self, snap: BlockSnapshot) -> None:
        self.blocks += 1
        if snap.torn:
            self.torn += 1
        for name, value in snap.counters.items():
            if value:
                self.counters[name] = self.counters.get(name, 0) + value
        for name, hist in snap.hists.items():
            if hist.count == 0:
                continue
            prior = self.hists.get(name)
            self.hists[name] = merge_hists((prior, hist))


@dataclass(frozen=True)
class FleetSnapshot:
    """Merged view over every live + retired block.

    ``per_role`` carries each *live* role's own nonzero counters (the
    merged ``counters`` fold retired mass in; the per-role view is
    what a live fleet display diffs for per-role rates).
    """

    counters: Dict[str, int]
    gauges: Dict[str, Dict[str, float]]   # name -> role -> value
    hists: Dict[str, HistSnapshot]
    roles: Tuple[str, ...]
    retired_blocks: int
    torn_snapshots: int
    generated_at: float
    per_role: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def hist(self, name: str) -> Optional[HistSnapshot]:
        return self.hists.get(name)

    def to_dict(self) -> dict:
        return {
            "generated_at": self.generated_at,
            "roles": list(self.roles),
            "retired_blocks": self.retired_blocks,
            "torn_snapshots": self.torn_snapshots,
            "counters": {k: v for k, v in sorted(self.counters.items())
                         if v},
            "per_role": {role: dict(sorted(counters.items()))
                         for role, counters
                         in sorted(self.per_role.items())},
            "gauges": {name: dict(sorted(per_role.items()))
                       for name, per_role in sorted(self.gauges.items())},
            "histograms": {name: hist.to_dict()
                           for name, hist in sorted(self.hists.items())
                           if hist.count},
        }


class MetricsRegistry:
    """Creates, tracks, retires, and merges the fleet's metric blocks."""

    def __init__(self, backend: str = "auto") -> None:
        self._backend = backend
        self._lock = threading.Lock()
        self._blocks: Dict[str, MetricBlock] = {}
        self._retired = _RetiredAccum()
        self._closed = False

    # ------------------------------------------------------------------
    def create_block(self, role: str, schema: MetricSchema) -> MetricBlock:
        """Create (or replace — retiring the old one) the block for a
        writer role and return it; the caller ships
        ``block.manifest`` to the writer process."""
        with self._lock:
            if self._closed:
                raise RuntimeError("MetricsRegistry is closed")
            stale = self._blocks.pop(role, None)
            if stale is not None:
                self._retire_locked(stale)
            block = MetricBlock.create(schema, role=role,
                                       backend=self._backend)
            self._blocks[role] = block
            return block

    def block(self, role: str) -> Optional[MetricBlock]:
        with self._lock:
            return self._blocks.get(role)

    @property
    def roles(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._blocks))

    # ------------------------------------------------------------------
    def _retire_locked(self, block: MetricBlock) -> None:
        try:
            self._retired.fold(block.snapshot())
        finally:
            block.unlink()

    def retire(self, role: str) -> bool:
        """Fold a dead writer's block into the retained accumulators
        and unlink its segment.  Idempotent; returns whether a block
        was retired."""
        with self._lock:
            block = self._blocks.pop(role, None)
            if block is None:
                return False
            self._retire_locked(block)
            return True

    # ------------------------------------------------------------------
    def snapshot(self) -> FleetSnapshot:
        with self._lock:
            live = [(role, block.snapshot())
                    for role, block in sorted(self._blocks.items())]
            retired = self._retired
            counters = dict(retired.counters)
            torn = retired.torn
            gauges: Dict[str, Dict[str, float]] = {}
            hist_parts: Dict[str, List[HistSnapshot]] = {
                name: [hist] for name, hist in retired.hists.items()}
            for role, snap in live:
                if snap.torn:
                    torn += 1
                for name, value in snap.counters.items():
                    if value:
                        counters[name] = counters.get(name, 0) + value
                for name, value in snap.gauges.items():
                    if value:
                        gauges.setdefault(name, {})[role] = value
                for name, hist in snap.hists.items():
                    if hist.count:
                        hist_parts.setdefault(name, []).append(hist)
            hists = {name: merge_hists(parts)
                     for name, parts in hist_parts.items()}
            per_role = {
                role: {name: value
                       for name, value in snap.counters.items() if value}
                for role, snap in live}
            return FleetSnapshot(
                counters=counters, gauges=gauges, hists=hists,
                roles=tuple(role for role, _ in live),
                retired_blocks=retired.blocks, torn_snapshots=torn,
                generated_at=time.time(), per_role=per_role)

    # ------------------------------------------------------------------
    # Health / per-role introspection
    # ------------------------------------------------------------------
    def role_snapshots(self) -> Dict[str, BlockSnapshot]:
        """A fresh seqlock snapshot of every live block, by role."""
        with self._lock:
            blocks = list(sorted(self._blocks.items()))
        return {role: block.snapshot() for role, block in blocks}

    def health(self) -> dict:
        """Liveness report over the live writer blocks.

        A role is degraded when its latest snapshot read torn (writer
        died mid-mutation — the seqlock never recovered to even) or
        its recorded writer pid no longer exists.  ``pid == 0`` means
        the writer has not attached yet (a just-spawned worker), which
        is healthy.  The serving ``/healthz`` endpoint turns
        ``ok=False`` into a 503.
        """
        roles: Dict[str, dict] = {}
        ok = True
        for role, snap in self.role_snapshots().items():
            alive = _pid_alive(snap.pid)
            degraded = snap.torn or not alive
            roles[role] = {"pid": snap.pid, "alive": alive,
                           "torn": snap.torn, "ok": not degraded}
            if degraded:
                ok = False
        return {"ok": ok, "roles": roles}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Retire every live block and unlink segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for role in sorted(self._blocks):
                self._retire_locked(self._blocks.pop(role))

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
