"""Live fleet view rendering (``cli top``).

Pure functions from :class:`~repro.telemetry.registry.FleetSnapshot`
JSON dicts (what ``/metrics.json`` serves) to a terminal frame — no
I/O, no curses, no dependencies — so the same renderer drives the
interactive ``cli top`` loop, the ``--frames`` headless mode, and the
unit tests.  Two consecutive snapshots make one frame: counters diff
into per-second rates, histograms diff bucket-wise (via
:func:`~repro.telemetry.window.hist_delta`) into windowed p50/p99.

The frame shows what the serving fleet's operators actually watch:
per-role QPS, windowed request p50/p99, cache hit rate, ring vs pipe
batch mix and fallbacks, trace pressure (sampled vs dropped), and a
per-shard gather heat bar that makes a hot shard visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .block import HistSnapshot
from .exporters import split_labels
from .window import hist_delta, hist_from_dict

_BARS = " ▁▂▃▄▅▆▇█"


def _fmt_rate(value: float) -> str:
    if value >= 1000:
        return f"{value / 1000:.1f}k"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.1f}"


def _fmt_ms(seconds: float) -> str:
    ms = seconds * 1e3
    if ms >= 1000:
        return f"{ms / 1000:.2f}s"
    if ms >= 10:
        return f"{ms:.0f}ms"
    return f"{ms:.2f}ms"


def _counter_delta(curr: dict, prev: Optional[dict], name: str) -> int:
    now = int(curr.get("counters", {}).get(name, 0))
    if prev is None:
        return now
    return max(now - int(prev.get("counters", {}).get(name, 0)), 0)


def _window_hist(curr: dict, prev: Optional[dict],
                 name: str) -> Optional[HistSnapshot]:
    payload = curr.get("histograms", {}).get(name)
    if payload is None:
        return None
    end = hist_from_dict(payload)
    if prev is None:
        return end if end.count else None
    before = prev.get("histograms", {}).get(name)
    delta = hist_delta(end, hist_from_dict(before) if before else None)
    return delta if delta.count else None


def heat_bar(values: List[float], width: int = 0) -> str:
    """Unicode block heat bar, one glyph per value, scaled to max."""
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return _BARS[0] * len(values)
    return "".join(
        _BARS[min(len(_BARS) - 1,
                  int(round(v / peak * (len(_BARS) - 1))))]
        for v in values)


def shard_heat(curr: dict, prev: Optional[dict]) -> List[Tuple[int, int]]:
    """Per-shard gather row deltas, ``[(shard, rows), ...]`` ordered by
    shard id (from ``gather_rows_total{shard=N}`` counters)."""
    out: Dict[int, int] = {}
    for name in curr.get("counters", {}):
        base, labels = split_labels(name)
        if base == "gather_rows_total" and "shard" in labels:
            out[int(labels["shard"])] = _counter_delta(curr, prev, name)
    return sorted(out.items())


def _role_rows(curr: dict, prev: Optional[dict],
               dt: float) -> List[str]:
    rows: List[str] = []
    per_role = curr.get("per_role", {})
    prev_roles = (prev or {}).get("per_role", {})
    for role in sorted(per_role):
        now = per_role[role]
        before = prev_roles.get(role, {})

        def delta(name: str) -> int:
            d = int(now.get(name, 0)) - int(before.get(name, 0))
            return max(d, 0)

        qps = (delta("requests_total") or delta("exec_rows_total")) / dt
        batches = delta("batches_total") or delta("exec_batches_total")
        traces = delta("traces_sampled_total") \
            or delta("worker_traces_total")
        rows.append(f"  {role:<10} {_fmt_rate(qps):>7}/s "
                    f"{batches:>7} batches "
                    f"{traces:>7} traces "
                    f"{delta('trace_dropped_total'):>5} dropped")
    return rows


def render_top(curr: dict, prev: Optional[dict] = None) -> str:
    """Render one frame from consecutive ``FleetSnapshot.to_dict()``
    dicts.  With ``prev=None`` the frame shows cumulative totals with
    the interval annotated as the full uptime (first frame of a
    session)."""
    dt = 0.0
    if prev is not None:
        dt = float(curr.get("generated_at", 0.0)) \
            - float(prev.get("generated_at", 0.0))
    windowed = dt > 0.0
    dt = dt if windowed else 1.0

    lines: List[str] = []
    roles = curr.get("roles", [])
    scope = f"{dt:.1f}s window" if windowed else "cumulative"
    health = (f"retired={curr.get('retired_blocks', 0)} "
              f"torn={curr.get('torn_snapshots', 0)}")
    lines.append(f"REKS fleet  [{scope}]  roles={len(roles)}  {health}")

    gauges = curr.get("gauges", {})
    version = gauges.get("model_version", {})
    alive = gauges.get("workers_alive", {})
    if version or alive:
        ver = max(version.values()) if version else 0
        workers = max(alive.values()) if alive else 0
        lines.append(f"  model v{int(ver)}   workers alive "
                     f"{int(workers)}")

    req = _counter_delta(curr, prev, "requests_total")
    lines.append("")
    lines.append(f"  requests   {_fmt_rate(req / dt):>7}/s")
    lat = _window_hist(curr, prev, "request_latency_seconds")
    if lat is not None:
        lines.append(f"  latency    p50 {_fmt_ms(lat.quantile(0.5)):>8}"
                     f"   p99 {_fmt_ms(lat.quantile(0.99)):>8}"
                     f"   max {_fmt_ms(lat.max):>8}")

    hits = _counter_delta(curr, prev, "cache_hits_total")
    misses = _counter_delta(curr, prev, "cache_misses_total")
    if hits + misses:
        rate = hits / (hits + misses)
        lines.append(f"  cache      {rate * 100:5.1f}% hit "
                     f"({hits}/{hits + misses})")

    dedup = _counter_delta(curr, prev, "dedup_rows_total")
    memo_hits = _counter_delta(curr, prev, "walk_memo_hits_total")
    memo_misses = _counter_delta(curr, prev, "walk_memo_misses_total")
    if dedup or memo_hits + memo_misses:
        line = f"  shared     {dedup} rows deduped"
        if memo_hits + memo_misses:
            rate = memo_hits / (memo_hits + memo_misses)
            line += (f", memo {rate * 100:5.1f}% hit "
                     f"({memo_hits}/{memo_hits + memo_misses})")
        lines.append(line)

    # Per-version live entry counts (the "serving" extra section of
    # /metrics.json): after a hot swap the stale version's counts only
    # shrink — this is where that drain is watched.
    serving = curr.get("serving") or {}
    cache_bv = serving.get("cache_entries_by_version") or {}
    memo_bv = (serving.get("walk_memo") or {}).get(
        "entries_by_version") or {}
    if cache_bv or memo_bv:
        def _fmt_bv(bv: Dict[str, int]) -> str:
            return " ".join(
                f"v{v}:{bv[v]}" for v in sorted(bv, key=int))

        lines.append(f"  entries    cache [{_fmt_bv(cache_bv)}]  "
                     f"memo [{_fmt_bv(memo_bv)}]")

    ring = _counter_delta(curr, prev, "ring_batches_total")
    pipe = _counter_delta(curr, prev, "pipe_batches_total")
    fallbacks = _counter_delta(curr, prev, "ring_fallbacks_total")
    if ring + pipe + fallbacks:
        lines.append(f"  transport  {ring} ring / {pipe} pipe batches, "
                     f"{fallbacks} fallbacks")

    sampled = _counter_delta(curr, prev, "traces_sampled_total")
    dropped = _counter_delta(curr, prev, "trace_dropped_total")
    if sampled or dropped:
        lines.append(f"  traces     {sampled} sampled, "
                     f"{dropped} dropped")

    heat = shard_heat(curr, prev)
    if heat:
        values = [float(rows) for _, rows in heat]
        total = int(sum(values))
        lines.append(f"  gather     {heat_bar(values)}  "
                     f"{len(heat)} shards, {total} rows")

    role_rows = _role_rows(curr, prev, dt)
    if role_rows:
        lines.append("")
        lines.append("  role       qps/rows     batches      traces "
                     "drops")
        lines.extend(role_rows)
    return "\n".join(lines) + "\n"
