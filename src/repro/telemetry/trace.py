"""Sampled per-request tracing across the serving fleet.

A trace follows one request through the pipeline:
``enqueue -> flush -> transport -> exec (walk hops / top-k) -> render
-> respond``.  The parent assigns each sampled request a nonzero
31-bit trace id (int32-safe, so it rides the flat ring codec
unchanged), threads the ids through the batch that the scheduler
flushes, and the worker echoes them back alongside **batch-level span
records** — ``(kind, t0, dur)`` float64 triples stamped with
``time.perf_counter()``, which is CLOCK_MONOTONIC on Linux and hence
directly comparable across the parent and its children.

Spans from the worker cover the whole coalesced batch (one walk serves
every request in the flush); the parent attributes them to each
sampled trace id in the batch, which is exactly the cost model —
a request pays for the batch it rode in.

Exports: JSONL (one span per line, grep-able) and Chrome
``trace_event`` JSON (load in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import json
import random
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

# Worker-side span kinds, shipped over the ring as small ints.
SPAN_KINDS: Tuple[str, ...] = ("exec", "walk", "topk", "collate")
_KIND_INDEX = {name: i for i, name in enumerate(SPAN_KINDS)}


def span_kind_id(name: str) -> int:
    return _KIND_INDEX[name]


def span_kind_name(kind_id: int) -> str:
    if 0 <= kind_id < len(SPAN_KINDS):
        return SPAN_KINDS[kind_id]
    return f"kind{kind_id}"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span of one trace."""

    trace_id: int
    name: str          # enqueue|flush|transport|exec|walk|topk|render|respond
    role: str          # which process/thread recorded it
    t0: float          # perf_counter seconds
    dur: float         # seconds

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "name": self.name,
                "role": self.role, "t0": self.t0, "dur": self.dur}


class Tracer:
    """Samples requests and buffers their spans (bounded).

    ``sample`` in [0, 1]: 0 disables tracing entirely (``maybe_start``
    returns 0 and recording is a no-op); 1.0 traces every request.
    Sampling uses a private ``random.Random`` so it never perturbs
    global RNG state — the determinism differential suites run with
    sampling at 1.0, where no randomness is consumed at all.
    """

    def __init__(self, sample: float = 0.0, capacity: int = 4096,
                 seed: int = 0) -> None:
        self.sample = float(sample)
        self._rng = random.Random(seed)
        self._id_rng = random.Random(seed ^ 0x5EED)
        self._lock = threading.Lock()
        self._spans: Deque[SpanRecord] = deque(maxlen=max(1, capacity))
        self.started = 0
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.sample > 0.0

    # ------------------------------------------------------------------
    def maybe_start(self) -> int:
        """Return a fresh nonzero 31-bit trace id for a sampled
        request, or 0 (not sampled / tracing off)."""
        if self.sample <= 0.0:
            return 0
        if self.sample < 1.0 and self._rng.random() >= self.sample:
            return 0
        with self._lock:
            self.started += 1
            # Nonzero, int32-positive: rides the ring codec as-is.
            return self._id_rng.randrange(1, 1 << 31)

    def record(self, trace_id: int, name: str, role: str, t0: float,
               dur: float) -> None:
        if trace_id == 0:
            return
        span = SpanRecord(trace_id=trace_id, name=name, role=role,
                          t0=float(t0), dur=float(dur))
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)

    def record_batch_spans(self, trace_ids: Sequence[int], role: str,
                           spans: Iterable[Tuple[int, float, float]]
                           ) -> None:
        """Attribute worker batch-level spans to every sampled trace
        id that rode the batch."""
        live = [tid for tid in trace_ids if tid]
        if not live:
            return
        for kind_id, t0, dur in spans:
            name = span_kind_name(int(kind_id))
            for tid in live:
                self.record(tid, name, role, t0, dur)

    # ------------------------------------------------------------------
    def drain(self) -> List[SpanRecord]:
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
            return spans

    def peek(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Sequence[SpanRecord]) -> str:
    """One JSON object per line, sorted by start time."""
    ordered = sorted(spans, key=lambda s: (s.t0, s.trace_id))
    return "\n".join(json.dumps(s.to_dict(), sort_keys=True)
                     for s in ordered) + ("\n" if ordered else "")


def spans_to_chrome_trace(spans: Sequence[SpanRecord]) -> dict:
    """Chrome ``trace_event`` format: complete ("X") events, one
    pseudo-thread per recording role, timestamps rebased to the
    earliest span so the viewer opens at t=0."""
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(s.t0 for s in spans)
    roles = sorted({s.role for s in spans})
    tid_of = {role: i + 1 for i, role in enumerate(roles)}
    events: List[dict] = [
        {"ph": "M", "name": "thread_name", "pid": 1,
         "tid": tid_of[role], "args": {"name": role}}
        for role in roles]
    for s in sorted(spans, key=lambda s: s.t0):
        events.append({
            "ph": "X", "name": s.name, "cat": "request",
            "pid": 1, "tid": tid_of[s.role],
            "ts": (s.t0 - base) * 1e6, "dur": s.dur * 1e6,
            "args": {"trace_id": s.trace_id}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_by_trace(spans: Sequence[SpanRecord]
                   ) -> Dict[int, List[SpanRecord]]:
    grouped: Dict[int, List[SpanRecord]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    for records in grouped.values():
        records.sort(key=lambda s: s.t0)
    return grouped
