"""Sampled per-request tracing across the serving fleet.

A trace follows one request through the pipeline:
``enqueue -> flush -> transport -> exec (walk hops / top-k) -> render
-> respond``.  The parent assigns each sampled request a nonzero
31-bit trace id (int32-safe, so it rides the flat ring codec
unchanged), threads the ids through the batch that the scheduler
flushes, and the worker echoes them back alongside **batch-level span
records** — ``(kind, t0, dur)`` float64 triples stamped with
``time.perf_counter()``, which is CLOCK_MONOTONIC on Linux and hence
directly comparable across the parent and its children.

Spans from the worker cover the whole coalesced batch (one walk serves
every request in the flush); the parent attributes them to each
sampled trace id in the batch, which is exactly the cost model —
a request pays for the batch it rode in.

Exports: JSONL (one span per line, grep-able) and Chrome
``trace_event`` JSON (load in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import json
import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

# Worker-side span kinds, shipped over the ring as small ints.
# Append-only: ids ride the wire, so reordering breaks mixed-version
# trace decoding.
SPAN_KINDS: Tuple[str, ...] = ("exec", "walk", "topk", "collate", "cascade")
_KIND_INDEX = {name: i for i, name in enumerate(SPAN_KINDS)}

# Span name of a per-request row record (one per sampled row of a
# batch — see attribute_rows).
ROW_SPAN = "row"


def span_kind_id(name: str) -> int:
    return _KIND_INDEX[name]


def span_kind_name(kind_id: int) -> str:
    if 0 <= kind_id < len(SPAN_KINDS):
        return SPAN_KINDS[kind_id]
    return f"kind{kind_id}"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span of one trace.

    ``args`` carries optional structured attributes (per-row records
    put their frontier widths and walk/top-k shares here); it is
    omitted from the JSON when empty so plain spans serialize exactly
    as before.
    """

    trace_id: int
    name: str          # enqueue|flush|transport|exec|walk|topk|render|respond|row
    role: str          # which process/thread recorded it
    t0: float          # perf_counter seconds
    dur: float         # seconds
    args: Optional[dict] = field(default=None, compare=False)

    def to_dict(self) -> dict:
        out = {"trace_id": self.trace_id, "name": self.name,
               "role": self.role, "t0": self.t0, "dur": self.dur}
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Samples requests and buffers their spans (bounded).

    ``sample`` in [0, 1]: 0 disables tracing entirely (``maybe_start``
    returns 0 and recording is a no-op); 1.0 traces every request.
    Sampling uses a private ``random.Random`` so it never perturbs
    global RNG state — the determinism differential suites run with
    sampling at 1.0, where no randomness is consumed at all.

    Without a sink the deque is the only store: when it is full the
    oldest span is evicted and counted as dropped (drain-or-drop, the
    bench-friendly mode).  With :meth:`attach_sink` every span is
    handed to a :class:`~repro.telemetry.sink.TraceSink`'s bounded
    queue for streaming JSONL export — the deque then keeps only a
    *recent window* for ``peek``/``drain``, and a span counts as
    dropped only if the sink queue rejected it.  Either way, drops are
    mirrored into the fleet's ``trace_dropped_total`` counter when a
    metric block is attached — never silent.
    """

    def __init__(self, sample: float = 0.0, capacity: int = 4096,
                 seed: int = 0, sink=None, metrics=None) -> None:
        self.sample = float(sample)
        self._rng = random.Random(seed)
        self._id_rng = random.Random(seed ^ 0x5EED)
        self._lock = threading.Lock()
        self._spans: Deque[SpanRecord] = deque(maxlen=max(1, capacity))
        self.started = 0
        self.dropped = 0
        self._sink = sink
        self._metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.sample > 0.0

    @property
    def sink(self):
        return self._sink

    def attach_sink(self, sink) -> None:
        """Stream every subsequent span to ``sink`` (a TraceSink)."""
        self._sink = sink

    def attach_metrics(self, metrics) -> None:
        """Mirror drops into ``metrics``' ``trace_dropped_total``."""
        self._metrics = metrics

    # ------------------------------------------------------------------
    def maybe_start(self) -> int:
        """Return a fresh nonzero 31-bit trace id for a sampled
        request, or 0 (not sampled / tracing off)."""
        if self.sample <= 0.0:
            return 0
        if self.sample < 1.0 and self._rng.random() >= self.sample:
            return 0
        with self._lock:
            self.started += 1
            # Nonzero, int32-positive: rides the ring codec as-is.
            return self._id_rng.randrange(1, 1 << 31)

    def record(self, trace_id: int, name: str, role: str, t0: float,
               dur: float, args: Optional[dict] = None) -> None:
        if trace_id == 0:
            return
        self._push(SpanRecord(trace_id=trace_id, name=name, role=role,
                              t0=float(t0), dur=float(dur), args=args))

    def _push(self, span: SpanRecord) -> None:
        delivered = True
        if self._sink is not None:
            delivered = self._sink.offer(span)
        with self._lock:
            if (self._sink is None
                    and len(self._spans) == self._spans.maxlen):
                self.dropped += 1
                self._count_drop()
            self._spans.append(span)
        if not delivered:
            with self._lock:
                self.dropped += 1
            # The sink already counted trace_dropped_total for its own
            # rejection when it shares the metric block; count here
            # only when the tracer has one and the sink does not.
            if (self._metrics is not None
                    and getattr(self._sink, "metrics", None) is None):
                self._metrics.count("trace_dropped_total")

    def _count_drop(self) -> None:
        if self._metrics is not None:
            self._metrics.count("trace_dropped_total")

    def record_batch_spans(self, trace_ids: Sequence[int], role: str,
                           spans: Iterable[Tuple[int, float, float]]
                           ) -> None:
        """Attribute worker batch-level spans to every sampled trace
        id that rode the batch."""
        live = [tid for tid in trace_ids if tid]
        if not live:
            return
        for kind_id, t0, dur in spans:
            name = span_kind_name(int(kind_id))
            for tid in live:
                self.record(tid, name, role, t0, dur)

    def record_rows(self, records: Sequence[tuple], role: str,
                    t0: float = 0.0) -> None:
        """Record per-request row records (see :func:`attribute_rows`)
        as ``"row"`` spans whose args carry the frontier widths and the
        walk/top-k duration shares."""
        for trace_id, widths, walk_s, topk_s in records:
            if not trace_id:
                continue
            self._push(SpanRecord(
                trace_id=int(trace_id), name=ROW_SPAN, role=role,
                t0=float(t0), dur=float(walk_s) + float(topk_s),
                args={"frontier": [int(w) for w in widths],
                      "walk_s": float(walk_s),
                      "topk_s": float(topk_s)}))

    # ------------------------------------------------------------------
    def drain(self) -> List[SpanRecord]:
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
            return spans

    def peek(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)


# ----------------------------------------------------------------------
# Per-request cost attribution
# ----------------------------------------------------------------------
def attribute_rows(traces: Sequence[int], ks: Sequence[int],
                   frontier: Sequence, spans: Sequence[tuple]
                   ) -> List[tuple]:
    """Split one batch's walk/top-k cost across its sampled rows.

    ``frontier`` is the walk's per-hop surviving-path census — one
    array of per-row path counts per executed hop (captured through
    ``RolloutWorkspace.row_frontier``).  The walk's wall time is
    attributed to each row proportional to its share of the total
    frontier mass (a request whose paths survive wide and deep pays
    more of the batch than one that dead-ends at hop 1), and the
    top-k time proportional to its ``k`` share — exact batch total,
    per-request resolution.

    Returns one ``(trace_id, widths, walk_s, topk_s)`` tuple per
    *sampled* row (``widths`` is the row's per-hop path count).  Rows
    with trace id 0 are skipped; ``spans`` are the batch's
    ``(kind_id, t0, dur)`` triples (walk/top-k located by kind).
    """
    n = len(ks)
    if n == 0:
        return []
    walk_s = sum(float(dur) for kind, _, dur in spans
                 if int(kind) == _KIND_INDEX["walk"])
    topk_s = sum(float(dur) for kind, _, dur in spans
                 if int(kind) == _KIND_INDEX["topk"])
    hops = list(frontier) if frontier else []
    mass = [0.0] * n
    for census in hops:
        for row in range(n):
            mass[row] += float(census[row])
    total_mass = sum(mass)
    total_k = float(sum(ks)) or 1.0
    records: List[tuple] = []
    for row, trace_id in enumerate(traces):
        if not trace_id:
            continue
        widths = tuple(int(census[row]) for census in hops)
        walk_share = (mass[row] / total_mass if total_mass > 0.0
                      else 1.0 / n)
        records.append((int(trace_id), widths,
                        walk_s * walk_share,
                        topk_s * (float(ks[row]) / total_k)))
    return records


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Sequence[SpanRecord]) -> str:
    """One JSON object per line, sorted by start time."""
    ordered = sorted(spans, key=lambda s: (s.t0, s.trace_id))
    return "\n".join(json.dumps(s.to_dict(), sort_keys=True)
                     for s in ordered) + ("\n" if ordered else "")


def spans_to_chrome_trace(spans: Sequence[SpanRecord]) -> dict:
    """Chrome ``trace_event`` format: complete ("X") events, one
    pseudo-thread per recording role, timestamps rebased to the
    earliest span so the viewer opens at t=0."""
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(s.t0 for s in spans)
    roles = sorted({s.role for s in spans})
    tid_of = {role: i + 1 for i, role in enumerate(roles)}
    events: List[dict] = [
        {"ph": "M", "name": "thread_name", "pid": 1,
         "tid": tid_of[role], "args": {"name": role}}
        for role in roles]
    for s in sorted(spans, key=lambda s: s.t0):
        events.append({
            "ph": "X", "name": s.name, "cat": "request",
            "pid": 1, "tid": tid_of[s.role],
            "ts": (s.t0 - base) * 1e6, "dur": s.dur * 1e6,
            "args": {"trace_id": s.trace_id}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_by_trace(spans: Sequence[SpanRecord]
                   ) -> Dict[int, List[SpanRecord]]:
    grouped: Dict[int, List[SpanRecord]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    for records in grouped.values():
        records.sort(key=lambda s: s.t0)
    return grouped
