"""Optional stdlib HTTP ``/metrics`` endpoint for the serving parent.

A daemon :class:`ThreadingHTTPServer` that renders the registry's
fleet snapshot on demand — ``/metrics`` (Prometheus text),
``/metrics.json`` (JSON snapshot; add ``?window=SECONDS`` for the
rolling-window delta when the owner wired a window function), and
``/healthz`` (200 ``ok`` / 503 degraded when any writer block reads
torn or its writer process is dead).  Zero dependencies; ``port=0``
binds an ephemeral port (read it back from ``endpoint.port``), which
is what the tests and CI smoke use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from .exporters import json_snapshot, prometheus_text
from .registry import FleetSnapshot


class MetricsEndpoint:
    """Serves live metrics snapshots over HTTP until closed.

    ``window_fn`` (optional) maps a window length in seconds (or None
    for the full retained span) to a
    :class:`~repro.telemetry.window.WindowSnapshot` or None; it backs
    ``/metrics.json?window=``.  ``health_fn`` (optional) returns a
    dict with an ``ok`` bool (see
    :meth:`~repro.telemetry.registry.MetricsRegistry.health`); without
    one ``/healthz`` is unconditionally ``ok``.  ``extra_fn``
    (optional) returns a JSON-safe dict merged into ``/metrics.json``
    under a ``"serving"`` key — the server uses it to expose state the
    shared-memory plane can't carry, like per-version entry counts of
    the explanation cache and the walk memo.
    """

    def __init__(self, snapshot_fn: Callable[[], FleetSnapshot],
                 host: str = "127.0.0.1", port: int = 0,
                 namespace: str = "reks",
                 window_fn: Optional[Callable] = None,
                 health_fn: Optional[Callable[[], dict]] = None,
                 extra_fn: Optional[Callable[[], dict]] = None) -> None:
        self._snapshot_fn = snapshot_fn
        self._namespace = namespace
        self._window_fn = window_fn
        self._health_fn = health_fn
        self._extra_fn = extra_fn
        endpoint = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                parts = urlsplit(self.path)
                path = parts.path
                params = parse_qs(parts.query)
                try:
                    status = 200
                    if path in ("/metrics", "/"):
                        body = prometheus_text(
                            endpoint._snapshot_fn(),
                            namespace=endpoint._namespace)
                        ctype = "text/plain; version=0.0.4"
                    elif path == "/metrics.json":
                        status, body = endpoint._metrics_json(params)
                        ctype = "application/json"
                    elif path == "/healthz":
                        status, body, ctype = endpoint._healthz()
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # surface, don't hang the probe
                    status = 500
                    body = json.dumps({"error": repr(exc)})
                    ctype = "application/json"
                payload = body.encode()
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:  # quiet
                pass

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="reks-metrics-http",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def _metrics_json(self, params) -> tuple:
        raw = params.get("window", [None])[0]
        if raw is None:
            if self._extra_fn is None:
                return 200, json_snapshot(self._snapshot_fn())
            payload = self._snapshot_fn().to_dict()
            payload["serving"] = self._extra_fn()
            return 200, json.dumps(payload, indent=2, sort_keys=True)
        if self._window_fn is None:
            return 400, json.dumps(
                {"error": "no rolling window configured on this "
                          "endpoint"})
        seconds = float(raw) if raw not in ("", "all") else None
        win = self._window_fn(seconds)
        if win is None:  # fewer than two samples retained yet
            return 200, json.dumps({"window_seconds": seconds,
                                    "available": False})
        return 200, json.dumps(win.to_dict(), indent=2, sort_keys=True)

    def _healthz(self) -> tuple:
        if self._health_fn is None:
            return 200, "ok\n", "text/plain"
        health = self._health_fn()
        if health.get("ok", True):
            return 200, "ok\n", "text/plain"
        return (503, json.dumps(health, indent=2, sort_keys=True),
                "application/json")

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/metrics"

    @property
    def alive(self) -> bool:
        """Whether the serving thread is still running (False after a
        clean :meth:`close` — the no-dangling-thread contract)."""
        return self._thread.is_alive()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
