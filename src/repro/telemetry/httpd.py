"""Optional stdlib HTTP ``/metrics`` endpoint for the serving parent.

A daemon :class:`ThreadingHTTPServer` that renders the registry's
fleet snapshot on demand — ``/metrics`` (Prometheus text) and
``/metrics.json`` (JSON snapshot).  Zero dependencies; ``port=0``
binds an ephemeral port (read it back from ``endpoint.port``), which
is what the tests and CI smoke use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from .exporters import json_snapshot, prometheus_text
from .registry import FleetSnapshot


class MetricsEndpoint:
    """Serves live metrics snapshots over HTTP until closed."""

    def __init__(self, snapshot_fn: Callable[[], FleetSnapshot],
                 host: str = "127.0.0.1", port: int = 0,
                 namespace: str = "reks") -> None:
        self._snapshot_fn = snapshot_fn
        self._namespace = namespace
        endpoint = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                path = self.path.split("?", 1)[0]
                try:
                    if path in ("/metrics", "/"):
                        body = prometheus_text(
                            endpoint._snapshot_fn(),
                            namespace=endpoint._namespace)
                        ctype = "text/plain; version=0.0.4"
                    elif path == "/metrics.json":
                        body = json_snapshot(endpoint._snapshot_fn())
                        ctype = "application/json"
                    elif path == "/healthz":
                        body, ctype = "ok\n", "text/plain"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # surface, don't hang the probe
                    body = json.dumps({"error": repr(exc)})
                    payload = body.encode()
                    self.send_response(500)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length",
                                     str(len(payload)))
                    self.end_headers()
                    self.wfile.write(payload)
                    return
                payload = body.encode()
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:  # quiet
                pass

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="reks-metrics-http",
                                        daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
