"""Fleet-wide telemetry plane: shared-memory metrics, request tracing,
and SLO-gated exporters.

- :mod:`repro.telemetry.block` — per-process seqlock metric blocks
  (counters / gauges / log-bucketed histograms) over shared memory,
  plus in-process :class:`LocalHistogram` / :class:`Reservoir`.
- :mod:`repro.telemetry.registry` — parent-side fleet registry:
  create, retire (respawn-safe, no double counting), merge.
- :mod:`repro.telemetry.trace` — sampled per-request trace ids and
  span records riding the ring codec; JSONL + Chrome exports.
- :mod:`repro.telemetry.exporters` — Prometheus text / JSON snapshot
  and declarative SLO evaluation.
- :mod:`repro.telemetry.httpd` — optional stdlib ``/metrics`` HTTP
  endpoint.

See ``src/repro/telemetry/README.md`` for layout and merge semantics.
"""

from .block import (BlockManifest, BlockSnapshot, HistSnapshot,
                    LocalHistogram, MetricBlock, MetricSchema, Reservoir,
                    bucket_index, bucket_upper_edges, fleet_schema,
                    gather_shard_counter, merge_hists, walk_hop_hist)
from .exporters import (SLO, SLOResult, evaluate_slos, json_snapshot,
                        prometheus_text, serving_slos, slo_failures,
                        split_labels)
from .httpd import MetricsEndpoint
from .registry import FleetSnapshot, MetricsRegistry
from .trace import (SPAN_KINDS, SpanRecord, Tracer, span_kind_id,
                    span_kind_name, spans_by_trace, spans_to_chrome_trace,
                    spans_to_jsonl)

__all__ = [
    "BlockManifest", "BlockSnapshot", "HistSnapshot", "LocalHistogram",
    "MetricBlock", "MetricSchema", "Reservoir", "bucket_index",
    "bucket_upper_edges", "fleet_schema", "gather_shard_counter",
    "merge_hists", "walk_hop_hist",
    "SLO", "SLOResult", "evaluate_slos", "json_snapshot",
    "prometheus_text", "serving_slos", "slo_failures", "split_labels",
    "MetricsEndpoint", "FleetSnapshot", "MetricsRegistry",
    "SPAN_KINDS", "SpanRecord", "Tracer", "span_kind_id",
    "span_kind_name", "spans_by_trace", "spans_to_chrome_trace",
    "spans_to_jsonl",
]
