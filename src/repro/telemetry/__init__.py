"""Fleet-wide telemetry plane: shared-memory metrics, request tracing,
and SLO-gated exporters.

- :mod:`repro.telemetry.block` — per-process seqlock metric blocks
  (counters / gauges / log-bucketed histograms) over shared memory,
  plus in-process :class:`LocalHistogram` / :class:`Reservoir`.
- :mod:`repro.telemetry.registry` — parent-side fleet registry:
  create, retire (respawn-safe, no double counting), merge, health.
- :mod:`repro.telemetry.trace` — sampled per-request trace ids, span
  records riding the ring codec, and per-row cost attribution.
- :mod:`repro.telemetry.sink` — streaming JSONL trace sink with
  bounded handoff and size/age rotation.
- :mod:`repro.telemetry.window` — rolling-window aggregation over
  fleet snapshots (windowed rates/quantiles, SLO burn rates).
- :mod:`repro.telemetry.exporters` — Prometheus text / JSON snapshot
  and declarative SLO evaluation (cumulative or windowed).
- :mod:`repro.telemetry.httpd` — optional stdlib ``/metrics`` HTTP
  endpoint (``/metrics.json?window=``, ``/healthz``).
- :mod:`repro.telemetry.top` — pure live-fleet frame renderer behind
  ``cli top``.

See ``src/repro/telemetry/README.md`` for layout and merge semantics.
"""

from .block import (BlockManifest, BlockSnapshot, HistSnapshot,
                    LocalHistogram, MetricBlock, MetricSchema, Reservoir,
                    bucket_index, bucket_upper_edges, fleet_schema,
                    gather_shard_counter, merge_hists, walk_hop_hist)
from .exporters import (SLO, SLOResult, evaluate_slos, json_snapshot,
                        prometheus_text, serving_slos, slo_failures,
                        split_labels)
from .httpd import MetricsEndpoint
from .registry import FleetSnapshot, MetricsRegistry
from .sink import TraceSink
from .top import render_top, shard_heat
from .trace import (ROW_SPAN, SPAN_KINDS, SpanRecord, Tracer,
                    attribute_rows, span_kind_id, span_kind_name,
                    spans_by_trace, spans_to_chrome_trace,
                    spans_to_jsonl)
from .window import (RollingWindow, WindowSampler, WindowSnapshot,
                     hist_delta, hist_from_dict)

__all__ = [
    "BlockManifest", "BlockSnapshot", "HistSnapshot", "LocalHistogram",
    "MetricBlock", "MetricSchema", "Reservoir", "bucket_index",
    "bucket_upper_edges", "fleet_schema", "gather_shard_counter",
    "merge_hists", "walk_hop_hist",
    "SLO", "SLOResult", "evaluate_slos", "json_snapshot",
    "prometheus_text", "serving_slos", "slo_failures", "split_labels",
    "MetricsEndpoint", "FleetSnapshot", "MetricsRegistry",
    "TraceSink", "render_top", "shard_heat",
    "ROW_SPAN", "SPAN_KINDS", "SpanRecord", "Tracer", "attribute_rows",
    "span_kind_id", "span_kind_name", "spans_by_trace",
    "spans_to_chrome_trace", "spans_to_jsonl",
    "RollingWindow", "WindowSampler", "WindowSnapshot", "hist_delta",
    "hist_from_dict",
]
