"""Rolling-window aggregation over fleet snapshots.

Every metric in the fleet plane is cumulative-since-start — the right
shape for shared-memory seqlock blocks (writers only ever add), but
useless for questions like "what was p99 over the *last 30 seconds* of
a two-hour soak".  This module derives windowed views without touching
the writers: a :class:`RollingWindow` keeps a bounded ring of
timestamped :class:`~repro.telemetry.registry.FleetSnapshot` samples,
and :meth:`RollingWindow.window` subtracts the snapshot at the window's
start from the one at its end:

* **counters** difference exactly (they are monotone — the registry's
  retire-and-fold keeps them so across worker respawns);
* **histograms** difference bucket-wise (buckets are monotone too),
  with exact windowed ``count``/``sum``/``mean`` — the windowed
  ``min``/``max`` are *bucket-edge bounds* (the cumulative extremes
  can lie outside the window), so windowed quantiles are accurate to
  one log-2 bucket, which is the same resolution every cumulative
  quantile already has;
* **gauges** are point-in-time: the window reports the end sample's.

A :class:`WindowSnapshot` duck-types the ``counter()`` / ``hist()``
interface of :class:`FleetSnapshot`, so
:func:`repro.telemetry.exporters.evaluate_slos` evaluates the same
declarative SLOs against a window (``evaluate_slos(snapshot, slos,
window=win)``) — that is what turns a cumulative gate into a
burn-rate gate.

:class:`WindowSampler` is the optional background thread that feeds a
window from a snapshot function at a fixed interval (the serving
parent runs one when ``window_interval_ms`` is set).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

import numpy as np

from .block import HIST_BUCKETS, HistSnapshot, bucket_upper_edges
from .registry import FleetSnapshot


def hist_delta(end: HistSnapshot,
               start: Optional[HistSnapshot]) -> HistSnapshot:
    """End-minus-start histogram over one window.

    Bucket counts and ``count``/``sum`` subtract exactly.  The window's
    true min/max are unknowable from cumulative extremes, so they are
    bounded by the edges of the lowest/highest bucket that gained mass
    — quantiles stay within one log-2 bucket of exact.
    """
    if start is None or start.count == 0:
        return end
    buckets = np.maximum(end.buckets - start.buckets, 0)
    count = max(int(end.count) - int(start.count), 0)
    total = max(float(end.sum) - float(start.sum), 0.0)
    if count == 0:
        return HistSnapshot(count=0, sum=0.0, min=0.0, max=0.0,
                            buckets=np.zeros(HIST_BUCKETS,
                                             dtype=np.int64))
    edges = bucket_upper_edges()
    nz = np.flatnonzero(buckets)
    lo = float(edges[nz[0] - 1]) if nz.size and nz[0] > 0 else 0.0
    hi = float(edges[nz[-1]]) if nz.size else 0.0
    # The cumulative extremes still bound the window when they tighten
    # the bucket edges (e.g. every observation landed in one bucket).
    lo = max(lo, float(end.min) if end.count else lo)
    hi = min(hi, float(end.max)) if end.count else hi
    if hi < lo:
        lo = hi
    return HistSnapshot(count=count, sum=total, min=lo, max=hi,
                        buckets=buckets)


def hist_from_dict(payload: dict) -> HistSnapshot:
    """Rebuild a :class:`HistSnapshot` from ``HistSnapshot.to_dict``
    output (the JSON the ``/metrics.json`` endpoint serves) — lets a
    remote reader (``cli top``) window histograms it only has as
    JSON."""
    edges = bucket_upper_edges()
    buckets = np.zeros(HIST_BUCKETS, dtype=np.int64)
    index = {float(edge): i for i, edge in enumerate(edges)}
    for edge, n in payload.get("buckets", []):
        i = index.get(float(edge))
        if i is not None:
            buckets[i] = int(n)
    return HistSnapshot(count=int(payload.get("count", 0)),
                        sum=float(payload.get("sum", 0.0)),
                        min=float(payload.get("min", 0.0)),
                        max=float(payload.get("max", 0.0)),
                        buckets=buckets)


class WindowSnapshot:
    """Delta view between two fleet snapshots (end minus start).

    Implements the ``counter(name)`` / ``hist(name)`` interface the
    SLO evaluator consumes, plus per-second ``rate`` helpers for live
    views.
    """

    def __init__(self, start: FleetSnapshot, end: FleetSnapshot) -> None:
        self.start = start
        self.end = end
        self.seconds = max(float(end.generated_at)
                           - float(start.generated_at), 0.0)
        self.counters: Dict[str, int] = {}
        for name, value in end.counters.items():
            delta = int(value) - int(start.counters.get(name, 0))
            if delta > 0:
                self.counters[name] = delta
        self.hists: Dict[str, HistSnapshot] = {}
        for name, hist in end.hists.items():
            delta = hist_delta(hist, start.hists.get(name))
            if delta.count:
                self.hists[name] = delta
        self.gauges = end.gauges

    # -- FleetSnapshot duck interface (what evaluate_slos reads) -------
    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def hist(self, name: str) -> Optional[HistSnapshot]:
        return self.hists.get(name)

    # -- windowed extras ----------------------------------------------
    def rate(self, name: str) -> float:
        """Counter increments per second over the window."""
        if self.seconds <= 0.0:
            return 0.0
        return self.counter(name) / self.seconds

    def to_dict(self) -> dict:
        return {
            "window_seconds": self.seconds,
            "start_at": self.start.generated_at,
            "end_at": self.end.generated_at,
            "counters": dict(sorted(self.counters.items())),
            "rates": {name: self.rate(name)
                      for name in sorted(self.counters)},
            "gauges": {name: dict(sorted(per_role.items()))
                       for name, per_role in sorted(self.gauges.items())},
            "histograms": {name: hist.to_dict()
                           for name, hist in sorted(self.hists.items())},
        }


class RollingWindow:
    """Bounded ring of timestamped fleet snapshots.

    ``record`` appends (typically from a :class:`WindowSampler` or at
    phase boundaries of a bench); ``window(seconds)`` pairs the newest
    sample with the newest one at least ``seconds`` older and returns
    their delta.  ``seconds=None`` spans the whole retained ring.
    """

    def __init__(self, capacity: int = 512) -> None:
        self._lock = threading.Lock()
        self._snaps: Deque[FleetSnapshot] = deque(maxlen=max(2, capacity))

    def record(self, snapshot: FleetSnapshot) -> None:
        with self._lock:
            self._snaps.append(snapshot)

    def __len__(self) -> int:
        with self._lock:
            return len(self._snaps)

    @property
    def span_seconds(self) -> float:
        with self._lock:
            if len(self._snaps) < 2:
                return 0.0
            return (self._snaps[-1].generated_at
                    - self._snaps[0].generated_at)

    def window(self, seconds: Optional[float] = None
               ) -> Optional[WindowSnapshot]:
        """The delta ending at the newest sample; None with < 2
        samples.  The start is the *newest* sample at least ``seconds``
        older than the end (so the window covers at least the asked
        span), clamped to the oldest retained sample."""
        with self._lock:
            if len(self._snaps) < 2:
                return None
            snaps = tuple(self._snaps)
        end = snaps[-1]
        start = snaps[0]
        if seconds is not None and seconds > 0:
            cutoff = end.generated_at - float(seconds)
            for snap in snaps[-2::-1]:
                if snap.generated_at <= cutoff:
                    start = snap
                    break
        return WindowSnapshot(start, end)


class WindowSampler:
    """Daemon thread feeding a :class:`RollingWindow` at an interval.

    Snapshot failures are swallowed (a torn read mid-shutdown must not
    kill the sampler); ``close`` wakes and joins the thread.
    """

    def __init__(self, snapshot_fn: Callable[[], FleetSnapshot],
                 window: RollingWindow, interval_s: float) -> None:
        self.window = window
        self.interval_s = max(0.01, float(interval_s))
        self._snapshot_fn = snapshot_fn
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="reks-window-sampler",
                                        daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.window.record(self._snapshot_fn())
            except Exception:  # pragma: no cover - shutdown races
                pass

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
