"""Fixed-layout shared-memory metric blocks with seqlock snapshots.

One :class:`MetricBlock` is a small shared-memory segment holding a
fixed set of counters (int64), gauges (float64), and log-bucketed
latency histograms, laid out from a :class:`MetricSchema` so any
process that holds the :class:`BlockManifest` can attach and read it
zero-copy.  Every block has exactly **one writer process** (the worker,
the updater child, or the serving parent) and any number of readers.

Publish discipline mirrors the request/response rings
(:mod:`repro.runtime.rings`): the writer is lock-free across processes
and publishes each mutation under a **seqlock** — it bumps the header
sequence word to odd, mutates, and bumps it back to even — so a reader
that copies the arrays while the sequence is even and unchanged has a
consistent snapshot (count == bucket mass, sum matches count), and
otherwise retries.  In-process writer threads serialize on an ordinary
lock (mutations are a few scalar stores; contention is negligible
relative to a batch execution).

Histograms are log-bucketed: bucket ``i`` holds observations in
``(2**(LO+i-1), 2**(LO+i)]`` seconds, spanning ~1µs to ~2^35s in 56
buckets (448 bytes each) with exact ``count``/``sum`` and running
``min``/``max`` — quantiles interpolate inside a bucket and clamp to
the observed extremes, so memory stays flat at any request volume.
:class:`LocalHistogram` and :class:`Reservoir` reuse the same bucket
math for purely in-process accounting (``repro.serving.stats``).

Backends: ``shm`` (POSIX shared memory) with an ``mmap`` temp-file
fallback, same ladder as the table plane.  ``untrack`` on attach has
the plane's semantics: False for multiprocessing children (they share
the creator's resource tracker), True only for foreign interpreters.
"""

from __future__ import annotations

import math
import mmap as _mmap
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

_I64 = np.dtype("<i8")
_F64 = np.dtype("<f8")

_MAGIC = 0x524B4D42  # "RKMB"
_HEADER_WORDS = 8    # [magic, seq, pid, reserved*5]
_SEQ = 1
_PID = 2

# Log-bucket geometry (seconds).  Bucket i covers
# (2**(LO+i-1), 2**(LO+i)]; i=0 also absorbs <= 0 and underflow,
# the last bucket absorbs overflow.
HIST_BUCKETS = 56
_EXP_LO = -20  # first upper edge = 2**-20 s ~ 0.95 us


def bucket_index(value: float) -> int:
    """Bucket of one observation (clamped into range)."""
    if value <= 0.0:
        return 0
    exp = math.frexp(value)[1]  # value in [2**(exp-1), 2**exp)
    idx = exp - _EXP_LO
    if idx < 0:
        return 0
    if idx >= HIST_BUCKETS:
        return HIST_BUCKETS - 1
    return idx


def bucket_upper_edges() -> np.ndarray:
    """Upper edge (seconds) of each bucket (last is open-ended)."""
    return np.ldexp(1.0, np.arange(HIST_BUCKETS) + _EXP_LO)


@dataclass(frozen=True)
class MetricSchema:
    """Ordered metric names; fixes a block's byte layout.

    Names may carry Prometheus-style labels inline
    (``gather_rows_total{shard=3}``, ``walk_hop_seconds{hop=1}``) —
    the exporters parse them back out; the block treats the full
    string as the key.
    """

    counters: Tuple[str, ...] = ()
    gauges: Tuple[str, ...] = ()
    histograms: Tuple[str, ...] = ()

    def nbytes(self) -> int:
        return (_HEADER_WORDS * 8
                + len(self.counters) * 8
                + len(self.gauges) * 8
                + len(self.histograms) * (HIST_BUCKETS + 3) * 8
                + len(self.histograms) * 8)


@dataclass(frozen=True)
class BlockManifest:
    """Everything a peer process needs to attach a block."""

    kind: str          # "shm" | "mmap"
    name: str          # segment name or file path
    role: str          # fleet-unique writer role ("worker0", "updater", ...)
    schema: MetricSchema
    nbytes: int


@dataclass(frozen=True)
class HistSnapshot:
    """Consistent copy of one histogram (times in seconds)."""

    count: int
    sum: float
    min: float
    max: float
    buckets: np.ndarray = field(repr=False)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile, clamped to the observed min/max."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        edges = bucket_upper_edges()
        cum = 0
        for i in range(HIST_BUCKETS):
            n = int(self.buckets[i])
            if n == 0:
                continue
            if cum + n >= target:
                lo = edges[i - 1] if i else 0.0
                hi = edges[i]
                frac = (target - cum) / n
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return float(min(max(value, self.min), self.max))
            cum += n
        return float(self.max)

    def to_dict(self) -> dict:
        edges = bucket_upper_edges()
        nz = np.flatnonzero(self.buckets)
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [[float(edges[i]), int(self.buckets[i])]
                        for i in nz],
        }


def merge_hists(parts) -> HistSnapshot:
    """Bucket-wise merge of histogram snapshots (sum-preserving)."""
    buckets = np.zeros(HIST_BUCKETS, dtype=np.int64)
    count, total = 0, 0.0
    lo, hi = math.inf, -math.inf
    for part in parts:
        if part is None or part.count == 0:
            continue
        buckets += part.buckets
        count += part.count
        total += part.sum
        lo = min(lo, part.min)
        hi = max(hi, part.max)
    if count == 0:
        lo = hi = 0.0
    return HistSnapshot(count=count, sum=total, min=lo, max=hi,
                        buckets=buckets)


@dataclass(frozen=True)
class BlockSnapshot:
    """Seqlock-consistent copy of one block's metrics."""

    role: str
    pid: int
    torn: bool
    counters: Dict[str, int]
    gauges: Dict[str, float]
    hists: Dict[str, HistSnapshot]


class _MMapSegment:
    """Minimal file-backed stand-in for SharedMemory (same duck API)."""

    def __init__(self, path: str, size: int, create: bool) -> None:
        self.name = path
        flags = os.O_RDWR | (os.O_CREAT if create else 0)
        fd = os.open(path, flags, 0o600)
        try:
            if create:
                os.ftruncate(fd, size)
            self._mmap = _mmap.mmap(fd, size)
        finally:
            os.close(fd)
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        try:
            self.buf.release()
            self._mmap.close()
        except (BufferError, ValueError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        try:
            os.unlink(self.name)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _attach_shm(name: str, untrack: bool):
    """Attach an existing POSIX segment (same semantics as the plane's
    helper: 3.13+ disables tracking at attach; earlier interpreters
    unregister after the fact for foreign attachers)."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=not untrack)
    except TypeError:  # pragma: no cover - pre-3.13
        shm = shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


class MetricBlock:
    """One writer process's metric arrays over a shared segment."""

    def __init__(self, segment, manifest: BlockManifest, owner: bool,
                 writer: bool) -> None:
        self._segment = segment
        self.manifest = manifest
        self._owner = owner
        self._closed = False
        self._wlock = threading.Lock()
        schema = manifest.schema
        buf = segment.buf
        offset = 0
        self._hdr = np.frombuffer(buf, dtype=_I64, count=_HEADER_WORDS,
                                  offset=offset)
        offset += _HEADER_WORDS * 8
        c, g, h = (len(schema.counters), len(schema.gauges),
                   len(schema.histograms))
        self._counters = np.frombuffer(buf, dtype=_I64, count=max(c, 1),
                                       offset=offset)[:c]
        offset += c * 8
        self._gauges = np.frombuffer(buf, dtype=_F64, count=max(g, 1),
                                     offset=offset)[:g]
        offset += g * 8
        self._hbuckets = np.frombuffer(
            buf, dtype=_I64, count=max(h * HIST_BUCKETS, 1),
            offset=offset)[:h * HIST_BUCKETS].reshape(h, HIST_BUCKETS)
        offset += h * HIST_BUCKETS * 8
        self._hcount = np.frombuffer(buf, dtype=_I64, count=max(h, 1),
                                     offset=offset)[:h]
        offset += h * 8
        self._hsum = np.frombuffer(buf, dtype=_F64, count=max(h, 1),
                                   offset=offset)[:h]
        offset += h * 8
        self._hmin = np.frombuffer(buf, dtype=_F64, count=max(h, 1),
                                   offset=offset)[:h]
        offset += h * 8
        self._hmax = np.frombuffer(buf, dtype=_F64, count=max(h, 1),
                                   offset=offset)[:h]
        self._ci = {name: i for i, name in enumerate(schema.counters)}
        self._gi = {name: i for i, name in enumerate(schema.gauges)}
        self._hi = {name: i for i, name in enumerate(schema.histograms)}
        if writer:
            self._hdr[_PID] = os.getpid()

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, schema: MetricSchema, role: str,
               backend: str = "auto") -> "MetricBlock":
        nbytes = schema.nbytes()
        segment = None
        kind = backend
        if backend in ("auto", "shm"):
            try:
                from multiprocessing import shared_memory
                segment = shared_memory.SharedMemory(create=True,
                                                     size=nbytes)
                kind = "shm"
            except (ImportError, OSError):
                if backend == "shm":
                    raise
        if segment is None:
            fd, path = tempfile.mkstemp(prefix=f"reks-metrics-{role}-",
                                        suffix=".bin")
            os.close(fd)
            segment = _MMapSegment(path, nbytes, create=True)
            kind = "mmap"
        segment.buf[:nbytes] = b"\x00" * nbytes
        name = segment.name
        manifest = BlockManifest(kind=kind, name=name, role=role,
                                 schema=schema, nbytes=nbytes)
        block = cls(segment, manifest, owner=True, writer=True)
        block._hdr[0] = _MAGIC
        if len(schema.histograms):
            block._hmin[:] = math.inf
            block._hmax[:] = -math.inf
        return block

    @classmethod
    def attach(cls, manifest: BlockManifest, untrack: bool = False,
               writer: bool = True) -> "MetricBlock":
        if manifest.kind == "shm":
            segment = _attach_shm(manifest.name, untrack)
        else:
            segment = _MMapSegment(manifest.name, manifest.nbytes,
                                   create=False)
        return cls(segment, manifest, owner=False, writer=writer)

    # ------------------------------------------------------------------
    # Writer API (single writer process; in-process threads serialize)
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        i = self._ci.get(name)
        if i is None:
            return
        hdr = self._hdr
        with self._wlock:
            hdr[_SEQ] += 1
            self._counters[i] += n
            hdr[_SEQ] += 1

    def gauge(self, name: str, value: float) -> None:
        i = self._gi.get(name)
        if i is None:
            return
        hdr = self._hdr
        with self._wlock:
            hdr[_SEQ] += 1
            self._gauges[i] = value
            hdr[_SEQ] += 1

    def observe(self, name: str, value: float) -> None:
        i = self._hi.get(name)
        if i is None:
            return
        b = bucket_index(value)
        hdr = self._hdr
        with self._wlock:
            hdr[_SEQ] += 1
            self._hbuckets[i, b] += 1
            self._hcount[i] += 1
            self._hsum[i] += value
            if value < self._hmin[i]:
                self._hmin[i] = value
            if value > self._hmax[i]:
                self._hmax[i] = value
            hdr[_SEQ] += 1

    # ------------------------------------------------------------------
    # Reader API
    # ------------------------------------------------------------------
    def snapshot(self, spins: int = 256) -> BlockSnapshot:
        """Seqlock-consistent copy; a writer that died mid-mutation
        (sequence stuck odd) yields a best-effort copy flagged
        ``torn`` after the retry budget."""
        hdr = self._hdr
        torn = True
        for attempt in range(max(1, spins)):
            s0 = int(hdr[_SEQ])
            if s0 & 1:
                time.sleep(0)
                continue
            copies = (self._counters.copy(), self._gauges.copy(),
                      self._hbuckets.copy(), self._hcount.copy(),
                      self._hsum.copy(), self._hmin.copy(),
                      self._hmax.copy())
            if int(hdr[_SEQ]) == s0:
                torn = False
                break
            time.sleep(0)
        else:
            copies = (self._counters.copy(), self._gauges.copy(),
                      self._hbuckets.copy(), self._hcount.copy(),
                      self._hsum.copy(), self._hmin.copy(),
                      self._hmax.copy())
        counters, gauges, hb, hc, hs, hmin, hmax = copies
        schema = self.manifest.schema
        hists = {
            name: HistSnapshot(
                count=int(hc[i]), sum=float(hs[i]),
                min=float(hmin[i]) if hc[i] else 0.0,
                max=float(hmax[i]) if hc[i] else 0.0,
                buckets=hb[i])
            for i, name in enumerate(schema.histograms)}
        return BlockSnapshot(
            role=self.manifest.role, pid=int(hdr[_PID]), torn=torn,
            counters={name: int(counters[i])
                      for i, name in enumerate(schema.counters)},
            gauges={name: float(gauges[i])
                    for i, name in enumerate(schema.gauges)},
            hists=hists)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Drop every numpy view before releasing the buffer.
        for attr in ("_hdr", "_counters", "_gauges", "_hbuckets",
                     "_hcount", "_hsum", "_hmin", "_hmax"):
            setattr(self, attr, None)
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        self.close()
        if not self._owner:
            return
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        return (f"MetricBlock(role={self.manifest.role!r}, "
                f"kind={self.manifest.kind}, "
                f"nbytes={self.manifest.nbytes})")


# ----------------------------------------------------------------------
# In-process companions (no shared memory; same bucket math)
# ----------------------------------------------------------------------
class LocalHistogram:
    """Bounded in-process histogram (``ServerStats``' latency store)."""

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets = np.zeros(HIST_BUCKETS, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.buckets[bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def reset(self) -> None:
        self.buckets[:] = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def snapshot(self) -> HistSnapshot:
        return HistSnapshot(
            count=self.count, sum=self.sum,
            min=self.min if self.count else 0.0,
            max=self.max if self.count else 0.0,
            buckets=self.buckets.copy())


class Reservoir:
    """Fixed-size uniform sample of a stream (exact small-N quantiles).

    Deterministic: replacement indices come from a private
    ``random.Random`` seed, so two runs over the same stream keep the
    same sample — benchmark reruns stay comparable.
    """

    __slots__ = ("_values", "_filled", "_seen", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        import random
        self._values = np.empty(max(1, capacity), dtype=np.float64)
        self._filled = 0
        self._seen = 0
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self._seen += 1
        if self._filled < self._values.size:
            self._values[self._filled] = value
            self._filled += 1
            return
        j = self._rng.randrange(self._seen)
        if j < self._values.size:
            self._values[j] = value

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def capacity(self) -> int:
        return int(self._values.size)

    def values(self) -> np.ndarray:
        return self._values[:self._filled].copy()

    def reset(self) -> None:
        self._filled = 0
        self._seen = 0


# ----------------------------------------------------------------------
# Canonical fleet schema + label helpers
# ----------------------------------------------------------------------
MAX_SHARD_COUNTERS = 64  # matches graphstore.auto_shard_count's cap
MAX_HOP_HISTS = 8


@lru_cache(maxsize=256)
def gather_shard_counter(sid: int) -> str:
    return f"gather_rows_total{{shard={sid}}}"


@lru_cache(maxsize=64)
def walk_hop_hist(hop: int) -> str:
    return f"walk_hop_seconds{{hop={hop}}}"


def fleet_schema(num_shards: int = 0, hops: int = 0) -> MetricSchema:
    """The schema every fleet role shares (unused metrics stay zero).

    One shared schema keeps merge trivial (union by name is identity)
    and lets any role record any metric its layer touches.  Per-shard
    gather counters and per-hop walk histograms are materialized up to
    the store's shard count / the config's path length (capped).
    """
    counters = [
        "requests_total", "batches_total",
        "cache_hits_total", "cache_misses_total",
        "ring_batches_total", "pipe_batches_total",
        "ring_fallbacks_total",
        "worker_respawns_total",
        "exec_batches_total", "exec_rows_total",
        "render_rows_total", "render_deferred_total",
        "gather_calls_total", "gather_rows_total",
        "gather_multi_total", "gather_scratch_allocs_total",
        "traces_sampled_total", "worker_traces_total",
        "trace_dropped_total",
        "swaps_total",
        "online_rounds_total", "online_sessions_total",
        "cascade_candidates_total", "cascade_pruned_frontier_rows_total",
        "dedup_rows_total",
        "walk_memo_hits_total", "walk_memo_misses_total",
        "walk_memo_evictions_total",
        "reachability_rebuilds_total",
    ]
    counters += [gather_shard_counter(sid)
                 for sid in range(min(num_shards, MAX_SHARD_COUNTERS))]
    gauges = ["model_version", "workers_alive", "trace_sample",
              "workspace_bytes",
              # float accumulator (counters are int64): estimated walk
              # time avoided by the memo, set from WalkMemo.seconds_saved
              "walk_seconds_saved_total"]
    hists = [
        "request_latency_seconds", "enqueue_wait_seconds",
        "batch_flush_seconds", "transport_seconds", "exec_seconds",
        "walk_seconds", "topk_seconds", "render_seconds",
        "swap_latency_seconds",
        "online_round_seconds", "online_ingest_seconds",
        "online_compact_seconds", "online_publish_seconds",
    ]
    hists += [walk_hop_hist(hop) for hop in range(min(hops,
                                                      MAX_HOP_HISTS))]
    return MetricSchema(counters=tuple(counters), gauges=tuple(gauges),
                        histograms=tuple(hists))
