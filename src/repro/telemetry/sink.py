"""Streaming trace export: a background JSONL sink with rotation.

PR 7's :class:`~repro.telemetry.trace.Tracer` buffered the last 4096
spans in a deque — fine for a bench that drains at the end, useless
for a long soak where everything before the final window is silently
gone.  A :class:`TraceSink` turns the buffer into a **bounded handoff
queue** drained by a daemon thread that appends one JSON object per
span to a rotating JSONL file:

* **bounded, never silent** — ``offer`` is non-blocking; when the
  queue is full the span is dropped *and counted* (``sink.dropped``
  plus the fleet's ``trace_dropped_total`` counter when a metric
  block is attached).  The hot path never blocks on disk;
* **size/age rotation** — when the live file exceeds ``max_bytes`` or
  ``max_age_s`` it is rotated logrotate-style (``trace.jsonl`` →
  ``trace.jsonl.1`` → … → ``trace.jsonl.<keep>``, oldest deleted), so
  a soak's disk footprint is bounded at ``(keep + 1) * max_bytes``;
* **lossless under load** — the queue default (64k spans) absorbs any
  burst the serving fleet can produce between writer wakeups; the
  100k-span soak test pins zero drops end to end.

The writer thread batches: it blocks on the queue, then drains
everything immediately available before touching the file, so steady
load costs one ``write`` + ``flush`` per wakeup, not per span.
"""

from __future__ import annotations

import json
import os
import queue
import threading
from time import monotonic
from typing import Iterable, List, Optional

from .trace import SpanRecord


class TraceSink:
    """Background JSONL exporter with size/age rotation.

    ``path`` is the live file; rotated generations live next to it as
    ``<path>.1`` (newest) through ``<path>.<keep>`` (oldest).  The
    sink owns the file and its writer thread; ``close()`` drains the
    queue, flushes, and joins.  ``metrics`` (optional) is a
    :class:`~repro.telemetry.block.MetricBlock` whose
    ``trace_dropped_total`` counter takes every queue-full drop.
    """

    def __init__(self, path, *, max_bytes: int = 16 << 20,
                 max_age_s: Optional[float] = None, keep: int = 4,
                 queue_capacity: int = 65536, metrics=None) -> None:
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.max_age_s = max_age_s
        self.keep = max(0, int(keep))
        self.metrics = metrics
        self.dropped = 0
        self.written = 0
        self.rotations = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._queue: "queue.Queue[Optional[SpanRecord]]" = queue.Queue(
            maxsize=max(1, int(queue_capacity)))
        self._file_lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")
        self._opened_at = monotonic()
        self._closed = False
        self._drop_lock = threading.Lock()
        self._thread = threading.Thread(target=self._run,
                                        name="reks-trace-sink",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (any thread; non-blocking)
    # ------------------------------------------------------------------
    def offer(self, span: SpanRecord) -> bool:
        """Enqueue one span; False (and a counted drop) when full."""
        if self._closed:
            return self._drop()
        try:
            self._queue.put_nowait(span)
            return True
        except queue.Full:
            return self._drop()

    def offer_many(self, spans: Iterable[SpanRecord]) -> int:
        """Enqueue spans; returns how many were accepted."""
        accepted = 0
        for span in spans:
            if self.offer(span):
                accepted += 1
        return accepted

    def _drop(self) -> bool:
        with self._drop_lock:
            self.dropped += 1
        if self.metrics is not None:
            self.metrics.count("trace_dropped_total")
        return False

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            span = self._queue.get()
            if span is None:
                self._queue.task_done()
                return
            batch: List[SpanRecord] = [span]
            while True:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self._write(batch)
                    self._queue.task_done()  # the sentinel
                    for _ in batch:
                        self._queue.task_done()
                    return
                batch.append(extra)
            self._write(batch)
            for _ in batch:
                self._queue.task_done()

    def _write(self, batch: List[SpanRecord]) -> None:
        lines = "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                        for span in batch)
        with self._file_lock:
            self._file.write(lines)
            self._file.flush()
            self.written += len(batch)
            if self._should_rotate():
                self._rotate_locked()

    def _should_rotate(self) -> bool:
        if self._file.tell() >= self.max_bytes:
            return True
        return (self.max_age_s is not None
                and monotonic() - self._opened_at >= self.max_age_s)

    def _rotate_locked(self) -> None:
        """Shift ``path.i`` → ``path.i+1`` (oldest falls off), move the
        live file to ``path.1``, reopen a fresh live file."""
        self._file.close()
        oldest = f"{self.path}.{self.keep}"
        if self.keep == 0:
            # No retained generations: truncate in place.
            self._file = open(self.path, "w", encoding="utf-8")
        else:
            try:
                os.unlink(oldest)
            except FileNotFoundError:
                pass
            for i in range(self.keep - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            os.replace(self.path, f"{self.path}.1")
            self._file = open(self.path, "a", encoding="utf-8")
        self._opened_at = monotonic()
        self.rotations += 1

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Block until everything offered so far is on disk."""
        self._queue.join()
        with self._file_lock:
            self._file.flush()

    def files(self) -> List[str]:
        """Live + rotated files, newest first, that exist on disk."""
        out = [self.path]
        out += [f"{self.path}.{i}" for i in range(1, self.keep + 1)]
        return [p for p in out if os.path.exists(p)]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)  # sentinel: unbounded-safe (queue drains)
        self._thread.join(timeout=30.0)
        with self._file_lock:
            try:
                self._file.flush()
                self._file.close()
            except ValueError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"TraceSink(path={self.path!r}, written={self.written}, "
                f"dropped={self.dropped}, rotations={self.rotations})")
