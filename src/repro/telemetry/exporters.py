"""Fleet snapshot exporters and declarative SLO gates.

Prometheus text format: counters end in ``_total``, histograms expand
to ``_bucket{le=...}`` / ``_sum`` / ``_count`` (cumulative, seconds),
gauges carry a ``role`` label per writer.  Metric names that embed
labels inline (``gather_rows_total{shard=3}``) are parsed back into
real Prometheus labels.

SLOs are declarative: each :class:`SLO` names a metric, a statistic
(quantile/max/mean/count/value/ratio), and bounds.  ``evaluate_slos``
runs them against a :class:`~repro.telemetry.registry.FleetSnapshot`
so the same objects gate benches, CI smoke, and ``cli metrics``.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .block import HistSnapshot, bucket_upper_edges
from .registry import FleetSnapshot

_NAME_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?$")


def split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """``"gather_rows_total{shard=3}" -> ("gather_rows_total",
    {"shard": "3"})``; plain names return empty labels."""
    match = _NAME_RE.match(name)
    if not match:
        return name, {}
    base, raw = match.group(1), match.group(2)
    labels: Dict[str, str] = {}
    if raw:
        for part in raw.split(","):
            key, _, value = part.partition("=")
            labels[key.strip()] = value.strip().strip('"')
    return base, labels


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: FleetSnapshot,
                    namespace: str = "reks") -> str:
    """Render a fleet snapshot in Prometheus text exposition format."""
    lines: List[str] = []

    counter_groups: Dict[str, List[Tuple[Dict[str, str], int]]] = {}
    for name, value in sorted(snapshot.counters.items()):
        base, labels = split_labels(name)
        counter_groups.setdefault(base, []).append((labels, value))
    for base, series in counter_groups.items():
        full = f"{namespace}_{base}"
        lines.append(f"# TYPE {full} counter")
        for labels, value in series:
            lines.append(f"{full}{_fmt_labels(labels)} {value}")

    for name, per_role in sorted(snapshot.gauges.items()):
        base, labels = split_labels(name)
        full = f"{namespace}_{base}"
        lines.append(f"# TYPE {full} gauge")
        for role, value in sorted(per_role.items()):
            merged = dict(labels, role=role)
            lines.append(f"{full}{_fmt_labels(merged)} "
                         f"{_fmt_value(value)}")

    edges = bucket_upper_edges()
    hist_groups: Dict[str, List[Tuple[Dict[str, str], HistSnapshot]]] = {}
    for name, hist in sorted(snapshot.hists.items()):
        if hist.count == 0:
            continue
        base, labels = split_labels(name)
        hist_groups.setdefault(base, []).append((labels, hist))
    for base, series in hist_groups.items():
        full = f"{namespace}_{base}"
        lines.append(f"# TYPE {full} histogram")
        for labels, hist in series:
            cum = 0
            for i in range(len(edges)):
                n = int(hist.buckets[i])
                if n == 0 and i < len(edges) - 1:
                    continue
                cum += n
                le = dict(labels, le=repr(float(edges[i])))
                lines.append(f"{full}_bucket{_fmt_labels(le)} {cum}")
            inf = dict(labels, le="+Inf")
            lines.append(f"{full}_bucket{_fmt_labels(inf)} "
                         f"{hist.count}")
            lines.append(f"{full}_sum{_fmt_labels(labels)} "
                         f"{_fmt_value(hist.sum)}")
            lines.append(f"{full}_count{_fmt_labels(labels)} "
                         f"{hist.count}")

    lines.append(f"# TYPE {namespace}_retired_blocks gauge")
    lines.append(f"{namespace}_retired_blocks "
                 f"{snapshot.retired_blocks}")
    return "\n".join(lines) + "\n"


def json_snapshot(snapshot: FleetSnapshot, indent: int = 2) -> str:
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# SLO gates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    ``stat``: ``p50|p95|p99`` (histogram quantile, seconds), ``max``,
    ``mean``, ``count`` (histogram), ``value`` (counter), or
    ``ratio`` (counter ``metric`` over the sum of ``denominator``
    counters; empty denominator sum evaluates the ratio as 0).
    Bounds are inclusive; ``None`` means unbounded on that side.
    """

    name: str
    metric: str
    stat: str
    max_value: Optional[float] = None
    min_value: Optional[float] = None
    denominator: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SLOResult:
    """One evaluated gate.

    ``burn_rate`` normalizes the value against its bound: for a
    ceiling it is ``value / max_value`` (1.0 = exactly at budget,
    above 1 = burning), for a floor ``min_value / value`` — so "any
    burn rate > 1" is the violation condition regardless of gate
    direction.  ``window_seconds`` is set when the evaluation ran
    against a rolling window rather than the cumulative snapshot.
    """

    slo: SLO
    value: float
    ok: bool
    burn_rate: Optional[float] = None
    window_seconds: Optional[float] = None

    def describe(self) -> str:
        bounds = []
        if self.slo.min_value is not None:
            bounds.append(f">= {self.slo.min_value:g}")
        if self.slo.max_value is not None:
            bounds.append(f"<= {self.slo.max_value:g}")
        verdict = "ok" if self.ok else "VIOLATED"
        scope = (f" over {self.window_seconds:.1f}s"
                 if self.window_seconds is not None else "")
        burn = (f" burn={self.burn_rate:.3g}"
                if self.burn_rate is not None else "")
        return (f"{self.slo.name}: {self.slo.stat}({self.slo.metric})"
                f"{scope} = {self.value:.6g} "
                f"(want {' and '.join(bounds) or 'anything'}){burn} "
                f"[{verdict}]")

    def to_dict(self) -> dict:
        return {"name": self.slo.name, "metric": self.slo.metric,
                "stat": self.slo.stat, "value": self.value,
                "min": self.slo.min_value, "max": self.slo.max_value,
                "ok": self.ok, "burn_rate": self.burn_rate,
                "window_seconds": self.window_seconds}


def _slo_value(snapshot: FleetSnapshot, slo: SLO) -> float:
    if slo.stat == "value":
        return float(snapshot.counter(slo.metric))
    if slo.stat == "ratio":
        num = float(snapshot.counter(slo.metric))
        den = float(sum(snapshot.counter(d) for d in slo.denominator))
        return num / den if den > 0 else 0.0
    hist = snapshot.hist(slo.metric)
    if hist is None or hist.count == 0:
        return 0.0
    if slo.stat in ("p50", "p95", "p99"):
        return hist.quantile(int(slo.stat[1:]) / 100.0)
    if slo.stat == "max":
        return hist.max
    if slo.stat == "mean":
        return hist.mean
    if slo.stat == "count":
        return float(hist.count)
    raise ValueError(f"unknown SLO stat: {slo.stat!r}")


def _burn_rate(slo: SLO, value: float) -> Optional[float]:
    """Value normalized against its bound (> 1 means violating)."""
    if slo.max_value is not None:
        if slo.max_value > 0:
            return value / slo.max_value
        return math.inf if value > 0 else 0.0
    if slo.min_value is not None:
        if value > 0:
            return slo.min_value / value
        return math.inf if slo.min_value > 0 else 0.0
    return None


def _no_window_data(target, slo: SLO) -> bool:
    """True when the window carries no observations for this gate:
    a ratio whose denominator counters never moved, or a histogram
    stat over an empty histogram."""
    if slo.stat == "ratio":
        return float(sum(target.counter(d)
                         for d in slo.denominator)) <= 0
    if slo.stat in ("p50", "p95", "p99", "max", "mean", "count"):
        hist = target.hist(slo.metric)
        return hist is None or hist.count == 0
    return False


def evaluate_slos(snapshot: FleetSnapshot, slos: Sequence[SLO],
                  window=None) -> List[SLOResult]:
    """Evaluate gates against the cumulative ``snapshot`` — or, when
    ``window`` (a :class:`~repro.telemetry.window.WindowSnapshot`) is
    given, against that rolling window instead: same declarative SLO
    objects, burn rates scoped to the window's interval.  ``window``
    may be None even when requested (fewer than two samples yet), in
    which case the cumulative snapshot is used.

    A window with no observations of a gated metric (quiet interval:
    ratio denominator never moved, histogram empty) passes vacuously
    with ``burn_rate=None`` — an idle service is not burning its
    cache-hit floor."""
    target = window if window is not None else snapshot
    window_seconds = (float(window.seconds) if window is not None
                      else None)
    results = []
    for slo in slos:
        value = _slo_value(target, slo)
        if window is not None and _no_window_data(target, slo):
            results.append(SLOResult(slo=slo, value=value, ok=True,
                                     burn_rate=None,
                                     window_seconds=window_seconds))
            continue
        ok = True
        if slo.max_value is not None and value > slo.max_value:
            ok = False
        if slo.min_value is not None and value < slo.min_value:
            ok = False
        results.append(SLOResult(slo=slo, value=value, ok=ok,
                                 burn_rate=_burn_rate(slo, value),
                                 window_seconds=window_seconds))
    return results


def slo_failures(results: Sequence[SLOResult]) -> List[SLOResult]:
    return [r for r in results if not r.ok]


def serving_slos(p99_ms: Optional[float] = None,
                 swap_max_ms: Optional[float] = None,
                 cache_hit_floor: Optional[float] = None,
                 ring_fallback_ceiling: Optional[float] = None,
                 memo_hit_floor: Optional[float] = None
                 ) -> Tuple[SLO, ...]:
    """The canonical serving gate set (ISSUE 7): request p99, swap
    latency ceiling, cache-hit floor, ring-fallback ceiling — plus the
    shared-computation memo-hit floor (ISSUE 10), a ratio over the
    ``walk_memo_*`` counters.  ``None`` skips a gate."""
    slos: List[SLO] = []
    if p99_ms is not None:
        slos.append(SLO(name="request_p99", stat="p99",
                        metric="request_latency_seconds",
                        max_value=p99_ms / 1e3))
    if swap_max_ms is not None:
        slos.append(SLO(name="swap_latency", stat="max",
                        metric="swap_latency_seconds",
                        max_value=swap_max_ms / 1e3))
    if cache_hit_floor is not None:
        slos.append(SLO(name="cache_hit_rate", stat="ratio",
                        metric="cache_hits_total",
                        denominator=("cache_hits_total",
                                     "cache_misses_total"),
                        min_value=cache_hit_floor))
    if ring_fallback_ceiling is not None:
        slos.append(SLO(name="ring_fallback_rate", stat="ratio",
                        metric="ring_fallbacks_total",
                        denominator=("ring_batches_total",
                                     "pipe_batches_total"),
                        max_value=ring_fallback_ceiling))
    if memo_hit_floor is not None:
        slos.append(SLO(name="walk_memo_hit_rate", stat="ratio",
                        metric="walk_memo_hits_total",
                        denominator=("walk_memo_hits_total",
                                     "walk_memo_misses_total"),
                        min_value=memo_hit_floor))
    return tuple(slos)
