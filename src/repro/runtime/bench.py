"""Benchmark the runtime execution plane: process serving + isolation.

Three measured stories, one payload (``BENCH_runtime.json``):

1. **Thread vs process serving** — the same cold-cache closed-loop
   request stream driven against ``worker_mode="thread"`` and
   ``worker_mode="process"`` servers (same worker count), the process
   mode measured over **both exec transports** (shared-memory rings,
   the default, and the legacy pickle pipe) with per-micro-batch
   overhead ratios against thread mode, plus bit-identity checks
   between the modes' and the transports' rankings and explanations.
   The plane sizes, generation key, and ring/pipe/fallback batch
   counters are recorded so the dataplane story is auditable.
2. **Shard-major frontier gather** — a scattered frontier against a
   multi-shard store: the old per-shard sub-gather loop (one fancy
   row-scatter per touched shard per output) vs the grouped
   :meth:`~repro.graphstore.ShardedCSR.gather_into` path (contiguous
   sub-gathers, one scatter back to row order), outputs checked
   identical.
3. **Fine-tune / serving isolation** — serving p95 at steady state
   (idle), then during a concurrent fine-tune round executed (a) on a
   thread of the serving interpreter and (b) in a subprocess updater.
   The ratio of each concurrent p95 to the idle p95 quantifies how
   much a training round steals from serving; subprocess isolation
   exists to push that ratio to ~1.0 **when spare cores exist** — the
   payload records ``cpu_count`` because on a single-core host every
   mode fights for the same clock.

Numbers are environment-dependent; the *contracts* (bit-identity,
zero dropped requests) are hard-checked here and in
``tests/test_runtime.py``.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter, sleep
from typing import List, Sequence

import numpy as np

from repro.data.schema import Session
from repro.online.ingest import DeltaIngestor
from repro.online.registry import CheckpointRegistry
from repro.online.updater import OnlineUpdater
from repro.serving.bench import _closed_loop, emit  # noqa: F401 (emit re-exported)


class _TrafficLoop:
    """Continuously drive closed-loop traffic from client threads."""

    def __init__(self, server, sessions: Sequence[Session],
                 concurrency: int, k: int) -> None:
        self._server = server
        self._sessions = list(sessions)
        self._k = k
        self._stop = threading.Event()
        self.errors: List[BaseException] = []
        self.completed = 0
        self._count_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._client, args=(i,), daemon=True)
            for i in range(concurrency)]

    def _client(self, index: int) -> None:
        shard = self._sessions[index::len(self._threads)] \
            or self._sessions[:1]
        position = 0
        try:
            while not self._stop.is_set():
                self._server.recommend_one(shard[position % len(shard)],
                                           k=self._k)
                position += 1
                with self._count_lock:
                    self.completed += 1
        except BaseException as exc:  # surfaced at stop()
            self.errors.append(exc)

    def __enter__(self) -> "_TrafficLoop":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join()
        # Surface a client-side error only when the body succeeded —
        # never mask the measurement's own exception with one of ours.
        if exc_type is None and self.errors:
            raise self.errors[0]


def _latency_section(stats) -> dict:
    return {"mean": stats.latency_ms_mean, "p50": stats.latency_ms_p50,
            "p95": stats.latency_ms_p95, "p99": stats.latency_ms_p99}


def _results_identical(left, right) -> bool:
    return all(a.items == b.items
               and a.scores == b.scores
               and a.explanations == b.explanations
               for a, b in zip(left, right))


def check_mode_equivalence(trainer, sessions: Sequence[Session],
                           k: int = 10, workers: int = 2) -> bool:
    """Process-mode results must be bit-identical to thread mode.

    Exact equality on scores too — both modes marshal the same
    float64 score row through ``float()`` (the ring codec carries
    float64 verbatim), so anything short of bitwise identity means the
    contract is already broken.
    """
    sessions = [s for s in sessions if len(s.items) >= 2]
    with trainer.serve(worker_mode="thread", workers=workers,
                       cache_size=0) as server:
        thread_results = server.recommend_many(sessions, k=k)
    with trainer.serve(worker_mode="process", workers=workers,
                       cache_size=0) as server:
        process_results = server.recommend_many(sessions, k=k)
    return _results_identical(thread_results, process_results)


def check_transport_equivalence(trainer, sessions: Sequence[Session],
                                k: int = 10, workers: int = 2,
                                trace_sample: float = 0.0) -> bool:
    """Ring-transport results must be bit-identical to the pipe's.

    With ``trace_sample=1.0`` every request carries a trace id through
    the codec's trailing trace section and every response carries the
    span trailer — the differential then proves the telemetry sections
    are invisible to the result payload on both transports."""
    sessions = [s for s in sessions if len(s.items) >= 2]
    with trainer.serve(worker_mode="process", transport="pipe",
                       workers=workers, cache_size=0,
                       trace_sample=trace_sample) as server:
        pipe_results = server.recommend_many(sessions, k=k)
    with trainer.serve(worker_mode="process", transport="ring",
                       workers=workers, cache_size=0,
                       trace_sample=trace_sample) as server:
        ring_results = server.recommend_many(sessions, k=k)
    return _results_identical(pipe_results, ring_results)


def _reference_shard_gather(store, entities, cols, mask,
                            rels_out, tails_out) -> None:
    """The pre-grouping multi-shard gather: one fancy row-scatter per
    touched shard per output grid (kept here as the bench baseline)."""
    sid = store.shard_of(entities)
    order = np.argsort(sid, kind="stable")
    sorted_sid = sid[order]
    starts = np.flatnonzero(
        np.concatenate([[True], sorted_sid[1:] != sorted_sid[:-1]]))
    stops = np.concatenate([starts[1:], [sorted_sid.size]])
    for start, stop in zip(starts, stops):
        shard = store.shards[int(sorted_sid[start])]
        tables = shard.tables
        rows = order[start:stop]
        local = entities[rows] - shard.start
        sub = np.take(tables.indptr, local)[:, None] + cols[None, :]
        sub *= mask[rows]
        rels_out[rows] = np.take(tables.rels, sub)
        tails_out[rows] = np.take(tables.tails, sub)


def run_gather_bench(trainer, *, num_shards: int = 32, rows: int = 512,
                     repeats: int = 9, seed: int = 7) -> dict:
    """Scattered-frontier gather: per-shard sub-gathers vs shard-major.

    Rebuilds the trainer's adjacency as a ``num_shards``-way store (the
    bench-scale graph is single-shard by default, where the question
    doesn't arise), draws a delta-sized frontier scattered uniformly
    across the id space — the delta-traffic worst case PR 5 measured at
    3x where a shard-confined frontier got 42x — and times the old
    per-shard sub-gather loop against the grouped ``gather_into`` path.
    The regime is deliberately many-shards / few-rows-per-shard: that
    is where per-shard fixed costs (one fancy row-scatter per touched
    shard per output grid) dominate and the single-scatter grouping
    pays off; with thousands of rows per shard the two converge.
    Outputs are required identical.
    """
    from repro.graphstore import ShardedCSR

    flat = trainer.env.csr_tables().to_flat()
    degrees = flat.degrees
    store = ShardedCSR.build(degrees, flat.rels[1:], flat.tails[1:],
                             num_shards=num_shards)
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(degrees > 0)
    entities = rng.choice(candidates, size=rows, replace=True)
    entities = entities.astype(np.int64)
    width = int(degrees[entities].max())
    cols = np.arange(width, dtype=np.int32)
    mask = cols[None, :] < degrees[entities][:, None]
    idx = np.empty((rows, width), dtype=np.int32)
    ref_rels = np.empty((rows, width), dtype=np.int32)
    ref_tails = np.empty((rows, width), dtype=np.int32)
    new_rels = np.empty((rows, width), dtype=np.int32)
    new_tails = np.empty((rows, width), dtype=np.int32)

    best_ref = best_new = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        _reference_shard_gather(store, entities, cols, mask,
                                ref_rels, ref_tails)
        best_ref = min(best_ref, perf_counter() - started)
        started = perf_counter()
        store.gather_into(entities, cols, mask, idx, new_rels, new_tails)
        best_new = min(best_new, perf_counter() - started)
    identical = (np.array_equal(ref_rels, new_rels)
                 and np.array_equal(ref_tails, new_tails))
    return {
        "num_shards": store.num_shards,
        "rows": rows,
        "width": width,
        "per_shard_ms": best_ref * 1e3,
        "grouped_ms": best_new * 1e3,
        "speedup": best_ref / max(best_new, 1e-12),
        "identical": identical,
    }


def run_spin_bench(trainer, sessions: Sequence[Session], *,
                   spin_us: float = 50.0, rows: int = 16,
                   batches: int = 32, repeats: int = 2,
                   k: int = 10) -> dict:
    """Adaptive spin-then-block doorbell wait vs pure select-blocking.

    Drives ``batches`` sequential exec round-trips through a 1-worker
    :class:`~repro.runtime.ProcessWorkerPool` twice: once with the
    default blocking doorbell (``serve_ring_spin_us=0``) and once with
    both peers spinning ``spin_us`` µs on the ring sequence word before
    falling back to the blocking wait.  Sequential round-trips are the
    regime the knob targets — the doorbell syscall pair is the fixed
    cost per batch (the PR 6 carried-forward bottleneck).  The numbers
    are recorded as measured: on a host without spare cores (see
    ``cpu_count`` in the payload) spinning buys nothing and can lose,
    which is exactly why the knob defaults to 0.
    """
    from repro.runtime import ProcessWorkerPool

    sessions = [s for s in sessions if len(s.items) >= 2][:rows]
    if not sessions:
        raise ValueError("need >= 1 usable session")
    examples = [(list(s.items[:-1]), s.items[-1], s.user_id)
                for s in sessions]
    ks = [k] * len(examples)
    section: dict = {"spin_us": spin_us, "rows": len(examples),
                     "batches": batches}
    for label, spin in (("block", 0.0), ("spin", spin_us)):
        pool = ProcessWorkerPool(trainer.agent, workers=1,
                                 ring_spin_us=spin)
        try:
            if pool.transport != "ring":
                section[label] = {"transport": pool.transport,
                                  "skipped": "no usable ring transport"}
                continue
            pool.execute(examples, ks)  # warm-up: plane attach + JIT-ish
            best = float("inf")
            for _ in range(repeats):
                started = perf_counter()
                for _ in range(batches):
                    pool.execute(examples, ks)
                best = min(best, perf_counter() - started)
            section[label] = {"transport": pool.transport,
                              "seconds": best,
                              "per_batch_ms": best / batches * 1e3}
        finally:
            pool.close()
    if "per_batch_ms" in section.get("block", {}) \
            and "per_batch_ms" in section.get("spin", {}):
        section["spin_vs_block"] = (section["spin"]["per_batch_ms"]
                                    / max(section["block"]["per_batch_ms"],
                                          1e-12))
    return section


def run_runtime_bench(trainer, sessions: Sequence[Session],
                      delta: Sequence[Session], *, checkpoint_dir,
                      workers: int = 4, concurrency: int = 8,
                      k: int = 10, min_requests: int = 256,
                      check_sessions: int = 32,
                      idle_window_s: float = 0.75) -> dict:
    """One full runtime-plane run; returns the JSON-ready payload."""
    sessions = [s for s in sessions if len(s.items) >= 2]
    delta = [s for s in delta if len(s.items) >= 2]
    if not sessions or not delta:
        raise ValueError("need non-empty serving and delta session sets")
    rounds = max(1, -(-min_requests // len(sessions)))
    stream = list(sessions) * rounds
    cfg = trainer.config

    payload: dict = {
        "benchmark": "runtime",
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "concurrency": concurrency,
        "k": k,
        "requests": len(stream),
        "distinct_sessions": len(sessions),
    }

    # ------------------------------------------------------------------
    # Phase 1: thread vs process serving throughput (cold cache), the
    # process mode over both exec transports.  "process" is the ring
    # default; "process_pipe" forces the legacy pickle protocol so the
    # dataplane win is measured, not assumed.
    # ------------------------------------------------------------------
    serve_section: dict = {}
    variants = (("thread", {"worker_mode": "thread"}),
                ("process", {"worker_mode": "process",
                             "transport": "ring"}),
                ("process_traced", {"worker_mode": "process",
                                    "transport": "ring",
                                    "trace_sample": 1.0}),
                ("process_pipe", {"worker_mode": "process",
                                  "transport": "pipe"}))
    fleet_snapshot = None
    window_section = None
    for label, overrides in variants:
        with trainer.serve(workers=workers, cache_size=0,
                           **overrides) as server:
            best_s, best = float("inf"), None
            for _ in range(2):  # best-of-2, same policy as serve-bench
                elapsed = _closed_loop(server, stream, concurrency, k)
                if elapsed < best_s:
                    best_s, best = elapsed, server.stats()
                server.reset_stats()
            if label == "process":
                # Merged fleet metrics for the ring run: the worker
                # children's per-shard gather counters and exec/walk
                # timings next to the parent's transport counters.
                fleet_snapshot = server.fleet_snapshot().to_dict()
                # Rolling-window view over the same run: the server
                # records a snapshot at construction, so the full-span
                # window isolates this variant's traffic from the
                # other variants' registries entirely.
                win = server.window()
                if win is not None:
                    from repro.telemetry.exporters import (
                        evaluate_slos, serving_slos)
                    snap = server.fleet_snapshot()
                    windowed = evaluate_slos(snap, serving_slos(),
                                             window=win)
                    burns = [r.burn_rate for r in windowed
                             if r.burn_rate is not None]
                    window_section = {
                        "seconds": win.seconds,
                        "slo": [r.to_dict() for r in windowed],
                        "slo_ok": all(r.ok for r in windowed),
                        "burn_max": max(burns) if burns else 0.0,
                    }
            batches = max(1, round(best.requests
                                   / max(best.mean_occupancy, 1e-9)))
            entry = {
                "seconds": best_s,
                "throughput_rps": len(stream) / best_s,
                "latency_ms": _latency_section(best),
                "mean_occupancy": best.mean_occupancy,
                "per_batch_ms": best_s / batches * 1e3,
            }
            pool = server.process_pool
            if pool is not None:
                entry["transport"] = server.transport
                entry["plane_key"] = pool.plane_key
                entry["plane_nbytes"] = pool.plane_nbytes
                entry["mp_start_method"] = \
                    pool._context.get_start_method()
                entry["ring_batches"] = pool.ring_batches
                entry["pipe_batches"] = pool.pipe_batches
                entry["ring_fallbacks"] = pool.ring_fallbacks
            serve_section[label] = entry
    serve_section["process_vs_thread_throughput"] = (
        serve_section["process"]["throughput_rps"]
        / serve_section["thread"]["throughput_rps"])
    thread_batch_ms = serve_section["thread"]["per_batch_ms"]
    for label in ("process", "process_traced", "process_pipe"):
        serve_section[label]["per_batch_vs_thread"] = (
            serve_section[label]["per_batch_ms"]
            / max(thread_batch_ms, 1e-12))
    serve_section["bit_identical"] = check_mode_equivalence(
        trainer, sessions[:check_sessions], k=k, workers=workers)
    serve_section["transport_bit_identical"] = check_transport_equivalence(
        trainer, sessions[:check_sessions], k=k, workers=workers)
    # Same differential with every request traced: the codec's trace /
    # span sections must not perturb the result payload on either
    # transport.
    serve_section["transport_bit_identical_traced"] = (
        check_transport_equivalence(trainer, sessions[:check_sessions],
                                    k=k, workers=workers,
                                    trace_sample=1.0))
    payload["serve"] = serve_section
    # The serve variants above already ran with the metrics plane on
    # (the config default), so the ring-vs-thread per-batch ratio IS
    # the with-telemetry overhead number the SLO gate consumes.
    payload["telemetry"] = {
        "ring_per_batch_vs_thread": serve_section["process"][
            "per_batch_vs_thread"],
        # Every request traced with per-row span attribution: the
        # fully-observed ring batch against bare thread mode.
        "ring_traced_per_batch_vs_thread": serve_section[
            "process_traced"]["per_batch_vs_thread"],
        "snapshot": fleet_snapshot,
        "window": window_section,
    }

    # ------------------------------------------------------------------
    # Phase 1b: scattered-frontier shard-major gather.
    # ------------------------------------------------------------------
    payload["gather"] = run_gather_bench(trainer)

    # ------------------------------------------------------------------
    # Phase 1c: doorbell spin-then-block vs pure select-blocking.
    # ------------------------------------------------------------------
    payload["doorbell"] = run_spin_bench(trainer, sessions, k=k)

    # ------------------------------------------------------------------
    # Phase 2: serving p95 while a fine-tune round runs concurrently.
    # ------------------------------------------------------------------
    registry = CheckpointRegistry(checkpoint_dir,
                                  keep_last=cfg.online_keep_checkpoints)
    ingestor = DeltaIngestor(trainer.built, trainer.env,
                             compact_every=cfg.online_compact_every)
    inline = OnlineUpdater(trainer, ingestor, registry, min_sessions=1,
                           max_steps=cfg.online_max_steps, mode="thread")
    isolated = OnlineUpdater(trainer, ingestor, registry, min_sessions=1,
                             max_steps=cfg.online_max_steps,
                             mode="subprocess")
    # Warm-up: publishes the swap target and forks the subprocess
    # child *before* traffic threads exist (clean fork).
    v_base = inline.run_once(force=True)
    isolated.run_once(force=True)
    half = max(1, len(delta) // 2)

    def round_workload(part: Sequence[Session]) -> List[Session]:
        """Repeat a delta slice until it fills ``online_max_steps``
        fine-tune batches — a sub-second round would measure scheduler
        noise, not contention."""
        need = cfg.online_max_steps * cfg.batch_size
        reps = max(1, -(-need // max(len(part), 1)))
        return list(part) * reps

    online_section: dict = {"versions": {"base": v_base}}
    try:
        # Cache off: the isolation story is about walk compute
        # stealing, which a warm explanation cache would hide entirely.
        with trainer.serve(worker_mode="thread", registry=registry,
                           cache_size=0) as server:
            server.swap_model(v_base)  # serve a clone; tunes stay private
            with _TrafficLoop(server, sessions, concurrency, k):
                sleep(0.1)  # ramp
                server.reset_stats()
                sleep(idle_window_s)
                idle = server.stats()

                ingestor.ingest_sessions(round_workload(delta[:half]))
                server.reset_stats()
                started = perf_counter()
                isolated.run_once(force=True)
                subprocess_s = perf_counter() - started
                during_subprocess = server.stats()

                ingestor.ingest_sessions(round_workload(delta[half:]))
                server.reset_stats()
                started = perf_counter()
                inline.run_once(force=True)  # trains on this interpreter
                inline_s = perf_counter() - started
                during_inline = server.stats()
    finally:
        isolated.stop()  # a failed run must not leak the forked child

    idle_p95 = max(idle.latency_ms_p95, 1e-9)
    online_section.update({
        "idle": {"window_s": idle_window_s,
                 "requests": idle.requests,
                 "latency_ms": _latency_section(idle)},
        "during_subprocess_round": {
            "round_seconds": subprocess_s,
            "requests": during_subprocess.requests,
            "latency_ms": _latency_section(during_subprocess),
            "p95_vs_idle": during_subprocess.latency_ms_p95 / idle_p95,
        },
        "during_inline_round": {
            "round_seconds": inline_s,
            "requests": during_inline.requests,
            "latency_ms": _latency_section(during_inline),
            "p95_vs_idle": during_inline.latency_ms_p95 / idle_p95,
        },
    })
    online_section["isolation_gain"] = (
        online_section["during_inline_round"]["p95_vs_idle"]
        / max(online_section["during_subprocess_round"]["p95_vs_idle"],
              1e-9))
    payload["online"] = online_section
    return payload


def format_report(payload: dict) -> str:
    """Human-readable summary of one runtime run."""
    serve = payload["serve"]
    online = payload["online"]
    gather = payload.get("gather")
    pipe = serve.get("process_pipe")
    lines = [
        f"runtime bench @ {payload['workers']} workers, concurrency "
        f"{payload['concurrency']} (k={payload['k']}, "
        f"{payload['cpu_count']} cpu)",
        f"  thread serve   : {serve['thread']['throughput_rps']:>8.1f} "
        f"req/s  p95={serve['thread']['latency_ms']['p95']:.1f}ms",
        f"  process (ring) : {serve['process']['throughput_rps']:>8.1f} "
        f"req/s  p95={serve['process']['latency_ms']['p95']:.1f}ms "
        f"({serve['process_vs_thread_throughput']:.2f}x thread, "
        f"batch {serve['process'].get('per_batch_vs_thread', 0):.2f}x, "
        f"plane {serve['process'].get('plane_nbytes', 0) / 1e6:.1f}MB "
        f"via {serve['process'].get('mp_start_method', '?')}, "
        f"fallbacks {serve['process'].get('ring_fallbacks', 0)})",
    ]
    traced = serve.get("process_traced")
    if traced is not None:
        lines.append(
            f"  process traced : {traced['throughput_rps']:>8.1f} "
            f"req/s  p95={traced['latency_ms']['p95']:.1f}ms "
            f"(batch {traced.get('per_batch_vs_thread', 0):.2f}x "
            f"thread, per-row spans @ sample=1.0)")
    if pipe is not None:
        lines.append(
            f"  process (pipe) : {pipe['throughput_rps']:>8.1f} "
            f"req/s  p95={pipe['latency_ms']['p95']:.1f}ms "
            f"(batch {pipe.get('per_batch_vs_thread', 0):.2f}x thread)")
    lines.append(
        f"  bit-identical  : modes={serve['bit_identical']} "
        f"transports={serve.get('transport_bit_identical', '?')} "
        f"traced={serve.get('transport_bit_identical_traced', '?')}")
    if gather is not None:
        lines.append(
            f"  scatter gather : {gather['num_shards']} shards x "
            f"{gather['rows']} rows  per-shard "
            f"{gather['per_shard_ms']:.2f}ms -> grouped "
            f"{gather['grouped_ms']:.2f}ms "
            f"({gather['speedup']:.2f}x, identical="
            f"{gather['identical']})")
    bell = payload.get("doorbell")
    if bell and "spin_vs_block" in bell:
        lines.append(
            f"  doorbell spin  : {bell['spin']['per_batch_ms']:.2f}ms "
            f"vs block {bell['block']['per_batch_ms']:.2f}ms per batch "
            f"({bell['spin_vs_block']:.2f}x @ spin_us="
            f"{bell['spin_us']:.0f})")
    lines += [
        f"  idle p95       : {online['idle']['latency_ms']['p95']:.1f}ms",
        f"  + inline round : p95 "
        f"{online['during_inline_round']['latency_ms']['p95']:.1f}ms "
        f"({online['during_inline_round']['p95_vs_idle']:.2f}x idle)",
        f"  + subproc round: p95 "
        f"{online['during_subprocess_round']['latency_ms']['p95']:.1f}ms "
        f"({online['during_subprocess_round']['p95_vs_idle']:.2f}x idle)",
        f"  isolation gain : {online['isolation_gain']:.2f}x",
    ]
    win = payload.get("telemetry", {}).get("window")
    if win:
        lines.append(
            f"  ring window    : {win['seconds']:.2f}s, "
            f"burn max {win['burn_max']:.3g}, SLO "
            + ("PASS" if win["slo_ok"] else "FAIL"))
    return "\n".join(lines)
