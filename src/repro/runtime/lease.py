"""Advisory cross-process file lease with stale-holder takeover.

The checkpoint registry (and any other shared on-disk resource) needs
mutual exclusion between *processes* — a subprocess updater, a rollback
operator, and a serving host may all touch one registry directory.
``threading.Lock`` cannot help across interpreters, and the stdlib has
no portable file lock, so this module implements the classic lease
pattern with nothing but atomic ``O_CREAT | O_EXCL``:

* acquiring writes a JSON lease file (``pid``, ``acquired_at``)
  exclusively — exactly one contender wins the syscall race;
* a holder that exits without releasing does not wedge the resource:
  contenders treat a lease as **stale** once its file age exceeds
  ``ttl_s`` *or* its recorded pid is provably dead on this host, and
  break it (unlink + re-race — the EXCL create arbitrates between
  simultaneous breakers);
* releasing unlinks only a lease this process still holds.

This is advisory locking: every writer must opt in.  It is also
single-host for the pid-liveness test; cross-host deployments rely on
the TTL alone.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional


class LeaseTimeout(TimeoutError):
    """Raised when a lease cannot be acquired within ``timeout_s``."""


class FileLease:
    """Context-managed advisory lease on ``path``.

    Parameters
    ----------
    path:
        The lease file (parent directories are created).
    ttl_s:
        Age after which a held lease may be broken by a contender.
        Holders must finish their critical section well inside it.
    timeout_s:
        How long :meth:`acquire` retries before raising
        :class:`LeaseTimeout`.
    poll_s:
        Sleep between acquisition attempts.
    """

    def __init__(self, path, ttl_s: float = 30.0,
                 timeout_s: float = 30.0, poll_s: float = 0.01) -> None:
        if ttl_s <= 0 or timeout_s <= 0 or poll_s <= 0:
            raise ValueError("ttl_s, timeout_s, poll_s must be > 0")
        self.path = Path(path)
        self.ttl_s = ttl_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._held = False

    # ------------------------------------------------------------------
    def acquire(self) -> "FileLease":
        deadline = time.monotonic() + self.timeout_s
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"pid": os.getpid(),
                              "acquired_at": time.time()}).encode()
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                stale_id = self._stale_holder_id()
                if stale_id is not None:
                    # Break the stale lease and re-race; the EXCL
                    # create above arbitrates simultaneous breakers.
                    self._unlink_if_same(stale_id)
                elif time.monotonic() >= deadline:
                    raise LeaseTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout_s}s (holder: "
                        f"{self._read_holder()})")
                else:
                    time.sleep(self.poll_s)
                continue
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            self._held = True
            return self

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        # Only unlink a lease this process still holds: if ours went
        # stale and a contender broke it, the file on disk is *their*
        # lease now and deleting it would let a third party in.
        holder = self._read_holder()
        if holder is not None and holder.get("pid") != os.getpid():
            return  # pragma: no cover - lease was broken while held
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - broken by a peer
            pass

    @property
    def held(self) -> bool:
        return self._held

    # ------------------------------------------------------------------
    def _read_holder(self) -> Optional[dict]:
        try:
            return json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None

    def _stale_holder_id(self) -> Optional[tuple]:
        """Identity ``(inode, mtime_ns)`` of the lease iff it is stale.

        The identity is what makes breaking safe against the classic
        two-breaker race: the breaker re-checks it immediately before
        unlinking (:meth:`_unlink_if_same`), and a lease written by a
        *new* holder is a new file — new inode — so a contender acting
        on a stale observation can no longer delete a live lease.

        Liveness outranks age: a holder whose pid is provably alive on
        this host keeps its lease even past ``ttl_s`` (a slow writer —
        e.g. a paper-dims checkpoint on slow storage — must not have
        the lock broken mid-write; contenders wait and eventually
        raise :class:`LeaseTimeout` instead).  A provably dead pid is
        stale immediately.  The TTL decides only when liveness is
        unknowable: unreadable lease payloads or foreign-host holders.
        """
        try:
            stat = self.path.stat()
        except FileNotFoundError:
            return None  # released between our attempts: just re-race
        identity = (stat.st_ino, stat.st_mtime_ns)
        holder = self._read_holder()
        pid = None if holder is None else holder.get("pid")
        if isinstance(pid, int):
            if pid == os.getpid():
                return None  # our own (another thread's) lease
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return identity  # died on this host, never released
            except PermissionError:  # pragma: no cover - foreign uid
                return None  # exists under another uid: alive
            return None  # provably alive: never break by age
        # Liveness unknowable: only the TTL can break the lease.
        if time.time() - stat.st_mtime > self.ttl_s:
            return identity
        return None

    def _unlink_if_same(self, identity: tuple) -> None:
        """Unlink the lease only if it is still the observed stale one."""
        try:
            stat = self.path.stat()
            if (stat.st_ino, stat.st_mtime_ns) != identity:
                return  # someone else already broke + re-acquired it
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    def __enter__(self) -> "FileLease":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return (f"FileLease(path={str(self.path)!r}, held={self._held}, "
                f"ttl_s={self.ttl_s})")
