"""Fixed-slot shared-memory request/response rings (the serving dataplane).

PR 4's process fleet moved the *big* state out of the pipes — the CSR
adjacency and frozen embedding tables ride shared-memory planes — but
every ``exec`` round-trip still pickled the micro-batch and its result
rows through a duplex pipe.  At serving scale that pickle/unpickle pair
is the per-batch overhead that separates process mode from thread mode.

This module removes it.  Each worker gets one shared-memory **scratch
segment** holding a request ring and a response ring of fixed-size
slots.  Sessions and rankings are small int32 rows, so a micro-batch
encodes as flat numeric arrays — no pickling on the hot path:

* a request slot carries ``(n, ks[n], lengths[n], targets[n],
  users[n], items[sum lengths])`` as one int32 vector (``ks`` is
  per-row: a mixed-k flush executes as one superset walk);
* a response slot carries ``(status, version, ks, topk_items,
  topk_scores, path_len / path_entities / path_rels, path_probs)``
  — ``topk_scores`` and ``path_probs`` stay float64 so ring results
  are bit-identical to the pipe's ``float()``-marshalled rows;
* a failed execution posts ``status=1`` with the traceback as UTF-8
  bytes in the same slot.

Publish protocol: slots are claimed round-robin by a monotonically
increasing ticket.  The producer writes the payload length and bytes
first, then publishes by storing ``ticket + 1`` into the slot's
sequence word; the consumer knows which ticket it expects next and
polls that slot's sequence until it matches.  A short spin is enough
when the peer is already running; the transport layer in
``repro.runtime.workers`` pairs each ring with a **doorbell pipe** so
an idle peer blocks in ``select`` instead of burning a core (the bench
host may have a single CPU — busy-polling there would starve the very
worker being waited on).

Capacity is fixed at creation: a payload larger than a slot raises
:class:`RingUnsuitable` and a full ring raises :class:`RingFull`;
callers fall back to the pipe for that batch (counted, never silent).
See ``runtime/README.md`` for the slot layout diagram and the
pipe-vs-ring decision table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_I32 = np.dtype("<i4")
_I64 = np.dtype("<i8")
_F64 = np.dtype("<f8")

# Per-slot header: [seq int64][length int64], payload follows.
_SLOT_HEADER = 16
_CACHE_LINE = 64

# Defaults sized for serving micro-batches (max_batch <= 256 rows of
# <= max_session_length items) with headroom; oversize batches fall
# back to the pipe rather than growing the ring.
DEFAULT_SLOTS = 8
DEFAULT_REQ_SLOT_BYTES = 1 << 16   # 64 KiB
DEFAULT_RESP_SLOT_BYTES = 1 << 18  # 256 KiB


class RingFull(RuntimeError):
    """Every slot of the ring holds an unconsumed message."""


class RingUnsuitable(RuntimeError):
    """This payload cannot ride the ring (oversize or un-encodable);
    the caller should use the pipe for it."""


@dataclass(frozen=True)
class RingManifest:
    """Everything a peer process needs to attach a ring pair."""

    segment: str
    slots: int
    req_slot_bytes: int
    resp_slot_bytes: int


def _align(offset: int, alignment: int = _CACHE_LINE) -> int:
    return -(-offset // alignment) * alignment


class RingPair:
    """One worker's request ring + response ring in a single segment.

    Single-producer / single-consumer per direction: the pool parent
    produces requests and consumes responses, the worker does the
    reverse.  Both sides hold a :class:`RingPair` over the same
    segment; ``owner=True`` (the creating parent) unlinks it.
    """

    def __init__(self, shm, manifest: RingManifest, owner: bool) -> None:
        self._shm = shm
        self.manifest = manifest
        self._owner = owner
        self._closed = False
        slots = manifest.slots
        req_bytes = slots * (_SLOT_HEADER + manifest.req_slot_bytes)
        self._req_base = 0
        self._resp_base = _align(req_bytes)
        # Producer/consumer tickets are process-local: each side only
        # needs its own position (SPSC, strictly in-order).
        self._req_produced = 0
        self._req_consumed = 0
        self._resp_produced = 0
        self._resp_consumed = 0

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, slots: int = DEFAULT_SLOTS,
               req_slot_bytes: int = DEFAULT_REQ_SLOT_BYTES,
               resp_slot_bytes: int = DEFAULT_RESP_SLOT_BYTES
               ) -> "RingPair":
        """Allocate the segment (may raise ImportError/OSError when the
        host has no usable POSIX shared memory — callers fall back to
        the pipe transport)."""
        from multiprocessing import shared_memory

        if slots < 1:
            raise ValueError(f"need >= 1 slot, got {slots}")
        req_bytes = slots * (_SLOT_HEADER + req_slot_bytes)
        resp_bytes = slots * (_SLOT_HEADER + resp_slot_bytes)
        total = _align(req_bytes) + resp_bytes
        shm = shared_memory.SharedMemory(create=True, size=total)
        shm.buf[:total] = b"\x00" * total
        manifest = RingManifest(segment=shm.name, slots=slots,
                                req_slot_bytes=req_slot_bytes,
                                resp_slot_bytes=resp_slot_bytes)
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: RingManifest,
               untrack: bool = False) -> "RingPair":
        from repro.runtime.plane import _attach_shm

        shm = _attach_shm(manifest.segment, untrack)
        return cls(shm, manifest, owner=False)

    # ------------------------------------------------------------------
    # Slot plumbing
    # ------------------------------------------------------------------
    def _slot_offset(self, base: int, slot_bytes: int, ticket: int) -> int:
        slot = ticket % self.manifest.slots
        return base + slot * (_SLOT_HEADER + slot_bytes)

    def _post(self, base: int, slot_bytes: int, ticket: int,
              payload: bytes) -> None:
        if len(payload) > slot_bytes:
            raise RingUnsuitable(
                f"payload of {len(payload)} bytes exceeds the "
                f"{slot_bytes}-byte slot")
        offset = self._slot_offset(base, slot_bytes, ticket)
        buf = self._shm.buf
        head = np.frombuffer(buf, dtype=_I64, count=2, offset=offset)
        # Payload and length first, sequence word last: a consumer that
        # observes seq == ticket + 1 is guaranteed a complete payload.
        body = offset + _SLOT_HEADER
        buf[body:body + len(payload)] = payload
        head[1] = len(payload)
        head[0] = ticket + 1

    def _take(self, base: int, slot_bytes: int, ticket: int,
              spin: int) -> Optional[bytes]:
        offset = self._slot_offset(base, slot_bytes, ticket)
        buf = self._shm.buf
        head = np.frombuffer(buf, dtype=_I64, count=2, offset=offset)
        for _ in range(max(1, spin)):
            if int(head[0]) == ticket + 1:
                length = int(head[1])
                body = offset + _SLOT_HEADER
                return bytes(buf[body:body + length])
        return None

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------
    def post_request(self, payload: bytes) -> int:
        """Claim the next request slot; returns the ticket."""
        if self._req_produced - self._req_consumed >= self.manifest.slots:
            raise RingFull(
                f"all {self.manifest.slots} request slots in flight")
        ticket = self._req_produced
        self._post(self._req_base, self.manifest.req_slot_bytes, ticket,
                   payload)
        self._req_produced = ticket + 1
        return ticket

    def poll_response(self, spin: int = 1) -> Optional[bytes]:
        """The next in-order response, or None if not yet published."""
        payload = self._take(self._resp_base,
                             self.manifest.resp_slot_bytes,
                             self._resp_consumed, spin)
        if payload is not None:
            self._resp_consumed += 1
        return payload

    @property
    def requests_in_flight(self) -> int:
        return self._req_produced - self._req_consumed

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def poll_request(self, spin: int = 1) -> Optional[bytes]:
        """The next in-order request, or None if not yet published."""
        payload = self._take(self._req_base, self.manifest.req_slot_bytes,
                             self._req_consumed, spin)
        if payload is not None:
            self._req_consumed += 1
        return payload

    def post_response(self, payload: bytes) -> int:
        ticket = self._resp_produced
        self._post(self._resp_base, self.manifest.resp_slot_bytes,
                   ticket, payload)
        self._resp_produced = ticket + 1
        return ticket

    def note_response_consumed(self) -> None:
        """Parent bookkeeping: one request fully round-tripped (frees
        its request slot for reuse)."""
        self._req_consumed += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        self.close()
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        return (f"RingPair(segment={self.manifest.segment!r}, "
                f"slots={self.manifest.slots}, "
                f"in_flight={self.requests_in_flight})")


# ----------------------------------------------------------------------
# Request codec: (examples, ks) <-> one flat int32 vector
# ----------------------------------------------------------------------
_I32_MIN = -(1 << 31)
_I32_MAX = (1 << 31) - 1
# users slot for "no user id" (sessions always carry one today; the
# sentinel keeps the codec total).
_NO_USER = _I32_MIN
# First word of the request tail when an in-flush dedup map is present.
# Legacy tails always start with a trace id (>= 0) or a candidate
# section forced behind traces, so a negative marker is unambiguous.
_DEDUP_MARKER = -2


def _check_i32(value: int, what: str) -> int:
    value = int(value)
    if not _I32_MIN <= value <= _I32_MAX:
        raise RingUnsuitable(f"{what} {value} does not fit int32")
    return value


def encode_request(examples: Sequence[tuple], ks: Sequence[int],
                   max_length: int,
                   traces: Optional[Sequence[int]] = None,
                   candidates: Optional[Sequence[Sequence[int]]] = None,
                   dedup: Optional[Tuple[Sequence[int],
                                         Sequence[int]]] = None
                   ) -> bytes:
    """Flatten ``(prefix_items, target, user)`` examples + per-row k.

    Prefixes are pre-truncated to ``max_length`` — bit-identical to
    shipping them whole, because ``collate_examples`` applies the same
    ``[-max_length:]`` truncation worker-side.

    ``traces`` (optional) carries one 31-bit trace id per row (0 = not
    sampled); a section of ``n`` int32 is appended only when at least
    one row is sampled, so the tracing-off payload is unchanged.

    ``candidates`` (optional) carries per-row cascade candidate item
    ids: a lengths section of ``n`` int32 followed by the concatenated
    ids.  Because the decoder tells the trailing sections apart by
    size (``n`` trailing words = traces only; ``> n`` = traces then
    candidates), a candidate section **forces** the traces section —
    all zeros when nothing is sampled.  With ``candidates=None`` the
    payload is byte-identical to the prior codec.

    ``dedup`` (optional) is ``(row_map, orig_ks)``: the in-flush dedup
    map from original rows to the unique rows actually shipped.  When
    present, the main body carries the **unique** rows (walked at the
    max k over their duplicate group) and the tail *starts* with a
    dedup section ``[_DEDUP_MARKER][n_orig][row_map i32*n_orig]
    [orig_ks i32*n_orig]`` — unambiguous because legacy tails always
    begin with a non-negative trace id.  After it, ``traces`` is sized
    per **original** row while ``candidates`` stays per unique row.
    With ``dedup=None`` the payload is byte-identical to the prior
    codec.
    """
    n = len(examples)
    if n == 0 or len(ks) != n:
        raise RingUnsuitable(f"bad batch shape ({n} examples, "
                             f"{len(ks)} ks)")
    n_rows = n
    if dedup is not None:
        row_map, orig_ks = dedup
        n_rows = len(row_map)
        if n_rows < n or len(orig_ks) != n_rows:
            raise RingUnsuitable(
                f"bad dedup shape ({n} uniques, {len(row_map)} rows, "
                f"{len(orig_ks)} orig ks)")
    if traces is not None and len(traces) != n_rows:
        raise RingUnsuitable(f"bad trace shape ({n_rows} rows, "
                             f"{len(traces)} traces)")
    if candidates is not None and len(candidates) != n:
        raise RingUnsuitable(f"bad candidate shape ({n} examples, "
                             f"{len(candidates)} rows)")
    flat: List[int] = [n]
    items: List[int] = []
    lengths: List[int] = []
    targets: List[int] = []
    users: List[int] = []
    for prefix, target, user in examples:
        prefix = list(prefix)[-max_length:]
        lengths.append(len(prefix))
        targets.append(_check_i32(target, "target item"))
        users.append(_NO_USER if user is None
                     else _check_i32(user, "user id"))
        for item in prefix:
            items.append(_check_i32(item, "session item"))
    flat += [_check_i32(k, "k") for k in ks]
    flat += lengths + targets + users + items
    if dedup is not None:
        flat += [_DEDUP_MARKER, n_rows]
        flat += [_check_i32(u, "dedup row index") for u in row_map]
        flat += [_check_i32(k, "dedup k") for k in orig_ks]
    if candidates is not None:
        flat += ([_check_i32(t, "trace id") for t in traces]
                 if traces is not None else [0] * n_rows)
        flat += [_check_i32(len(row), "candidate count")
                 for row in candidates]
        for row in candidates:
            flat += [_check_i32(item, "candidate item") for item in row]
    elif traces is not None and any(traces):
        flat += [_check_i32(t, "trace id") for t in traces]
    return np.asarray(flat, dtype=_I32).tobytes()


def decode_request(payload: bytes
                   ) -> Tuple[List[tuple], List[int], List[int],
                              Optional[List[List[int]]],
                              Optional[Tuple[List[int], List[int]]]]:
    flat = np.frombuffer(payload, dtype=_I32)
    n = int(flat[0])
    ks = flat[1:1 + n].tolist()
    lengths = flat[1 + n:1 + 2 * n]
    targets = flat[1 + 2 * n:1 + 3 * n].tolist()
    users = flat[1 + 3 * n:1 + 4 * n].tolist()
    total_items = int(lengths.sum())
    items = flat[1 + 4 * n:1 + 4 * n + total_items]
    tail = flat[1 + 4 * n + total_items:]
    dedup: Optional[Tuple[List[int], List[int]]] = None
    n_rows = n
    if tail.size >= 2 and int(tail[0]) == _DEDUP_MARKER:
        n_rows = int(tail[1])
        row_map = tail[2:2 + n_rows].tolist()
        orig_ks = tail[2 + n_rows:2 + 2 * n_rows].tolist()
        dedup = (row_map, orig_ks)
        tail = tail[2 + 2 * n_rows:]
    candidates: Optional[List[List[int]]] = None
    if tail.size > n_rows:
        # traces (n_rows) + candidate lengths (n) + concatenated ids
        cand_lengths = tail[n_rows:n_rows + n]
        cand_items = tail[n_rows + n:]
        stops_c = np.cumsum(cand_lengths)
        starts_c = stops_c - cand_lengths
        candidates = [
            cand_items[int(starts_c[i]):int(stops_c[i])].tolist()
            for i in range(n)]
    traces = tail[:n_rows].tolist() if tail.size >= n_rows else [0] * n_rows
    stops = np.cumsum(lengths)
    starts = stops - lengths
    examples = [
        (items[int(starts[i]):int(stops[i])].tolist(), targets[i],
         None if users[i] == _NO_USER else users[i])
        for i in range(n)]
    return examples, ks, traces, candidates, dedup


def dedup_pairs(row_map: Sequence[int], orig_ks: Sequence[int]
                ) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Canonical response plan for a dedup'd batch.

    The worker answers one response row per distinct ``(unique_idx,
    k)`` pair, in first-occurrence order over the original rows; the
    parent fans each pair's row out to every original row that maps to
    it.  Both sides derive this plan independently from the wire's
    ``(row_map, orig_ks)``, so it is part of the protocol: returns
    ``(pairs, row_pair)`` where ``pairs[p] = (unique_idx, k)`` and
    ``row_pair[i]`` is original row i's pair index.
    """
    index: Dict[Tuple[int, int], int] = {}
    pairs: List[Tuple[int, int]] = []
    row_pair: List[int] = []
    for u, k in zip(row_map, orig_ks):
        key = (int(u), int(k))
        p = index.get(key)
        if p is None:
            p = len(pairs)
            index[key] = p
            pairs.append(key)
        row_pair.append(p)
    return pairs, row_pair


# ----------------------------------------------------------------------
# Response codec: per-row (items, scores, path blobs) <-> flat arrays
# ----------------------------------------------------------------------
_STATUS_OK = 0
_STATUS_ERROR = 1


def encode_error(traceback_text: str, capacity: int) -> bytes:
    """A status=1 slot whose payload is the (truncated) traceback."""
    head = np.array([_STATUS_ERROR, 0], dtype=_I64).tobytes()
    body = traceback_text.encode("utf-8", errors="replace")
    return head + body[:max(0, capacity - len(head))]


def encode_response(version: int, rows: Sequence[tuple],
                    spans: Sequence[tuple] = (),
                    traces: Sequence[int] = (),
                    rowrecs: Sequence[tuple] = ()) -> bytes:
    """Marshal executed rows: ``(items, scores, path_blobs)`` per row.

    ``path_blobs[i]`` is ``None`` or ``(entities, relations, prob)``.
    Layout (all little-endian, float64 sections 8-aligned):

    ``[status i64][version i64][n i32][ks i32*n][items i32*K]
    [scores f64*K][path_len i32*K][path_nodes i32*…][probs f64*P]``

    where ``K = sum(ks)``, ``path_len`` is the relation count (-1 for
    no path), ``path_nodes`` concatenates each present path's
    ``entities`` (len+1) then ``relations`` (len), and ``P`` is the
    number of present paths.

    When the request carried sampled trace ids, a **telemetry
    trailer** follows: ``[n_spans i32][n_traces i32]
    [traces i32*n_traces][pad8][spans f64*3*n_spans]`` — each span is
    a ``(kind_id, t0, dur)`` triple (see
    :data:`repro.telemetry.trace.SPAN_KINDS`).

    ``rowrecs`` (optional) appends a **per-row section** after the
    spans: ``[n_rows i32][hops i32][(trace i32, widths i32*hops) *
    n_rows][pad8][(walk_s f64, topk_s f64) * n_rows]`` — one record
    per sampled row, carrying its per-hop frontier width and its
    attributed walk / top-k duration share (see
    :func:`repro.telemetry.trace.attribute_rows`).  Every record in a
    batch shares the same executed-hop count.

    No trailer is emitted when every telemetry section is empty,
    keeping the tracing-off payload byte-identical to the
    pre-telemetry format (and the rowrecs-off payload byte-identical
    to the span-only trailer).
    """
    n = len(rows)
    ks = [len(row[0]) for row in rows]
    items: List[int] = []
    scores: List[float] = []
    path_len: List[int] = []
    path_nodes: List[int] = []
    probs: List[float] = []
    for row_items, row_scores, row_paths in rows:
        items += [int(i) for i in row_items]
        scores += [float(s) for s in row_scores]
        for blob in row_paths:
            if blob is None:
                path_len.append(-1)
                continue
            entities, relations, prob = blob
            path_len.append(len(relations))
            path_nodes += [int(e) for e in entities]
            path_nodes += [int(r) for r in relations]
            probs.append(float(prob))
    parts = [np.array([_STATUS_OK, int(version)], dtype=_I64).tobytes(),
             np.asarray([n] + ks + items, dtype=_I32).tobytes()]
    size = sum(len(p) for p in parts)
    parts.append(b"\x00" * (_align(size, 8) - size))
    parts.append(np.asarray(scores, dtype=_F64).tobytes())
    parts.append(np.asarray(path_len + path_nodes, dtype=_I32).tobytes())
    size = sum(len(p) for p in parts)
    parts.append(b"\x00" * (_align(size, 8) - size))
    parts.append(np.asarray(probs, dtype=_F64).tobytes())
    if spans or traces or rowrecs:
        parts.append(np.asarray([len(spans), len(traces)]
                                + [_check_i32(t, "trace id")
                                   for t in traces],
                                dtype=_I32).tobytes())
        size = sum(len(p) for p in parts)
        parts.append(b"\x00" * (_align(size, 8) - size))
        flat_spans: List[float] = []
        for kind_id, t0, dur in spans:
            flat_spans += [float(kind_id), float(t0), float(dur)]
        parts.append(np.asarray(flat_spans, dtype=_F64).tobytes())
    if rowrecs:
        hops = len(rowrecs[0][1])
        ints: List[int] = [len(rowrecs), hops]
        durs: List[float] = []
        for trace_id, widths, walk_s, topk_s in rowrecs:
            if len(widths) != hops:
                raise RingUnsuitable(
                    f"row record has {len(widths)} hop widths, "
                    f"batch has {hops}")
            ints.append(_check_i32(trace_id, "trace id"))
            ints += [_check_i32(w, "frontier width") for w in widths]
            durs += [float(walk_s), float(topk_s)]
        parts.append(np.asarray(ints, dtype=_I32).tobytes())
        size = sum(len(p) for p in parts)
        parts.append(b"\x00" * (_align(size, 8) - size))
        parts.append(np.asarray(durs, dtype=_F64).tobytes())
    return b"".join(parts)


def decode_response(payload: bytes
                    ) -> Tuple[int, List[tuple], List[tuple],
                               List[int], List[tuple]]:
    """Inverse of :func:`encode_response`; returns
    ``(version, rows, spans, traces, rowrecs)`` (telemetry sections
    empty when the payload has no trailer).

    Raises :class:`WorkerExecError` when the slot carries a worker
    traceback (status=1).
    """
    head = np.frombuffer(payload, dtype=_I64, count=2)
    if int(head[0]) == _STATUS_ERROR:
        raise WorkerExecError(payload[16:].decode("utf-8",
                                                  errors="replace"))
    version = int(head[1])
    offset = 16
    n = int(np.frombuffer(payload, dtype=_I32, count=1,
                          offset=offset)[0])
    offset += 4
    ks = np.frombuffer(payload, dtype=_I32, count=n, offset=offset)
    offset += 4 * n
    total = int(ks.sum())
    items = np.frombuffer(payload, dtype=_I32, count=total, offset=offset)
    offset = _align(offset + 4 * total, 8)
    scores = np.frombuffer(payload, dtype=_F64, count=total,
                           offset=offset)
    offset += 8 * total
    path_len = np.frombuffer(payload, dtype=_I32, count=total,
                             offset=offset)
    offset += 4 * total
    node_count = int(path_len[path_len >= 0].sum() * 2
                     + np.count_nonzero(path_len >= 0))
    nodes = np.frombuffer(payload, dtype=_I32, count=node_count,
                          offset=offset)
    offset = _align(offset + 4 * node_count, 8)
    n_paths = int(np.count_nonzero(path_len >= 0))
    probs = np.frombuffer(payload, dtype=_F64, count=n_paths,
                          offset=offset)
    offset += 8 * n_paths
    spans: List[tuple] = []
    traces: List[int] = []
    rowrecs: List[tuple] = []
    if offset + 8 <= len(payload):
        trailer = np.frombuffer(payload, dtype=_I32, count=2,
                                offset=offset)
        n_spans, n_traces = int(trailer[0]), int(trailer[1])
        offset += 8
        traces = np.frombuffer(payload, dtype=_I32, count=n_traces,
                               offset=offset).tolist()
        offset = _align(offset + 4 * n_traces, 8)
        flat_spans = np.frombuffer(payload, dtype=_F64,
                                   count=3 * n_spans, offset=offset)
        spans = [(int(flat_spans[3 * i]), float(flat_spans[3 * i + 1]),
                  float(flat_spans[3 * i + 2]))
                 for i in range(n_spans)]
        offset += 24 * n_spans
    if offset + 8 <= len(payload):
        rowhead = np.frombuffer(payload, dtype=_I32, count=2,
                                offset=offset)
        n_rowrecs, hops = int(rowhead[0]), int(rowhead[1])
        offset += 8
        stride = 1 + hops
        ints = np.frombuffer(payload, dtype=_I32,
                             count=n_rowrecs * stride, offset=offset)
        offset = _align(offset + 4 * n_rowrecs * stride, 8)
        durs = np.frombuffer(payload, dtype=_F64, count=2 * n_rowrecs,
                             offset=offset)
        for i in range(n_rowrecs):
            rec = ints[i * stride:(i + 1) * stride]
            rowrecs.append((int(rec[0]), tuple(rec[1:].tolist()),
                            float(durs[2 * i]), float(durs[2 * i + 1])))
    rows: List[tuple] = []
    cell = 0
    cursor = 0
    path_idx = 0
    for row in range(n):
        k = int(ks[row])
        row_items = items[cell:cell + k].tolist()
        row_scores = scores[cell:cell + k].tolist()
        row_paths: List[Optional[tuple]] = []
        for offset_in_row in range(k):
            length = int(path_len[cell + offset_in_row])
            if length < 0:
                row_paths.append(None)
                continue
            entities = nodes[cursor:cursor + length + 1].tolist()
            cursor += length + 1
            relations = nodes[cursor:cursor + length].tolist()
            cursor += length
            row_paths.append((entities, relations,
                              float(probs[path_idx])))
            path_idx += 1
        cell += k
        rows.append((row_items, row_scores, row_paths))
    return version, rows, spans, traces, rowrecs


class WorkerExecError(RuntimeError):
    """A ring response carried a worker-side traceback."""
