"""The shared-memory table plane: one copy of the big read-only arrays.

Every hot-path query reads a handful of large, effectively immutable
numeric tables — the capped sharded-CSR adjacency
(:class:`repro.graphstore.ShardedCSR`, exported one plane per shard)
and the frozen TransE-initialized entity/relation embedding tables.  Threads share
them for free; *processes* do not, and naively forking a worker per
core would duplicate hundreds of megabytes at paper dims and silently
diverge after the first compaction.

A :class:`TablePlane` is one **generation** of those tables exported to
OS shared memory:

* the exporting (parent) process copies each array once into a single
  ``multiprocessing.shared_memory`` segment (or one ``.npy`` file per
  array under a directory, for the mmap backend) and keeps ownership;
* a picklable :class:`PlaneManifest` — segment name, backend, and a
  name → (dtype, shape, offset) directory — travels to workers over
  their bootstrap pipe;
* :meth:`TablePlane.attach` maps the segment in the worker and hands
  back **zero-copy, read-only** NumPy views; every worker reads the
  same physical pages.

Generations are keyed (by convention with the environment
``fingerprint()``), and a plane is immutable once published: a
compaction or table change exports a *new* plane and broadcasts its
manifest, workers re-attach with one atomic bundle swap, and the old
generation is unlinked once nobody needs it.  See ``README.md`` in
this directory for the lifecycle and the spawn-vs-fork caveats.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

_ALIGN = 64  # cache-line align every array inside the segment


@dataclass(frozen=True)
class _Entry:
    """Location of one array inside the plane."""

    dtype: str
    shape: Tuple[int, ...]
    offset: int          # byte offset into the shm segment (shm backend)
    filename: str = ""   # per-array file name (mmap backend)
    shard: int = -1      # graph-store shard this array belongs to


@dataclass(frozen=True)
class PlaneManifest:
    """Everything a foreign process needs to attach a plane (picklable).

    ``entries`` doubles as a per-shard directory: arrays published with
    a ``shard_of`` mapping carry their shard index, so a delta consumer
    can see exactly which shard a generation covers
    (:meth:`shard_ids` / :meth:`entries_for_shard`) without parsing
    array names.
    """

    key: str                       # generation key (env fingerprint)
    backend: str                   # "shm" | "mmap"
    segment: str                   # shm name, or the directory path
    nbytes: int
    entries: Dict[str, _Entry] = field(default_factory=dict)

    def shard_ids(self) -> Tuple[int, ...]:
        """Distinct graph-store shards covered by this plane."""
        return tuple(sorted({entry.shard
                             for entry in self.entries.values()
                             if entry.shard >= 0}))

    def entries_for_shard(self, shard: int) -> Dict[str, _Entry]:
        return {name: entry for name, entry in self.entries.items()
                if entry.shard == shard}


def _attach_shm(name: str, untrack: bool):
    """Open an existing shared-memory segment without adopting it.

    On 3.13+ ``track=False`` keeps the attaching process's resource
    tracker out of the segment's lifetime (the publishing owner stays
    responsible for the unlink).  On 3.11/3.12 every attach registers
    with the process's resource tracker; ``multiprocessing`` children
    — fork *and* spawn — share the publisher's tracker (its fd rides
    in the spawn preparation data), so the registration is a set no-op
    there and the owner's ``unlink`` deregisters cleanly.  Only a
    **foreign** process (one not started by the publisher's
    interpreter) has a private tracker that would adopt the segment
    and unlink it at exit; such attachers pass ``untrack=True``.
    """
    from multiprocessing import shared_memory

    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        try:  # pragma: no cover - spawn-context only
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


class TablePlane:
    """One published generation of shared read-only tables.

    Construct through :meth:`publish` (owner side) or :meth:`attach`
    (worker side); both expose the same mapping interface, and the
    arrays they hand out are always read-only — mutation goes through
    the copy-on-write hooks on the consuming tensors, never through
    the plane.
    """

    def __init__(self, manifest: PlaneManifest,
                 arrays: Dict[str, np.ndarray],
                 shm=None, owner: bool = False) -> None:
        self.manifest = manifest
        self._arrays = arrays
        self._shm = shm
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Publication (owner side)
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, arrays: Mapping[str, np.ndarray], *, key: str,
                backend: str = "auto",
                directory: Optional[Path] = None,
                shard_of: Optional[Mapping[str, int]] = None
                ) -> "TablePlane":
        """Export ``arrays`` as a new plane generation.

        ``backend="auto"`` prefers OS shared memory and falls back to
        mmap'd per-array ``.npy`` files (``directory`` then names where
        they live; a temp dir is created when omitted).  ``shard_of``
        tags each array with the graph-store shard it belongs to (the
        manifest's per-shard entry directory — see
        :meth:`PlaneManifest.shard_ids`).  The returned plane *owns*
        the storage: :meth:`unlink` retires it.
        """
        if backend not in ("auto", "shm", "mmap"):
            raise ValueError(f"unknown plane backend {backend!r}")
        if backend in ("auto", "shm"):
            try:
                return cls._publish_shm(arrays, key=key,
                                        shard_of=shard_of)
            except (ImportError, OSError):
                if backend == "shm":
                    raise
        return cls._publish_mmap(arrays, key=key, directory=directory,
                                 shard_of=shard_of)

    @classmethod
    def _publish_shm(cls, arrays: Mapping[str, np.ndarray], key: str,
                     shard_of: Optional[Mapping[str, int]] = None
                     ) -> "TablePlane":
        from multiprocessing import shared_memory

        shard_of = shard_of or {}
        contiguous = {name: np.ascontiguousarray(arr)
                      for name, arr in arrays.items()}
        total, entries = 0, {}
        for name, arr in contiguous.items():
            total = -(-total // _ALIGN) * _ALIGN
            entries[name] = _Entry(dtype=str(arr.dtype), shape=arr.shape,
                                   offset=total,
                                   shard=shard_of.get(name, -1))
            total += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        views: Dict[str, np.ndarray] = {}
        for name, arr in contiguous.items():
            entry = entries[name]
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                              offset=entry.offset)
            view[...] = arr
            view.flags.writeable = False
            views[name] = view
        manifest = PlaneManifest(key=key, backend="shm", segment=shm.name,
                                 nbytes=total, entries=entries)
        return cls(manifest, views, shm=shm, owner=True)

    @classmethod
    def _publish_mmap(cls, arrays: Mapping[str, np.ndarray], key: str,
                      directory: Optional[Path],
                      shard_of: Optional[Mapping[str, int]] = None
                      ) -> "TablePlane":
        import tempfile

        shard_of = shard_of or {}
        if directory is None:
            directory = Path(tempfile.mkdtemp(prefix="reks-plane-"))
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        total, entries, views = 0, {}, {}
        for index, (name, arr) in enumerate(arrays.items()):
            arr = np.ascontiguousarray(arr)
            safe = "".join(c if c.isalnum() or c in "-_." else "_"
                           for c in name)
            filename = f"{index:02d}-{safe}.npy"
            np.save(directory / filename, arr)
            entries[name] = _Entry(dtype=str(arr.dtype), shape=arr.shape,
                                   offset=0, filename=filename,
                                   shard=shard_of.get(name, -1))
            total += arr.nbytes
            views[name] = np.load(directory / filename, mmap_mode="r")
        manifest = PlaneManifest(key=key, backend="mmap",
                                 segment=str(directory), nbytes=total,
                                 entries=entries)
        return cls(manifest, views, owner=True)

    # ------------------------------------------------------------------
    # Attachment (worker side)
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, manifest: PlaneManifest,
               untrack: bool = False) -> "TablePlane":
        """Map a published plane into this process, zero-copy.

        ``untrack=True`` detaches this process's resource tracker from
        the segment on Python < 3.13 — needed only by **foreign**
        attachers (processes not started by the publisher's
        interpreter), whose private tracker would otherwise unlink the
        live plane when they exit (see :func:`_attach_shm`);
        multiprocessing workers share the publisher's tracker and must
        leave this False.
        """
        if manifest.backend == "shm":
            shm = _attach_shm(manifest.segment, untrack)
            views = {}
            for name, entry in manifest.entries.items():
                view = np.ndarray(entry.shape, dtype=np.dtype(entry.dtype),
                                  buffer=shm.buf, offset=entry.offset)
                view.flags.writeable = False
                views[name] = view
            return cls(manifest, views, shm=shm, owner=False)
        if manifest.backend == "mmap":
            directory = Path(manifest.segment)
            views = {
                name: np.load(directory / entry.filename, mmap_mode="r")
                for name, entry in manifest.entries.items()}
            return cls(manifest, views, owner=False)
        raise ValueError(f"unknown plane backend {manifest.backend!r}")

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def keys(self):
        return self._arrays.keys()

    @property
    def key(self) -> str:
        return self.manifest.key

    @property
    def nbytes(self) -> int:
        return self.manifest.nbytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        self._arrays = {}
        if self._shm is not None:
            try:
                self._shm.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def unlink(self) -> None:
        """Retire the storage (owner only; attachers just close)."""
        self.close()
        if not self._owner:
            return
        if self.manifest.backend == "shm" and self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        elif self.manifest.backend == "mmap":
            import shutil

            shutil.rmtree(self.manifest.segment, ignore_errors=True)

    def __enter__(self) -> "TablePlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink() if self._owner else self.close()

    def __repr__(self) -> str:
        return (f"TablePlane(key={self.key!r}, "
                f"backend={self.manifest.backend!r}, "
                f"arrays={sorted(self._arrays)}, nbytes={self.nbytes})")


class ArenaOverflow(RuntimeError):
    """The arrays do not fit this arena's fixed capacity."""


def layout_size(arrays: Mapping[str, np.ndarray]) -> int:
    """Bytes one plane generation of ``arrays`` occupies (with the
    per-array cache-line alignment :meth:`TablePlane.publish` uses)."""
    total = 0
    for arr in arrays.values():
        total = -(-total // _ALIGN) * _ALIGN
        total += arr.nbytes
    return total


class PlaneArena:
    """A reusable backing segment for successive plane generations.

    Publishing a fresh :class:`TablePlane` per delta generation means
    one ``shm_open`` + zero-fill + (eventually) ``unlink`` per dirty
    shard per compaction — steady-state churn that scales with publish
    frequency, not delta size.  An arena is allocated **once** and
    rewritten in place: :meth:`write` lays a new generation's arrays
    into the same segment and returns a non-owning :class:`TablePlane`
    over them (same manifest format — attachers cannot tell an
    arena-backed plane from a one-shot one).

    The safety contract is the caller's: only write into an arena no
    attacher still maps (the pool double-buffers — it writes each
    generation into the *spare* arena and flips, so the arena being
    overwritten is always two generations stale and every worker
    dropped it at the previous broadcast).

    ``backend="shm"`` is a fixed-capacity shared-memory segment
    (:meth:`write` raises :class:`ArenaOverflow` when a generation has
    outgrown it — the caller allocates a bigger arena, which is the
    only time steady state pays a segment allocation again);
    ``backend="mmap"`` is a reusable directory of ``.npy`` files with
    effectively unbounded capacity.
    """

    def __init__(self, backend: str, segment: str, capacity: int,
                 shm=None) -> None:
        self.backend = backend
        self.segment = segment
        self.capacity = capacity
        self._shm = shm
        self.writes = 0

    @classmethod
    def create(cls, capacity: int, backend: str = "auto",
               directory: Optional[Path] = None) -> "PlaneArena":
        if backend not in ("auto", "shm", "mmap"):
            raise ValueError(f"unknown plane backend {backend!r}")
        if backend in ("auto", "shm"):
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True,
                                                 size=max(capacity, 1))
                return cls("shm", shm.name, capacity, shm=shm)
            except (ImportError, OSError):
                if backend == "shm":
                    raise
        import tempfile

        if directory is None:
            directory = Path(tempfile.mkdtemp(prefix="reks-arena-"))
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return cls("mmap", str(directory), capacity)

    def fits(self, arrays: Mapping[str, np.ndarray]) -> bool:
        if self.backend == "mmap":
            return True
        return layout_size(arrays) <= self.capacity

    def write(self, arrays: Mapping[str, np.ndarray], *, key: str,
              shard_of: Optional[Mapping[str, int]] = None
              ) -> TablePlane:
        """Lay one generation into the arena; returns a non-owning
        plane (the arena keeps the storage — its :meth:`unlink`, not
        the plane's, retires the segment)."""
        shard_of = shard_of or {}
        contiguous = {name: np.ascontiguousarray(arr)
                      for name, arr in arrays.items()}
        if self.backend == "shm":
            total, entries = 0, {}
            for name, arr in contiguous.items():
                total = -(-total // _ALIGN) * _ALIGN
                entries[name] = _Entry(dtype=str(arr.dtype),
                                       shape=arr.shape, offset=total,
                                       shard=shard_of.get(name, -1))
                total += arr.nbytes
            if total > self.capacity:
                raise ArenaOverflow(
                    f"generation needs {total} bytes, arena holds "
                    f"{self.capacity}")
            views: Dict[str, np.ndarray] = {}
            for name, arr in contiguous.items():
                entry = entries[name]
                view = np.ndarray(arr.shape, dtype=arr.dtype,
                                  buffer=self._shm.buf,
                                  offset=entry.offset)
                view[...] = arr
                view.flags.writeable = False
                views[name] = view
            manifest = PlaneManifest(key=key, backend="shm",
                                     segment=self.segment, nbytes=total,
                                     entries=entries)
            self.writes += 1
            return TablePlane(manifest, views, owner=False)
        # mmap: rewrite the per-array files in the reusable directory.
        directory = Path(self.segment)
        total, entries, views = 0, {}, {}
        for index, (name, arr) in enumerate(contiguous.items()):
            safe = "".join(c if c.isalnum() or c in "-_." else "_"
                           for c in name)
            filename = f"{index:02d}-{safe}.npy"
            np.save(directory / filename, arr)
            entries[name] = _Entry(dtype=str(arr.dtype), shape=arr.shape,
                                   offset=0, filename=filename,
                                   shard=shard_of.get(name, -1))
            total += arr.nbytes
            views[name] = np.load(directory / filename, mmap_mode="r")
        manifest = PlaneManifest(key=key, backend="mmap",
                                 segment=self.segment, nbytes=total,
                                 entries=entries)
        self.writes += 1
        return TablePlane(manifest, views, owner=False)

    def unlink(self) -> None:
        if self.backend == "shm" and self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None
        elif self.backend == "mmap":
            import shutil

            shutil.rmtree(self.segment, ignore_errors=True)

    def __repr__(self) -> str:
        return (f"PlaneArena(backend={self.backend!r}, "
                f"segment={self.segment!r}, capacity={self.capacity}, "
                f"writes={self.writes})")
